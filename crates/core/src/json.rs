//! Machine-readable (JSON) export of reports.
//!
//! The text renderings in [`crate::report`] serve humans; downstream
//! tooling (plotting scripts, CI dashboards) wants structured output.
//! The writer here is deliberately dependency-free: the report types
//! are flat records of numbers and names, so a small escaper suffices.

use std::fmt::Write as _;

use crate::corpus::{CorpusOutcome, CorpusRow, FeatureStat};
use crate::explore::{Exploration, NodeExploration};
use crate::partition::PartitionOutcome;
use crate::report::{Figure6Point, Table1, Table1Entry};
use crate::system::{DesignMetrics, ResolvedPoint, WeightedMetrics};

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included). Public because the serve protocol's clients — the bench
/// load driver, the conformance oracle — build request lines with it.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Serializes one design point (all energies in joules, cycle counts
/// raw, hardware in cells).
pub fn metrics_to_json(m: &DesignMetrics) -> String {
    format!(
        concat!(
            "{{\"icache_j\":{},\"dcache_j\":{},\"mem_j\":{},\"bus_j\":{},",
            "\"up_core_j\":{},\"asic_core_j\":{},\"total_j\":{},",
            "\"up_cycles\":{},\"asic_cycles\":{},\"total_cycles\":{},",
            "\"geq_cells\":{},\"icache_miss\":{},\"dcache_miss\":{}}}"
        ),
        num(m.icache.joules()),
        num(m.dcache.joules()),
        num(m.mem.joules()),
        num(m.bus.joules()),
        num(m.up_core.joules()),
        m.asic_core
            .map(|e| num(e.joules()))
            .unwrap_or_else(|| "null".to_owned()),
        num(m.total_energy().joules()),
        m.up_cycles.count(),
        m.asic_cycles.count(),
        m.total_cycles().count(),
        m.geq.cells(),
        num(m.icache_miss_ratio),
        num(m.dcache_miss_ratio),
    )
}

/// Serializes one Table-1 entry.
pub fn entry_to_json(e: &Table1Entry) -> String {
    format!(
        concat!(
            "{{\"app\":\"{}\",\"initial\":{},\"partitioned\":{},",
            "\"energy_saving_pct\":{},\"time_change_pct\":{}}}"
        ),
        json_escape(&e.app),
        metrics_to_json(&e.initial),
        e.partitioned
            .as_ref()
            .map(metrics_to_json)
            .unwrap_or_else(|| "null".to_owned()),
        e.saving_percent()
            .map(num)
            .unwrap_or_else(|| "null".to_owned()),
        e.time_change_percent()
            .map(num)
            .unwrap_or_else(|| "null".to_owned()),
    )
}

/// Serializes a whole table as a JSON array.
pub fn table1_to_json(t: &Table1) -> String {
    let rows: Vec<String> = t.entries().iter().map(entry_to_json).collect();
    format!("[{}]", rows.join(","))
}

/// Serializes the Figure-6 series.
pub fn figure6_to_json(points: &[Figure6Point]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"app\":\"{}\",\"energy_saving_pct\":{},\"time_change_pct\":{}}}",
                json_escape(&p.app),
                num(p.energy_saving),
                num(p.time_change),
            )
        })
        .collect();
    format!("[{}]", rows.join(","))
}

fn corpus_row_to_json(r: &CorpusRow) -> String {
    format!(
        concat!(
            "{{\"index\":{},\"seed\":{},\"name\":\"{}\",\"clusters\":{},",
            "\"loop_clusters\":{},\"loop_depth\":{},\"array_bytes\":{},",
            "\"stmts\":{},\"candidates\":{},\"estimated\":{},",
            "\"growth_steps\":{},\"verifications\":{},\"hw_clusters\":{},",
            "\"hw_blocks\":{},\"geq_cells\":{},\"initial_j\":{},",
            "\"best_j\":{},\"saving_pct\":{},\"initial_cycles\":{},",
            "\"best_cycles\":{},\"time_pct\":{}}}"
        ),
        r.index,
        r.seed,
        json_escape(&r.name),
        r.clusters,
        r.loop_clusters,
        r.loop_depth,
        r.array_bytes,
        r.stmts,
        r.candidates,
        r.estimated,
        r.growth_steps,
        r.verifications,
        r.hw_clusters,
        r.hw_blocks,
        r.geq_cells,
        num(r.initial_j),
        num(r.best_j),
        num(r.saving_pct),
        r.initial_cycles,
        r.best_cycles,
        num(r.time_pct),
    )
}

fn feature_stat_to_json(s: &FeatureStat) -> String {
    format!(
        concat!(
            "{{\"feature\":\"{}\",\"bucket\":{},\"apps\":{},",
            "\"mean_saving_pct\":{},\"max_saving_pct\":{}}}"
        ),
        json_escape(s.feature),
        s.bucket,
        s.apps,
        num(s.mean_saving_pct),
        num(s.max_saving_pct),
    )
}

/// Serializes a corpus run: the run summary, every evaluated row in
/// corpus order, the aggregate Pareto frontier, and the per-feature
/// saving statistics. Deterministic for a deterministic
/// [`CorpusOutcome`] — this is what the corpus golden pins.
pub fn corpus_to_json(outcome: &CorpusOutcome) -> String {
    let rows: Vec<String> = outcome.rows.iter().map(corpus_row_to_json).collect();
    let frontier: Vec<String> = outcome
        .frontier
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "{{\"label\":\"{}\",\"energy_j\":{},\"cycles\":{},",
                    "\"geq_cells\":{},\"saving_pct\":{},\"initial\":{}}}"
                ),
                json_escape(&p.label),
                num(p.energy.joules()),
                p.cycles.count(),
                p.geq.cells(),
                num(p.saving_percent),
                p.is_initial,
            )
        })
        .collect();
    let features: Vec<String> = outcome.features.iter().map(feature_stat_to_json).collect();
    format!(
        concat!(
            "{{\"count\":{},\"chunks\":{},\"chunks_done\":{},",
            "\"evaluated\":{},\"replayed\":{},\"finished\":{},",
            "\"rows\":[{}],\"frontier\":[{}],\"features\":[{}]}}"
        ),
        outcome.count,
        outcome.chunks,
        outcome.chunks_done,
        outcome.evaluated,
        outcome.replayed,
        outcome.finished,
        rows.join(","),
        frontier.join(","),
        features.join(","),
    )
}

/// Serializes a partitioning outcome (initial + optional best +
/// search statistics).
pub fn outcome_to_json(name: &str, outcome: &PartitionOutcome) -> String {
    let best = outcome
        .best
        .as_ref()
        .map(|(partition, detail)| {
            let clusters: Vec<String> =
                partition.clusters.iter().map(|c| c.0.to_string()).collect();
            format!(
                concat!(
                    "{{\"clusters\":[{}],\"set\":\"{}\",\"metrics\":{},",
                    "\"u_r\":{},\"u_up\":{},\"comm_words\":{}}}"
                ),
                clusters.join(","),
                json_escape(partition.set.name()),
                metrics_to_json(&detail.metrics),
                num(detail.u_r),
                num(detail.u_up),
                detail.comm_words,
            )
        })
        .unwrap_or_else(|| "null".to_owned());
    let s = &outcome.search;
    format!(
        concat!(
            "{{\"app\":\"{}\",\"initial\":{},\"best\":{},",
            "\"search\":{{\"candidates\":{},\"estimated\":{},",
            "\"rejected_by_utilization\":{},\"infeasible\":{},",
            "\"growth_steps\":{},\"verifications\":{},\"replayed\":{},",
            "\"batched_replays\":{},\"batch_shards\":{},",
            "\"cache_hits\":{},\"cache_misses\":{},",
            "\"estimate_nanos\":{},\"growth_nanos\":{},\"verify_nanos\":{}}}}}"
        ),
        json_escape(name),
        metrics_to_json(&outcome.initial),
        best,
        s.candidates,
        s.estimated,
        s.rejected_by_utilization,
        s.infeasible,
        s.growth_steps,
        s.verifications,
        s.replayed,
        s.batched_replays,
        s.batch_shards,
        s.cache_hits,
        s.cache_misses,
        s.estimate_nanos,
        s.growth_nanos,
        s.verify_nanos,
    )
}

/// Appends one member to a serialized JSON object without re-encoding
/// the rest — the existing writers stay byte-stable and the
/// operating-point `_at` variants only ever *add* a trailing member.
fn with_member(object_json: &str, key: &str, value: &str) -> String {
    debug_assert!(object_json.ends_with('}'), "not an object: {object_json}");
    format!(
        "{},\"{}\":{}}}",
        &object_json[..object_json.len() - 1],
        key,
        value
    )
}

/// Serializes a weighted (operating-point) metrics tuple.
pub fn weighted_to_json(w: &WeightedMetrics) -> String {
    format!(
        "{{\"energy_j\":{},\"time_s\":{},\"area_cells\":{}}}",
        num(w.energy.joules()),
        num(w.time.secs()),
        num(w.area_cells),
    )
}

/// The `operating_point` member body shared by every `_at` writer:
/// point coordinates, its three weights, and caller-supplied extra
/// members (weighted designs).
fn point_member(rp: &ResolvedPoint, extra: &str) -> String {
    format!(
        concat!(
            "{{\"node_nm\":{},\"vdd\":{},",
            "\"weights\":{{\"energy\":{},\"time\":{},\"area\":{}}}{}}}"
        ),
        rp.point.node_nm,
        num(rp.point.vdd),
        num(rp.weights.energy),
        num(rp.weights.time),
        num(rp.weights.area),
        extra,
    )
}

/// [`outcome_to_json`] plus, when an operating point is set, a trailing
/// `operating_point` member carrying the point, its weights, and the
/// initial/best designs re-weighed to it. With `None` the output is
/// byte-identical to [`outcome_to_json`].
pub fn outcome_to_json_at(
    name: &str,
    outcome: &PartitionOutcome,
    point: Option<&ResolvedPoint>,
) -> String {
    let base = outcome_to_json(name, outcome);
    match point {
        None => base,
        Some(rp) => {
            let initial = weighted_to_json(&rp.weigh(&outcome.initial));
            let best = outcome
                .best
                .as_ref()
                .map(|(_, detail)| weighted_to_json(&rp.weigh(&detail.metrics)))
                .unwrap_or_else(|| "null".to_owned());
            let extra = format!(",\"initial\":{initial},\"best\":{best}");
            with_member(&base, "operating_point", &point_member(rp, &extra))
        }
    }
}

/// [`outcome_result_json`] with the same optional `operating_point`
/// member as [`outcome_to_json_at`] — the serve `result` payload stays
/// deterministic because the weighting pass is pure arithmetic over the
/// deterministic base metrics.
pub fn outcome_result_json_at(
    name: &str,
    outcome: &PartitionOutcome,
    point: Option<&ResolvedPoint>,
) -> String {
    let base = outcome_result_json(name, outcome);
    match point {
        None => base,
        Some(rp) => {
            let initial = weighted_to_json(&rp.weigh(&outcome.initial));
            let best = outcome
                .best
                .as_ref()
                .map(|(_, detail)| weighted_to_json(&rp.weigh(&detail.metrics)))
                .unwrap_or_else(|| "null".to_owned());
            let extra = format!(",\"initial\":{initial},\"best\":{best}");
            with_member(&base, "operating_point", &point_member(rp, &extra))
        }
    }
}

/// [`verify_result_json`] with the optional `operating_point` member
/// (the verified design re-weighed to the point).
pub fn verify_result_json_at(
    name: &str,
    partition: &crate::evaluate::Partition,
    detail: &crate::evaluate::PartitionDetail,
    point: Option<&ResolvedPoint>,
) -> String {
    let base = verify_result_json(name, partition, detail);
    match point {
        None => base,
        Some(rp) => {
            let extra = format!(
                ",\"metrics\":{}",
                weighted_to_json(&rp.weigh(&detail.metrics))
            );
            with_member(&base, "operating_point", &point_member(rp, &extra))
        }
    }
}

/// [`exploration_to_json`] with the optional `operating_point` member:
/// every design point of the sweep re-weighed to the point, in point
/// order.
pub fn exploration_to_json_at(ex: &Exploration, point: Option<&ResolvedPoint>) -> String {
    let base = exploration_to_json(ex);
    match point {
        None => base,
        Some(rp) => {
            let rows: Vec<String> = ex
                .points
                .iter()
                .map(|p| {
                    let w = weighted_to_json(&rp.weigh_raw(p.energy, p.cycles, p.geq));
                    format!("{{\"label\":\"{}\",{}", json_escape(&p.label), &w[1..])
                })
                .collect();
            let extra = format!(",\"points\":[{}]", rows.join(","));
            with_member(&base, "operating_point", &point_member(rp, &extra))
        }
    }
}

/// Serializes a node×vdd sweep: the base exploration plus every
/// re-weighted (base point × operating point) entry with its 3D
/// Pareto-frontier membership.
pub fn node_exploration_to_json(nx: &NodeExploration) -> String {
    let frontier = nx.pareto_frontier();
    let rows: Vec<String> = nx
        .points
        .iter()
        .map(|p| {
            let on_frontier = frontier.iter().any(|f| std::ptr::eq(*f, p));
            format!(
                concat!(
                    "{{\"label\":\"{}\",\"node_nm\":{},\"vdd\":{},",
                    "\"base_label\":\"{}\",\"energy_j\":{},\"time_s\":{},",
                    "\"area_cells\":{},\"initial\":{},\"pareto\":{}}}"
                ),
                json_escape(&p.label),
                p.node_nm,
                num(p.vdd),
                json_escape(&p.base_label),
                num(p.energy.joules()),
                num(p.time.secs()),
                num(p.area_cells),
                p.is_initial,
                on_frontier,
            )
        })
        .collect();
    format!(
        "{{\"base\":{},\"points\":[{}]}}",
        exploration_to_json(&nx.base),
        rows.join(","),
    )
}

/// Serializes an exploration sweep: every design point with its
/// Pareto-frontier membership.
pub fn exploration_to_json(ex: &Exploration) -> String {
    let frontier = ex.pareto_frontier();
    let rows: Vec<String> = ex
        .points
        .iter()
        .map(|p| {
            let on_frontier = frontier.iter().any(|f| std::ptr::eq(*f, p));
            format!(
                concat!(
                    "{{\"label\":\"{}\",\"energy_j\":{},\"cycles\":{},",
                    "\"geq_cells\":{},\"saving_pct\":{},\"initial\":{},",
                    "\"pareto\":{}}}"
                ),
                json_escape(&p.label),
                num(p.energy.joules()),
                p.cycles.count(),
                p.geq.cells(),
                num(p.saving_percent),
                p.is_initial,
                on_frontier,
            )
        })
        .collect();
    format!("{{\"points\":[{}]}}", rows.join(","))
}

/// Serializes the *deterministic* part of a partitioning outcome: the
/// app name, the initial design point and the best partition found.
///
/// This is the serve protocol's `result` payload. It deliberately
/// excludes everything [`outcome_to_json`] adds for diagnostics —
/// wall-clock nanos, replay/cache counters — because those differ
/// between a warm store and a fresh engine even when the answer is the
/// same. The served-vs-fresh oracle byte-compares exactly this.
pub fn outcome_result_json(name: &str, outcome: &PartitionOutcome) -> String {
    let best = outcome
        .best
        .as_ref()
        .map(|(partition, detail)| {
            let clusters: Vec<String> =
                partition.clusters.iter().map(|c| c.0.to_string()).collect();
            format!(
                concat!(
                    "{{\"clusters\":[{}],\"set\":\"{}\",\"metrics\":{},",
                    "\"u_r\":{},\"u_up\":{},\"comm_words\":{}}}"
                ),
                clusters.join(","),
                json_escape(partition.set.name()),
                metrics_to_json(&detail.metrics),
                num(detail.u_r),
                num(detail.u_up),
                detail.comm_words,
            )
        })
        .unwrap_or_else(|| "null".to_owned());
    format!(
        "{{\"app\":\"{}\",\"initial\":{},\"best\":{}}}",
        json_escape(name),
        metrics_to_json(&outcome.initial),
        best,
    )
}

/// Serializes the deterministic result of one explicit-partition
/// verification (the serve protocol's `verify` payload): the same
/// fields [`outcome_result_json`] reports for a search winner, so
/// clients read both with one shape.
pub fn verify_result_json(
    name: &str,
    partition: &crate::evaluate::Partition,
    detail: &crate::evaluate::PartitionDetail,
) -> String {
    let clusters: Vec<String> = partition.clusters.iter().map(|c| c.0.to_string()).collect();
    format!(
        concat!(
            "{{\"app\":\"{}\",\"clusters\":[{}],\"set\":\"{}\",",
            "\"metrics\":{},\"u_r\":{},\"u_up\":{},\"comm_words\":{}}}"
        ),
        json_escape(name),
        clusters.join(","),
        json_escape(partition.set.name()),
        metrics_to_json(&detail.metrics),
        num(detail.u_r),
        num(detail.u_up),
        detail.comm_words,
    )
}

/// A parsed JSON value — the request side of the serve protocol. The
/// writer half of this module stays string-based (and byte-stable);
/// the parser exists so the daemon can read requests without any
/// dependency, mirroring the vendored-shim policy of the workspace.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order (lookup takes the first match).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member `key` of an object (first match), if any.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document. Rejects trailing non-whitespace.
///
/// # Errors
///
/// A human-readable message naming the byte offset of the problem.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| format!("invalid number {text:?} at byte {start}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    let mut pending_high: Option<u16> = None;
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".into());
        };
        // A lone high surrogate not followed by \u.. is malformed.
        if pending_high.is_some() && b != b'\\' {
            return Err(format!("unpaired surrogate before byte {pos}"));
        }
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&e) = bytes.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match e {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("short \\u escape at byte {pos}"))?;
                        let code = u16::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        *pos += 4;
                        match (pending_high.take(), code) {
                            (Some(high), 0xDC00..=0xDFFF) => {
                                let c = 0x10000
                                    + ((u32::from(high) - 0xD800) << 10)
                                    + (u32::from(code) - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| "bad surrogate pair".to_owned())?,
                                );
                            }
                            (None, 0xD800..=0xDBFF) => pending_high = Some(code),
                            (None, _) => out.push(
                                char::from_u32(u32::from(code))
                                    .ok_or_else(|| "bad code point".to_owned())?,
                            ),
                            (Some(_), _) => return Err("unpaired surrogate".into()),
                        }
                    }
                    other => return Err(format!("unknown escape \\{}", other as char)),
                }
            }
            _ => {
                // Consume one UTF-8 scalar (requests are valid UTF-8
                // strings by construction of the line reader).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Extracts the raw byte span of the top-level `"result"` member of a
/// serve response — *without* re-serializing, so two responses can be
/// compared byte-for-byte. Returns `None` when the response has no
/// `result` (an error response) or the span is malformed.
pub fn result_field(response: &str) -> Option<&str> {
    let key = "\"result\":";
    let start = response.find(key)? + key.len();
    let bytes = response.as_bytes();
    let mut pos = start;
    while pos < bytes.len() && bytes[pos] == b' ' {
        pos += 1;
    }
    let begin = pos;
    let end = match bytes.get(pos)? {
        b'{' | b'[' => {
            let (open, close) = if bytes[pos] == b'{' {
                (b'{', b'}')
            } else {
                (b'[', b']')
            };
            let mut depth = 0usize;
            let mut in_str = false;
            let mut escaped = false;
            loop {
                let &b = bytes.get(pos)?;
                if in_str {
                    match b {
                        _ if escaped => escaped = false,
                        b'\\' => escaped = true,
                        b'"' => in_str = false,
                        _ => {}
                    }
                } else {
                    match b {
                        b'"' => in_str = true,
                        _ if b == open => depth += 1,
                        _ if b == close => {
                            depth -= 1;
                            if depth == 0 {
                                break pos + 1;
                            }
                        }
                        _ => {}
                    }
                }
                pos += 1;
            }
        }
        b'"' => {
            pos += 1;
            let mut escaped = false;
            loop {
                let &b = bytes.get(pos)?;
                pos += 1;
                match b {
                    _ if escaped => escaped = false,
                    b'\\' => escaped = true,
                    b'"' => break pos,
                    _ => {}
                }
            }
        }
        _ => {
            while pos < bytes.len() && !matches!(bytes[pos], b',' | b'}' | b']' | b'\n') {
                pos += 1;
            }
            pos
        }
    };
    response.get(begin..end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::DesignPoint;
    use corepart_tech::units::{Cycles, Energy, GateEq};

    fn metrics() -> DesignMetrics {
        DesignMetrics {
            icache: Energy::from_microjoules(1.0),
            dcache: Energy::from_microjoules(2.0),
            mem: Energy::from_microjoules(3.0),
            bus: Energy::ZERO,
            up_core: Energy::from_microjoules(4.0),
            asic_core: Some(Energy::from_microjoules(5.0)),
            up_cycles: Cycles::new(100),
            asic_cycles: Cycles::new(50),
            geq: GateEq::new(1234),
            icache_miss_ratio: 0.0125,
            dcache_miss_ratio: 0.5,
        }
    }

    #[test]
    fn metrics_json_well_formed() {
        let j = metrics_to_json(&metrics());
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"geq_cells\":1234"));
        assert!(j.contains("\"total_cycles\":150"));
        // 5 µJ in joules, however the constructor's float rounding and
        // Rust's float printer render it.
        let expected = format!("\"asic_core_j\":{}", Energy::from_microjoules(5.0).joules());
        assert!(j.contains(&expected), "{j}");
        // Balanced braces / quotes.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('"').count() % 2, 0);
    }

    #[test]
    fn null_asic_for_initial_design() {
        let mut m = metrics();
        m.asic_core = None;
        let j = metrics_to_json(&m);
        assert!(j.contains("\"asic_core_j\":null"));
    }

    #[test]
    fn entry_and_table_json() {
        let e = Table1Entry {
            app: "3d \"quoted\"".into(),
            initial: metrics(),
            partitioned: None,
        };
        let j = entry_to_json(&e);
        assert!(j.contains("3d \\\"quoted\\\""));
        assert!(j.contains("\"partitioned\":null"));
        let mut t = Table1::new();
        t.push(e);
        let tj = table1_to_json(&t);
        assert!(tj.starts_with('[') && tj.ends_with(']'));
    }

    #[test]
    fn figure6_json() {
        let pts = vec![Figure6Point {
            app: "mpg".into(),
            energy_saving: 43.2,
            time_change: -52.9,
        }];
        let j = figure6_to_json(&pts);
        assert!(j.contains("\"energy_saving_pct\":43.2"));
        assert!(j.contains("-52.9"));
    }

    #[test]
    fn escaping_control_chars() {
        assert_eq!(json_escape("a\nb"), "a\\nb");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn exploration_json_marks_frontier_membership() {
        let dominated = DesignPoint {
            label: "worse".into(),
            energy: Energy::from_microjoules(10.0),
            cycles: Cycles::new(200),
            geq: GateEq::new(5000),
            saving_percent: -5.0,
            is_initial: false,
        };
        let winner = DesignPoint {
            label: "better".into(),
            energy: Energy::from_microjoules(5.0),
            cycles: Cycles::new(100),
            geq: GateEq::new(1000),
            saving_percent: 50.0,
            is_initial: false,
        };
        let ex = Exploration {
            points: vec![dominated, winner],
        };
        let j = exploration_to_json(&ex);
        assert!(j.starts_with("{\"points\":[") && j.ends_with("]}"));
        assert!(j.contains("\"label\":\"worse\",") && j.contains("\"pareto\":false"));
        assert!(j.contains("\"label\":\"better\",") && j.contains("\"pareto\":true"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn at_variants_are_byte_identical_without_a_point() {
        let ex = Exploration {
            points: vec![DesignPoint {
                label: "p".into(),
                energy: Energy::from_microjoules(5.0),
                cycles: Cycles::new(100),
                geq: GateEq::new(1000),
                saving_percent: 50.0,
                is_initial: false,
            }],
        };
        assert_eq!(exploration_to_json_at(&ex, None), exploration_to_json(&ex));
    }

    #[test]
    fn at_variant_appends_operating_point_member() {
        use crate::system::SystemConfig;
        use corepart_tech::scaling::OperatingPoint;

        let ex = Exploration {
            points: vec![DesignPoint {
                label: "p".into(),
                energy: Energy::from_microjoules(5.0),
                cycles: Cycles::new(100),
                geq: GateEq::new(1000),
                saving_percent: 50.0,
                is_initial: false,
            }],
        };
        let config = SystemConfig::new().with_operating_point(OperatingPoint {
            node_nm: 180,
            vdd: 1.8,
        });
        let rp = config.resolved_point().unwrap().unwrap();
        let j = exploration_to_json_at(&ex, Some(&rp));
        // The base serialization is a prefix modulo the closing brace.
        let base = exploration_to_json(&ex);
        assert!(j.starts_with(&base[..base.len() - 1]), "{j}");
        assert!(j.contains("\"operating_point\":{\"node_nm\":180,\"vdd\":1.8,"));
        assert!(j.contains("\"weights\":{\"energy\":"));
        assert!(j.contains("\"time_s\":"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        // The weighted energy is the base energy times the energy weight.
        let expected = Energy::from_microjoules(5.0).joules() * rp.weights.energy;
        assert!(j.contains(&format!("\"energy_j\":{expected}")), "{j}");
    }

    #[test]
    fn node_exploration_json_shape() {
        use crate::explore::NodePoint;
        use corepart_tech::units::Seconds;

        let base = Exploration {
            points: vec![DesignPoint {
                label: "G = 0.2".into(),
                energy: Energy::from_microjoules(5.0),
                cycles: Cycles::new(100),
                geq: GateEq::new(1000),
                saving_percent: 0.0,
                is_initial: false,
            }],
        };
        let nx = NodeExploration {
            base: base.clone(),
            points: vec![NodePoint {
                label: "G = 0.2 @ 180nm@1.800V".into(),
                node_nm: 180,
                vdd: 1.8,
                base_label: "G = 0.2".into(),
                energy: Energy::from_microjoules(0.5),
                time: Seconds::from_secs(1e-6),
                area_cells: 51.0,
                is_initial: false,
            }],
        };
        let j = node_exploration_to_json(&nx);
        assert!(j.starts_with("{\"base\":{\"points\":["), "{j}");
        assert!(j.contains("\"node_nm\":180"));
        assert!(j.contains("\"area_cells\":51"));
        assert!(j.contains("\"pareto\":true"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn parser_handles_the_protocol_shapes() {
        let v = parse_json(
            r#"{"id":7,"cmd":"partition","source":"app a;\nvar x[4];","weights":[0.0,1.5],"flag":true,"none":null}"#,
        )
        .unwrap();
        assert_eq!(v.get("id").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(v.get("cmd").and_then(JsonValue::as_str), Some("partition"));
        assert_eq!(
            v.get("source").and_then(JsonValue::as_str),
            Some("app a;\nvar x[4];")
        );
        let w = v.get("weights").and_then(JsonValue::as_array).unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w[1].as_f64(), Some(1.5));
        assert_eq!(v.get("flag").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(v.get("none"), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parser_round_trips_escaped_strings() {
        let v = parse_json(r#""a\"b\\c\ndA😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA\u{1F600}"));
        // The writer's escaping parses back to the original.
        let original = "line1\nline2\t\"quoted\" \\slash";
        let parsed = parse_json(&format!("\"{}\"", json_escape(original))).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{").is_err());
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,2").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("nope").is_err());
    }

    #[test]
    fn result_field_extracts_the_raw_span() {
        let resp = r#"{"id":1,"ok":true,"result":{"app":"x","best":{"set":"a}b","list":[1,2]}},"stats":{"shard":0}}"#;
        assert_eq!(
            result_field(resp),
            Some(r#"{"app":"x","best":{"set":"a}b","list":[1,2]}}"#)
        );
        // Error responses have no result.
        assert_eq!(result_field(r#"{"id":2,"ok":false,"error":{}}"#), None);
        // Non-object results.
        assert_eq!(result_field(r#"{"result":null,"x":1}"#), Some("null"));
        assert_eq!(result_field(r#"{"result":"s,tr"}"#), Some("\"s,tr\""));
    }
}
