//! Machine-readable failure reports.
//!
//! The runner serializes its [`Summary`] to a small, dependency-free
//! JSON document (same hand-rolled style as `corepart::json`): enough
//! for CI to archive on a red run and for a human to reproduce every
//! failure with `conform --seed <case_seed> --cases 1`.

use crate::runner::{Failure, Summary};

/// Escapes a string for a JSON literal.
fn esc(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn failure_to_json(failure: &Failure, indent: &str) -> String {
    format!(
        "{indent}{{\n\
         {indent}  \"case_index\": {},\n\
         {indent}  \"case_seed\": {},\n\
         {indent}  \"oracle\": \"{}\",\n\
         {indent}  \"detail\": \"{}\",\n\
         {indent}  \"fault_case\": {},\n\
         {indent}  \"shrink_steps\": {},\n\
         {indent}  \"size_before\": {},\n\
         {indent}  \"size_after\": {},\n\
         {indent}  \"source\": \"{}\"\n\
         {indent}}}",
        failure.case_index,
        failure.case_seed,
        esc(failure.oracle),
        esc(&failure.detail),
        failure.fault_case,
        failure.shrink_steps,
        failure.size_before,
        failure.size_after,
        esc(&failure.source)
    )
}

/// Renders the whole run summary as a JSON document.
pub fn summary_to_json(summary: &Summary) -> String {
    let failures: Vec<String> = summary
        .failures
        .iter()
        .map(|f| failure_to_json(f, "    "))
        .collect();
    let failure_block = if failures.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n  ]", failures.join(",\n"))
    };
    format!(
        "{{\n  \"seed\": {},\n  \"cases\": {},\n  \"cases_run\": {},\n  \
         \"fault_cases\": {},\n  \"violations\": {},\n  \"failures\": {}\n}}\n",
        summary.seed,
        summary.cases,
        summary.cases_run,
        summary.fault_cases,
        summary.failures.len(),
        failure_block
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{Failure, Summary};

    #[test]
    fn report_is_valid_enough_json() {
        let summary = Summary {
            seed: 1,
            cases: 2,
            cases_run: 2,
            fault_cases: 1,
            failures: vec![Failure {
                case_index: 0,
                case_seed: 99,
                oracle: "threads",
                detail: "line1\n\"quoted\"".to_string(),
                fault_case: false,
                shrink_steps: 3,
                size_before: 40,
                size_after: 12,
                source: "app x;\nfunc main() { return 1; }\n".to_string(),
            }],
        };
        let json = summary_to_json(&summary);
        assert!(json.contains("\"violations\": 1"));
        assert!(json.contains("\\n"));
        assert!(json.contains("\\\"quoted\\\""));
        // Balanced braces/brackets (cheap structural sanity).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_failures_render_as_empty_array() {
        let summary = Summary {
            seed: 7,
            cases: 10,
            cases_run: 10,
            fault_cases: 2,
            failures: Vec::new(),
        };
        let json = summary_to_json(&summary);
        assert!(json.contains("\"failures\": []"));
        assert!(json.contains("\"violations\": 0"));
    }
}
