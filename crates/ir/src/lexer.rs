//! Lexer for the behavioral description language.

use std::fmt;

use crate::ast::Span;
use crate::error::IrError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// Identifier.
    Ident(String),
    /// Keyword `app`.
    App,
    /// Keyword `const`.
    Const,
    /// Keyword `var`.
    Var,
    /// Keyword `func`.
    Func,
    /// Keyword `if`.
    If,
    /// Keyword `else`.
    Else,
    /// Keyword `while`.
    While,
    /// Keyword `for`.
    For,
    /// Keyword `return`.
    Return,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `&&`
    AmpAmp,
    /// `||`
    PipePipe,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::App => f.write_str("app"),
            Tok::Const => f.write_str("const"),
            Tok::Var => f.write_str("var"),
            Tok::Func => f.write_str("func"),
            Tok::If => f.write_str("if"),
            Tok::Else => f.write_str("else"),
            Tok::While => f.write_str("while"),
            Tok::For => f.write_str("for"),
            Tok::Return => f.write_str("return"),
            Tok::LParen => f.write_str("("),
            Tok::RParen => f.write_str(")"),
            Tok::LBrace => f.write_str("{"),
            Tok::RBrace => f.write_str("}"),
            Tok::LBracket => f.write_str("["),
            Tok::RBracket => f.write_str("]"),
            Tok::Semi => f.write_str(";"),
            Tok::Comma => f.write_str(","),
            Tok::Assign => f.write_str("="),
            Tok::Plus => f.write_str("+"),
            Tok::Minus => f.write_str("-"),
            Tok::Star => f.write_str("*"),
            Tok::Slash => f.write_str("/"),
            Tok::Percent => f.write_str("%"),
            Tok::Amp => f.write_str("&"),
            Tok::Pipe => f.write_str("|"),
            Tok::Caret => f.write_str("^"),
            Tok::Tilde => f.write_str("~"),
            Tok::Bang => f.write_str("!"),
            Tok::AmpAmp => f.write_str("&&"),
            Tok::PipePipe => f.write_str("||"),
            Tok::Shl => f.write_str("<<"),
            Tok::Shr => f.write_str(">>"),
            Tok::EqEq => f.write_str("=="),
            Tok::NotEq => f.write_str("!="),
            Tok::Lt => f.write_str("<"),
            Tok::Le => f.write_str("<="),
            Tok::Gt => f.write_str(">"),
            Tok::Ge => f.write_str(">="),
            Tok::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub span: Span,
}

/// Tokenizes `src` into a vector ending with [`Tok::Eof`].
///
/// Supports `//` line comments and `/* ... */` block comments, decimal
/// and `0x` hexadecimal integer literals.
///
/// # Errors
///
/// Returns [`IrError::Lex`] on unknown characters, malformed numbers or
/// unterminated block comments.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, IrError> {
    let mut toks = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! span {
        () => {
            Span { line, col }
        };
    }
    macro_rules! advance {
        ($n:expr) => {{
            for _ in 0..$n {
                if i < bytes.len() {
                    if bytes[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        // Whitespace
        if c.is_ascii_whitespace() {
            advance!(1);
            continue;
        }
        // Comments
        if c == b'/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    advance!(1);
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                let start = span!();
                advance!(2);
                let mut closed = false;
                while i + 1 < bytes.len() {
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        advance!(2);
                        closed = true;
                        break;
                    }
                    advance!(1);
                }
                if !closed {
                    return Err(IrError::Lex {
                        span: start,
                        message: "unterminated block comment".into(),
                    });
                }
                continue;
            }
        }
        let sp = span!();
        // Numbers
        if c.is_ascii_digit() {
            let start = i;
            let mut value: i64;
            if c == b'0' && i + 1 < bytes.len() && (bytes[i + 1] | 32) == b'x' {
                advance!(2);
                let hex_start = i;
                while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                    advance!(1);
                }
                if i == hex_start {
                    return Err(IrError::Lex {
                        span: sp,
                        message: "hex literal needs digits".into(),
                    });
                }
                value = i64::from_str_radix(&src[hex_start..i], 16).map_err(|_| IrError::Lex {
                    span: sp,
                    message: format!("hex literal `{}` out of range", &src[start..i]),
                })?;
            } else {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    advance!(1);
                }
                value = src[start..i].parse().map_err(|_| IrError::Lex {
                    span: sp,
                    message: format!("integer literal `{}` out of range", &src[start..i]),
                })?;
            }
            // Reject identifier characters glued to the number.
            if i < bytes.len() && (bytes[i].is_ascii_alphabetic() || bytes[i] == b'_') {
                return Err(IrError::Lex {
                    span: sp,
                    message: "identifier cannot start with a digit".into(),
                });
            }
            let _ = &mut value;
            toks.push(SpannedTok {
                tok: Tok::Int(value),
                span: sp,
            });
            continue;
        }
        // Identifiers / keywords
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                advance!(1);
            }
            let word = &src[start..i];
            let tok = match word {
                "app" => Tok::App,
                "const" => Tok::Const,
                "var" => Tok::Var,
                "func" => Tok::Func,
                "if" => Tok::If,
                "else" => Tok::Else,
                "while" => Tok::While,
                "for" => Tok::For,
                "return" => Tok::Return,
                _ => Tok::Ident(word.to_owned()),
            };
            toks.push(SpannedTok { tok, span: sp });
            continue;
        }
        // Operators / punctuation
        let two = if i + 1 < bytes.len() {
            Some((c, bytes[i + 1]))
        } else {
            None
        };
        let (tok, len) = match two {
            Some((b'&', b'&')) => (Tok::AmpAmp, 2),
            Some((b'|', b'|')) => (Tok::PipePipe, 2),
            Some((b'<', b'<')) => (Tok::Shl, 2),
            Some((b'>', b'>')) => (Tok::Shr, 2),
            Some((b'=', b'=')) => (Tok::EqEq, 2),
            Some((b'!', b'=')) => (Tok::NotEq, 2),
            Some((b'<', b'=')) => (Tok::Le, 2),
            Some((b'>', b'=')) => (Tok::Ge, 2),
            _ => {
                let t = match c {
                    b'(' => Tok::LParen,
                    b')' => Tok::RParen,
                    b'{' => Tok::LBrace,
                    b'}' => Tok::RBrace,
                    b'[' => Tok::LBracket,
                    b']' => Tok::RBracket,
                    b';' => Tok::Semi,
                    b',' => Tok::Comma,
                    b'=' => Tok::Assign,
                    b'+' => Tok::Plus,
                    b'-' => Tok::Minus,
                    b'*' => Tok::Star,
                    b'/' => Tok::Slash,
                    b'%' => Tok::Percent,
                    b'&' => Tok::Amp,
                    b'|' => Tok::Pipe,
                    b'^' => Tok::Caret,
                    b'~' => Tok::Tilde,
                    b'!' => Tok::Bang,
                    b'<' => Tok::Lt,
                    b'>' => Tok::Gt,
                    other => {
                        return Err(IrError::Lex {
                            span: sp,
                            message: format!("unexpected character `{}`", other as char),
                        });
                    }
                };
                (t, 1)
            }
        };
        advance!(len);
        toks.push(SpannedTok { tok, span: sp });
    }

    toks.push(SpannedTok {
        tok: Tok::Eof,
        span: span!(),
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("app foo func while whileX"),
            vec![
                Tok::App,
                Tok::Ident("foo".into()),
                Tok::Func,
                Tok::While,
                Tok::Ident("whileX".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("0 42 0xff 0x10"),
            vec![
                Tok::Int(0),
                Tok::Int(42),
                Tok::Int(255),
                Tok::Int(16),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            toks("<< >> == != <= >= && ||"),
            vec![
                Tok::Shl,
                Tok::Shr,
                Tok::EqEq,
                Tok::NotEq,
                Tok::Le,
                Tok::Ge,
                Tok::AmpAmp,
                Tok::PipePipe,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn single_char_operators_disambiguate() {
        assert_eq!(
            toks("< = > & | ! ~"),
            vec![
                Tok::Lt,
                Tok::Assign,
                Tok::Gt,
                Tok::Amp,
                Tok::Pipe,
                Tok::Bang,
                Tok::Tilde,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a // line\n b /* block\n over lines */ c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn spans_track_lines_and_cols() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].span, Span { line: 1, col: 1 });
        assert_eq!(ts[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn error_on_unknown_char() {
        let err = lex("a $ b").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn error_on_unterminated_comment() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn error_on_digit_prefixed_ident() {
        assert!(lex("123abc").is_err());
    }

    #[test]
    fn error_on_bare_hex_prefix() {
        assert!(lex("0x").is_err());
    }
}
