//! Determinism guarantees of the parallel, memoizing search engine.
//!
//! The engine promises bit-identical results for every thread count
//! ([`SystemConfig::threads`]): the estimate grid and the growth
//! rounds are parallel maps folded sequentially in candidate order,
//! and the schedule cache computes each key exactly once. These tests
//! pin that promise on the six paper workloads, on a full exploration
//! sweep, and — property-style — on the memoized schedule results
//! themselves.

use std::sync::Arc;

use proptest::prelude::*;

use corepart::explore::{explore, hardware_weight_sweep};
use corepart::partition::{Partitioner, ScheduleKey};
use corepart::prepare::{prepare, Workload};
use corepart::sched::binding::{bind, schedule_cluster, utilization};
use corepart::sched::cache::{ScheduleCache, ScheduledCluster};
use corepart::system::SystemConfig;
use corepart_workloads::{all, by_name};

#[test]
fn parallel_search_matches_sequential_on_all_six_workloads() {
    for w in all() {
        let sequential_config = SystemConfig::new().with_threads(1);
        let parallel_config = SystemConfig::new().with_threads(4);
        // Preparation ignores the thread knob: share it.
        let prepared = prepare(
            w.app().expect("workload lowers"),
            Workload::from_arrays(w.arrays(1)),
            &sequential_config,
        )
        .expect("workload prepares");

        let sequential = Partitioner::new(&prepared, &sequential_config)
            .expect("initial run")
            .run()
            .expect("sequential search");
        let parallel = Partitioner::new(&prepared, &parallel_config)
            .expect("initial run")
            .run()
            .expect("parallel search");

        // PartitionOutcome equality covers the initial metrics, the
        // chosen partition + its verified detail, and the search
        // statistics (wall times excluded by design).
        assert_eq!(sequential, parallel, "outcome diverged on `{}`", w.name);
        assert_eq!(
            sequential.search.cache_hits, parallel.search.cache_hits,
            "cache hits diverged on `{}`",
            w.name
        );
        assert_eq!(
            sequential.search.cache_misses, parallel.search.cache_misses,
            "cache misses diverged on `{}`",
            w.name
        );
    }
}

#[test]
fn exploration_sweep_is_thread_count_invariant() {
    let w = by_name("digs").expect("digs exists");
    let app = w.app().expect("lowers");
    let workload = Workload::from_arrays(w.arrays(1));
    let weights = [0.0, 0.1, 0.2, 0.5, 1.0, 2.0];

    let sweep = |threads: usize| {
        let configs = hardware_weight_sweep(&weights, &SystemConfig::new().with_threads(threads));
        explore(&app, &workload, &configs).expect("sweep runs")
    };
    let sequential = sweep(1);
    let parallel = sweep(3);

    // DesignPoint is PartialEq over raw f64s: bit-identical or bust.
    assert_eq!(sequential.points, parallel.points);
    assert_eq!(
        sequential
            .pareto_frontier()
            .iter()
            .map(|p| p.label.clone())
            .collect::<Vec<_>>(),
        parallel
            .pareto_frontier()
            .iter()
            .map(|p| p.label.clone())
            .collect::<Vec<_>>(),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Memoized schedule results equal freshly computed ones for any
    /// cluster subset and any resource set, and repeat lookups are
    /// served from the cache.
    #[test]
    fn memoized_schedules_equal_fresh_computation(
        picks in prop::collection::vec(0usize..64, 1..5),
        set_index in 0usize..5,
    ) {
        let w = by_name("trick").expect("trick exists");
        let config = SystemConfig::new();
        let prepared = prepare(
            w.app().expect("lowers"),
            Workload::from_arrays(w.arrays(1)),
            &config,
        )
        .expect("prepares");

        // Map the raw picks onto actual cluster ids, dedup, sort —
        // the canonical partition order.
        let cluster_ids: Vec<_> = prepared.chain.iter().map(|c| c.id).collect();
        let mut clusters: Vec<_> = picks
            .iter()
            .map(|&p| cluster_ids[p % cluster_ids.len()])
            .collect();
        clusters.sort();
        clusters.dedup();
        let set = &config.resource_sets[set_index % config.resource_sets.len()];

        let mut blocks = Vec::new();
        for &cid in &clusters {
            blocks.extend(prepared.chain.cluster(cid).blocks.iter().copied());
        }

        let cache: Arc<ScheduleCache<ScheduleKey>> = Arc::new(ScheduleCache::new());
        let key: ScheduleKey = (clusters.clone(), set.name().to_owned(), set.iter().collect());
        let compute = || {
            let sched = schedule_cluster(&prepared.app, &blocks, set, &config.library)?;
            let binding = bind(&sched, &config.library);
            let util = utilization(&sched, &binding, &prepared.profile, &config.library);
            Ok(ScheduledCluster { sched, binding, util })
        };

        let fresh = compute();
        let cached_first = cache.get_or_compute(key.clone(), compute);
        let cached_again = cache.get_or_compute(key, || unreachable!("must be cached"));

        match (fresh, cached_first, cached_again) {
            (Ok(fresh), Ok(first), Ok(again)) => {
                prop_assert_eq!(&fresh, &*first);
                prop_assert!(Arc::ptr_eq(&first, &again));
                prop_assert_eq!(cache.misses(), 1);
                prop_assert_eq!(cache.hits(), 1);
            }
            (Err(fresh_err), Err(first_err), Err(again_err)) => {
                // Infeasibility must be cached faithfully too.
                prop_assert_eq!(&fresh_err, &first_err);
                prop_assert_eq!(&first_err, &again_err);
            }
            other => prop_assert!(false, "cache/fresh disagreement: {:?}", other),
        }
    }
}
