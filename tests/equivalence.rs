//! Old-flow vs new-flow equivalence: the Engine/Session spine must be
//! a pure refactor of the result surface.
//!
//! Two independently constructed flows — the default configuration
//! (replay-backed verification, automatic thread count) and a
//! deliberately stripped one (`threads = 1`, `trace_cap = 0`, i.e. the
//! sequential, direct-simulation path the pre-engine code ran) — must
//! produce bit-identical design metrics, Table-1 renderings, and JSON
//! exports on all six paper workloads. A shared-engine exploration
//! sweep must likewise equal one fresh engine per configuration.

use corepart::engine::Engine;
use corepart::explore::{explore, hardware_weight_sweep, DesignPoint, Exploration};
use corepart::json::{entry_to_json, table1_to_json};
use corepart::partition::{PartitionOutcome, Partitioner};
use corepart::prepare::Workload;
use corepart::report::{Table1, Table1Entry};
use corepart::system::SystemConfig;
use corepart_tech::units::GateEq;
use corepart_workloads::{all, by_name};

fn run_flow(config: SystemConfig, w: &corepart_workloads::PaperWorkload) -> PartitionOutcome {
    let app = w.app().expect("workload lowers");
    let workload = Workload::from_arrays(w.arrays(1));
    let engine = Engine::new(config).expect("engine");
    let session = engine.session(&app, &workload);
    Partitioner::new(&session)
        .expect("initial run")
        .run()
        .expect("search")
}

#[test]
fn replayed_flow_equals_direct_sequential_flow_on_all_six_workloads() {
    for w in all() {
        let default = run_flow(SystemConfig::new(), &w);
        let stripped = run_flow(SystemConfig::new().with_threads(1).with_trace_cap(0), &w);

        // The replay-backed default search must replay; the stripped
        // flow must not — and nothing else may differ.
        assert!(default.search.replayed > 0, "`{}` did not replay", w.name);
        assert_eq!(stripped.search.replayed, 0);

        // Outcome equality covers initial metrics, the chosen partition
        // with its verified detail, and the (timing-free) search stats.
        assert_eq!(default, stripped, "outcome diverged on `{}`", w.name);

        // Bit-identical renderings and JSON exports.
        let table = |o: &PartitionOutcome| {
            let mut t = Table1::new();
            t.push(Table1Entry::from_outcome(w.name, o));
            t
        };
        let (td, ts) = (table(&default), table(&stripped));
        assert_eq!(
            td.to_string(),
            ts.to_string(),
            "Table 1 diverged on `{}`",
            w.name
        );
        assert_eq!(
            table1_to_json(&td),
            table1_to_json(&ts),
            "table JSON diverged on `{}`",
            w.name
        );
        assert_eq!(
            entry_to_json(&td.entries()[0]),
            entry_to_json(&ts.entries()[0]),
            "entry JSON diverged on `{}`",
            w.name
        );
    }
}

#[test]
fn shared_engine_sweep_equals_fresh_engine_per_config() {
    let w = by_name("ckey").expect("ckey exists");
    let app = w.app().expect("lowers");
    let workload = Workload::from_arrays(w.arrays(1));
    let weights = [0.0, 0.2, 1.0, 4.0];
    let configs = hardware_weight_sweep(&weights, &SystemConfig::new());

    // The shared path: one engine, artifacts pooled across the sweep.
    let shared = explore(&app, &workload, &configs).expect("sweep runs");

    // The reference path: every configuration from scratch.
    let mut points = Vec::new();
    let first = Engine::new(configs[0].1.clone()).expect("engine");
    let first_session = first.session(&app, &workload);
    let initial = &first_session.baseline().expect("baseline").metrics;
    let base = initial.total_energy();
    points.push(DesignPoint {
        label: "initial (all software)".into(),
        energy: initial.total_energy(),
        cycles: initial.total_cycles(),
        geq: GateEq::ZERO,
        saving_percent: 0.0,
        is_initial: true,
    });
    for (label, config) in &configs {
        let outcome = run_flow(config.clone(), &w);
        let (energy, cycles, geq) = match &outcome.best {
            Some((_, detail)) => (
                detail.metrics.total_energy(),
                detail.metrics.total_cycles(),
                detail.metrics.geq,
            ),
            None => (
                outcome.initial.total_energy(),
                outcome.initial.total_cycles(),
                GateEq::ZERO,
            ),
        };
        points.push(DesignPoint {
            label: label.clone(),
            energy,
            cycles,
            geq,
            saving_percent: energy.percent_saving(base).unwrap_or(0.0),
            is_initial: false,
        });
    }
    let fresh = Exploration { points };

    // DesignPoint is PartialEq over raw f64s: bit-identical or bust.
    assert_eq!(shared.points, fresh.points);
    assert_eq!(
        shared
            .pareto_frontier()
            .iter()
            .map(|p| p.label.as_str())
            .collect::<Vec<_>>(),
        fresh
            .pareto_frontier()
            .iter()
            .map(|p| p.label.as_str())
            .collect::<Vec<_>>(),
    );
}
