//! Extension experiment **E1** — technology-node × supply-voltage
//! sweep of the chosen partition.
//!
//! The paper's related work includes multiple-voltage core-based design
//! (its reference \[10\], Hong/Kirovski DAC'98); Henkel's own cores run
//! at the nominal CMOS6 5 V. Earlier revisions of this experiment
//! re-evaluated only the ASIC core at 5.0/3.3/2.4 V. With operating
//! points a first-class axis, E1 now spans the whole
//! [`NodeScalingTable`](corepart_tech::scaling::NodeScalingTable): the
//! flow runs **once** per application at the base process, then the
//! chosen design and the all-software initial are re-weighed to every
//! node × vdd point. Replay counts are node-independent, so no further
//! simulation happens — each row is pure arithmetic (energy ×
//! node factor × (V/Vnom)², time × derate/freq, area × node factor).
//!
//! ```text
//! cargo run --release -p corepart-bench --bin ablation_voltage
//! ```

use corepart::engine::Engine;
use corepart::partition::Partitioner;
use corepart::prepare::Workload;
use corepart::system::SystemConfig;
use corepart_bench::SEED;
use corepart_tech::scaling::OperatingPoint;
use corepart_workloads::all;

/// Supplies per node: nominal plus two DVFS steps toward the floor.
const VDD_STEPS: usize = 3;

fn main() {
    let config = SystemConfig::new();
    println!("E1: node x vdd re-weighting of the chosen partition\n");
    println!(
        "{:<8} {:>6} {:>7} {:>13} {:>13} {:>9} {:>10}",
        "app", "node", "Vdd", "energy J", "time s", "vs nat%", "HW cells"
    );
    for w in all() {
        let app = w.app().expect("bundled workload lowers");
        let workload = Workload::from_arrays(w.arrays(SEED));
        let engine = Engine::new(config.clone()).expect("engine");
        let session = engine.session(&app, &workload);
        let partitioner = Partitioner::new(&session).expect("initial run");
        let outcome = partitioner.run().expect("search");
        let Some((_, detail)) = &outcome.best else {
            println!("{:<8} (no partition found)\n", w.name);
            continue;
        };

        // The native point anchors the "vs nat%" column: how much the
        // same design's energy moves purely by retargeting the node
        // and supply.
        let native = config
            .clone()
            .with_operating_point(OperatingPoint::native_of(&config.process))
            .resolved_point()
            .expect("native point is valid")
            .expect("point is set");
        let anchor = native
            .weigh_raw(
                detail.metrics.total_energy(),
                detail.metrics.total_cycles(),
                detail.metrics.geq,
            )
            .energy;

        for node in config.scaling.nodes() {
            let row = config.scaling.row(node).expect("listed node");
            for vdd in row.vdd_sweep(&config.process, VDD_STEPS) {
                let rp = config
                    .clone()
                    .with_operating_point(OperatingPoint { node_nm: node, vdd })
                    .resolved_point()
                    .expect("table point is valid")
                    .expect("point is set");
                let best = rp.weigh_raw(
                    detail.metrics.total_energy(),
                    detail.metrics.total_cycles(),
                    detail.metrics.geq,
                );
                let saving = (1.0 - best.energy.joules() / anchor.joules()) * 100.0;
                println!(
                    "{:<8} {:>4}nm {:>6.2}V {:>13.4e} {:>13.4e} {:>9.1} {:>10.0}",
                    w.name,
                    node,
                    vdd,
                    best.energy.joules(),
                    best.time.secs(),
                    saving,
                    best.area_cells,
                );
            }
        }
        println!();
    }
    println!(
        "Reading: counts are node-independent, so every row above is a pure\n\
         re-weighting of one base-process simulation. `vs nat%` is the energy\n\
         saved against the same design at the native 800nm/5V point; the\n\
         saving over the all-software initial is point-independent because\n\
         both designs carry the same energy weight."
    );
}
