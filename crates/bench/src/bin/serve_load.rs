//! `serve_load` — scripted TCP load driver for a running `corepart
//! serve` daemon (the CI serve-smoke client).
//!
//! ```text
//! cargo run --release -p corepart-bench --bin serve_load [port] [--pipeline N]
//! ```
//!
//! Connects to `127.0.0.1:port` (default: the daemon's default port),
//! fires a request sequence with repeated fingerprints across all
//! three compute commands, then asserts through the `stats` endpoint
//! that the warm store actually served: hit rate above zero and a
//! reported p99 latency. One partition response line is echoed to
//! stdout so the CI job can grep the served session's `batch_shards`.
//!
//! With `--pipeline N`, a third pass re-fires the warm mix with N
//! requests in flight on the one connection, printing throughput
//! against the serial pass and the p50/p95/p99 latency split into
//! queue-wait vs compute (from the per-response `queue_nanos` /
//! `compute_nanos` stats). A same-fingerprint verify storm against a
//! cold app then drives cross-request batch coalescing, and the
//! daemon's `pipeline` stats object is echoed to stdout so CI can
//! grep a nonzero coalesced-batch counter.
//!
//! Finishes with a `shutdown` request. Any failed expectation exits
//! nonzero.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use corepart::json::{parse_json, JsonValue};
use corepart::serve::{ComputeKind, ComputeRequest, DEFAULT_PORT};
use corepart_bench::SEED;
use corepart_workloads::{all, PaperWorkload};

fn fail(message: &str) -> ! {
    eprintln!("serve_load: {message}");
    std::process::exit(1);
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(port: u16) -> Client {
        // The daemon may still be booting when CI launches the driver.
        let mut last = String::new();
        for _ in 0..50 {
            match TcpStream::connect(("127.0.0.1", port)) {
                Ok(stream) => {
                    return Client {
                        reader: BufReader::new(stream.try_clone().expect("clone stream")),
                        writer: stream,
                    }
                }
                Err(e) => {
                    last = e.to_string();
                    std::thread::sleep(Duration::from_millis(200));
                }
            }
        }
        fail(&format!("cannot connect to 127.0.0.1:{port}: {last}"));
    }

    fn send(&mut self, line: &str) {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .unwrap_or_else(|e| fail(&format!("send failed: {e}")));
    }

    fn recv(&mut self) -> JsonValue {
        let mut response = String::new();
        self.reader
            .read_line(&mut response)
            .unwrap_or_else(|e| fail(&format!("receive failed: {e}")));
        if response.is_empty() {
            fail("the daemon closed the connection mid-sequence");
        }
        let parsed = parse_json(response.trim_end())
            .unwrap_or_else(|e| fail(&format!("unparseable response {response:?}: {e}")));
        if parsed.get("ok").and_then(JsonValue::as_bool) != Some(true) {
            fail(&format!("request was rejected: {}", response.trim_end()));
        }
        parsed
    }

    fn ask(&mut self, line: &str) -> JsonValue {
        self.send(line);
        self.recv()
    }
}

/// The `p`th percentile of `values` (nearest-rank on a sorted copy).
fn percentile(values: &[u64], p: usize) -> u64 {
    if values.is_empty() {
        return 0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    sorted[(sorted.len() - 1) * p / 100]
}

fn requests_for(w: &PaperWorkload) -> Vec<ComputeRequest> {
    let mut partition = ComputeRequest::new(ComputeKind::Partition, w.source);
    partition.arrays = w.arrays(SEED);
    let mut explore = partition.clone();
    explore.kind = ComputeKind::Explore;
    explore.weights = Some(vec![0.0, 1.0]);
    let mut verify = partition.clone();
    verify.kind = ComputeKind::Verify;
    verify.clusters = vec![0];
    vec![partition, explore, verify]
}

fn main() {
    let mut port: u16 = DEFAULT_PORT;
    let mut pipeline: usize = 0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--pipeline" {
            let v = args.next().unwrap_or_else(|| fail("--pipeline needs N"));
            pipeline = v
                .parse()
                .unwrap_or_else(|_| fail(&format!("bad pipeline depth `{v}`")));
        } else {
            port = arg
                .parse()
                .unwrap_or_else(|_| fail(&format!("bad port `{arg}`")));
        }
    }
    let mut client = Client::connect(port);

    // Two small apps, three commands each, the whole block twice: the
    // second pass repeats every fingerprint against a warm store.
    let apps: Vec<PaperWorkload> = all().into_iter().take(2).collect();
    let mut id = 0u64;
    let mut partition_response = None;
    let mut serial_warm = (Duration::ZERO, 0usize);
    for pass in 0..2 {
        let start = Instant::now();
        let mut sent = 0usize;
        for w in &apps {
            for mut req in requests_for(w) {
                id += 1;
                req.id = Some(id);
                sent += 1;
                let response = client.ask(&req.to_json());
                // Capture the cold pass's partition answer: only a
                // fresh session carries the `batch_shards` counter CI
                // greps for (warm memo hits skip the session).
                if pass == 0 && req.kind == ComputeKind::Partition && partition_response.is_none() {
                    partition_response = Some(response);
                }
            }
        }
        if pass == 1 {
            serial_warm = (start.elapsed(), sent);
        }
    }

    if pipeline > 0 {
        id = pipelined_pass(&mut client, &apps, pipeline, id, serial_warm);
        id = coalescing_storm(&mut client, id);
    }

    // One served partition response on stdout — CI greps its session
    // stats for `batch_shards` to prove the sharded kernel ran.
    let Some(partition_response) = partition_response else {
        fail("no partition response captured");
    };
    println!(
        "{}",
        crate_response_line(&partition_response).unwrap_or_else(|| fail("response not an object"))
    );

    let stats = client.ask(&format!("{{\"id\":{},\"cmd\":\"stats\"}}", id + 1));
    let result = stats
        .get("result")
        .unwrap_or_else(|| fail("stats response has no result"));
    let hit_rate = result
        .get("hit_rate")
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| fail("stats report no hit_rate"));
    let p99 = result
        .get("latency")
        .and_then(|l| l.get("p99_nanos"))
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| fail("stats report no p99"));
    let requests = result
        .get("requests")
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);
    if hit_rate <= 0.0 {
        fail(&format!("expected a warm hit rate, got {hit_rate}"));
    }
    if p99 == 0 {
        fail("expected a nonzero p99 latency");
    }
    eprintln!("serve_load: {requests} requests, hit rate {hit_rate:.2}, p99 {p99} ns");

    client.ask(&format!("{{\"id\":{},\"cmd\":\"shutdown\"}}", id + 2));
    eprintln!("serve_load: shutdown acknowledged");
}

/// The pipelined pass: the warm request mix re-fired with `depth`
/// requests in flight on the one connection. Prints throughput vs the
/// serial warm pass and the queue-wait/compute latency split.
fn pipelined_pass(
    client: &mut Client,
    apps: &[PaperWorkload],
    depth: usize,
    mut id: u64,
    serial_warm: (Duration, usize),
) -> u64 {
    // Repeat the warm mix a few times so the window stays full long
    // enough to measure something.
    let mut reqs = Vec::new();
    for _ in 0..4 {
        for w in apps {
            for mut req in requests_for(w) {
                id += 1;
                req.id = Some(id);
                reqs.push(req);
            }
        }
    }
    let mut queue_ns = Vec::with_capacity(reqs.len());
    let mut compute_ns = Vec::with_capacity(reqs.len());
    let start = Instant::now();
    let mut next = 0usize;
    let mut inflight = 0usize;
    while next < reqs.len() || inflight > 0 {
        while inflight < depth && next < reqs.len() {
            client.send(&reqs[next].to_json());
            next += 1;
            inflight += 1;
        }
        let response = client.recv();
        inflight -= 1;
        if let Some(stats) = response.get("stats") {
            if let Some(q) = stats.get("queue_nanos").and_then(JsonValue::as_u64) {
                queue_ns.push(q);
            }
            if let Some(c) = stats.get("compute_nanos").and_then(JsonValue::as_u64) {
                compute_ns.push(c);
            }
        }
    }
    let elapsed = start.elapsed();
    if queue_ns.is_empty() || compute_ns.is_empty() {
        fail("pipelined responses carried no queue/compute split");
    }
    let throughput = reqs.len() as f64 / elapsed.as_secs_f64().max(1e-9);
    let serial_rps = serial_warm.1 as f64 / serial_warm.0.as_secs_f64().max(1e-9);
    eprintln!(
        "serve_load: pipelined depth {depth}: {} requests in {:.3}s ({throughput:.0} req/s; \
         serial warm pass {serial_rps:.0} req/s)",
        reqs.len(),
        elapsed.as_secs_f64(),
    );
    eprintln!(
        "serve_load: queue-wait p50/p95/p99 = {}/{}/{} ns; compute p50/p95/p99 = {}/{}/{} ns",
        percentile(&queue_ns, 50),
        percentile(&queue_ns, 95),
        percentile(&queue_ns, 99),
        percentile(&compute_ns, 50),
        percentile(&compute_ns, 95),
        percentile(&compute_ns, 99),
    );
    id
}

/// The coalescing storm: 16 same-fingerprint verify requests against
/// an app no earlier pass touched, written back-to-back so the shard
/// worker drains them as one batch while the cold first request is
/// still computing. Prints the daemon's `pipeline` stats object to
/// stdout (the CI grep target) and asserts at least one multi-request
/// batch was coalesced.
fn coalescing_storm(client: &mut Client, mut id: u64) -> u64 {
    let apps = all();
    let Some(w) = apps.get(2) else {
        fail("need a third paper workload for the storm");
    };
    let mut burst = String::new();
    let count = 16usize;
    for _ in 0..count {
        let mut req = ComputeRequest::new(ComputeKind::Verify, w.source);
        req.arrays = w.arrays(SEED);
        req.clusters = vec![0];
        id += 1;
        req.id = Some(id);
        burst.push_str(&req.to_json());
        burst.push('\n');
    }
    client
        .writer
        .write_all(burst.as_bytes())
        .and_then(|()| client.writer.flush())
        .unwrap_or_else(|e| fail(&format!("storm send failed: {e}")));
    for _ in 0..count {
        client.recv();
    }

    id += 1;
    let stats = client.ask(&format!("{{\"id\":{id},\"cmd\":\"stats\"}}"));
    let pipeline = stats
        .get("result")
        .and_then(|r| r.get("pipeline"))
        .unwrap_or_else(|| fail("stats report no pipeline object"));
    let bucket = |k: &str| {
        pipeline
            .get("coalesced")
            .and_then(|c| c.get(k))
            .and_then(JsonValue::as_u64)
            .unwrap_or(0)
    };
    println!(
        "pipeline {}",
        crate_response_line(pipeline).unwrap_or_else(|| fail("pipeline stats not an object"))
    );
    if bucket("k2_4") + bucket("k5_16") == 0 {
        fail("the verify storm coalesced no multi-request batch");
    }
    id
}

/// Re-renders the captured partition response as one stdout line (the
/// parsed form is re-serialized so the grep target is what the daemon
/// actually said, minus any framing whitespace).
fn crate_response_line(v: &JsonValue) -> Option<String> {
    fn render(v: &JsonValue, out: &mut String) {
        match v {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => out.push_str(&format!("{n}")),
            JsonValue::Str(s) => {
                out.push('"');
                out.push_str(&corepart::json::json_escape(s));
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render(item, out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, item)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&corepart::json::json_escape(k));
                    out.push_str("\":");
                    render(item, out);
                }
                out.push('}');
            }
        }
    }
    matches!(v, JsonValue::Obj(_)).then(|| {
        let mut out = String::new();
        render(v, &mut out);
        out
    })
}
