//! Reference-trace capture and replay.
//!
//! [`SimConfig::hw_blocks`](crate::simulator::SimConfig::hw_blocks)
//! changes *accounting only* — a partitioned run executes exactly the
//! same instruction stream as the initial run, because hardware-mapped
//! blocks still execute functionally. Verification therefore does not
//! need to re-interpret the program per candidate: one captured
//! reference execution (the pc stream plus the data addresses of every
//! load/store, in order) contains everything the energy and cache
//! accounting consume, and any candidate's `hw_blocks` filter can be
//! applied at *replay* time.
//!
//! * [`TraceBuilder`] is an [`ExecRecorder`] that encodes the streams
//!   compactly while [`Simulator::run_recorded`](crate::simulator::Simulator::run_recorded) executes once.
//! * [`ReferenceTrace`] is the finished, immutable capture.
//! * [`TraceReplayer`] re-runs the accounting of
//!   [`Simulator::run`](crate::simulator::Simulator::run) over a trace
//!   for any hardware-block set, reproducing [`RunStats`] — and the
//!   [`MemSink`] reference stream — **bit for bit** (the same `f64`
//!   operations in the same order).
//!
//! ## Bounded memory
//!
//! The pc stream is run-length encoded — execution is sequential
//! except at taken branches, so each maximal `pc, pc+1, …` stretch
//! becomes one `(start delta, length)` zigzag-LEB128 varint pair —
//! and the data stream holds one fixed-width 4-byte record per access
//! (decode speed beats the byte or two a varint would save). Both
//! streams live in fixed-size segments, so a long run costs a few
//! bytes per *branch* plus four bytes per data access and never
//! reallocates large buffers. A caller-supplied byte cap bounds
//! the total: when the encoded size would exceed it, the builder frees
//! everything and [`TraceBuilder::finish`] returns `None` — callers
//! fall back to direct simulation, trading time for memory, never
//! correctness.

use corepart_ir::cdfg::Application;
use corepart_ir::op::BlockId;
use corepart_tech::units::{Cycles, Energy};

use crate::codegen::{MachProgram, SLOT_BASE};
use crate::energy::EnergyTable;
use crate::isa::{InstClass, MachInst};
use crate::simulator::{ExecRecorder, MemSink, RunStats, SimConfig, SimError, TraceEntry};

/// Segment size of the chunked encoding. Small enough that a capture
/// never holds one huge allocation, large enough that the segment list
/// stays short (a 5M-cycle run is ~20 segments).
const SEGMENT_BYTES: usize = 256 * 1024;

/// A segmented varint byte stream. Varints never straddle a segment
/// boundary: a new segment is started whenever the current one has
/// reached [`SEGMENT_BYTES`], and each segment keeps 10 spare bytes of
/// capacity (the longest LEB128 encoding of a `u64`).
#[derive(Debug, Clone, Default)]
struct SegStream {
    segments: Vec<Vec<u8>>,
    bytes: usize,
}

impl SegStream {
    fn put(&mut self, mut v: u64) {
        let segment = match self.segments.last_mut() {
            Some(s) if s.len() < SEGMENT_BYTES => s,
            _ => {
                self.segments.push(Vec::with_capacity(SEGMENT_BYTES + 10));
                self.segments.last_mut().expect("just pushed")
            }
        };
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                segment.push(byte);
                self.bytes += 1;
                return;
            }
            segment.push(byte | 0x80);
            self.bytes += 1;
        }
    }

    /// Appends a fixed-width little-endian `u32` record (used by the
    /// data-address stream, where decode speed beats the byte or two a
    /// varint would save).
    fn put_u32(&mut self, v: u32) {
        let segment = match self.segments.last_mut() {
            Some(s) if s.len() < SEGMENT_BYTES => s,
            _ => {
                self.segments.push(Vec::with_capacity(SEGMENT_BYTES + 10));
                self.segments.last_mut().expect("just pushed")
            }
        };
        segment.extend_from_slice(&v.to_le_bytes());
        self.bytes += 4;
    }

    fn reader(&self) -> SegReader<'_> {
        SegReader {
            segments: &self.segments,
            segment: 0,
            offset: 0,
        }
    }
}

/// Sequential decoder over a [`SegStream`].
#[derive(Debug, Clone)]
struct SegReader<'a> {
    segments: &'a [Vec<u8>],
    segment: usize,
    offset: usize,
}

impl SegReader<'_> {
    fn next(&mut self) -> Option<u64> {
        loop {
            let s = self.segments.get(self.segment)?;
            if self.offset < s.len() {
                break;
            }
            self.segment += 1;
            self.offset = 0;
        }
        let s = &self.segments[self.segment];
        let mut v: u64 = 0;
        let mut shift = 0;
        loop {
            let byte = *s.get(self.offset)?;
            self.offset += 1;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Some(v);
            }
            shift += 7;
        }
    }

    /// Decodes one fixed-width record written by [`SegStream::put_u32`]
    /// (records never straddle a segment boundary).
    #[inline]
    fn next_u32(&mut self) -> Option<u32> {
        loop {
            let s = self.segments.get(self.segment)?;
            if self.offset < s.len() {
                break;
            }
            self.segment += 1;
            self.offset = 0;
        }
        let s = &self.segments[self.segment];
        let bytes = s.get(self.offset..self.offset + 4)?;
        self.offset += 4;
        Some(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }
}

/// FNV-1a over the counts, the return value and both encoded byte
/// streams — the one definition shared by [`TraceBuilder::finish`]
/// (which stamps it into the capture) and
/// [`ReferenceTrace::validate`] (which recomputes and compares it).
fn fingerprint_of(
    events: u64,
    data_events: u64,
    return_bits: u64,
    pcs: &SegStream,
    addrs: &SegStream,
) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for v in [events, data_events, return_bits] {
        for byte in v.to_le_bytes() {
            eat(byte);
        }
    }
    for stream in [pcs, addrs] {
        for segment in &stream.segments {
            for &byte in segment {
                eat(byte);
            }
        }
    }
    h
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Decoder of the fixed-width data-address stream.
#[derive(Debug, Clone)]
struct AddrReader<'a> {
    inner: SegReader<'a>,
}

impl AddrReader<'_> {
    #[inline]
    fn next(&mut self) -> Option<u32> {
        self.inner.next_u32()
    }
}

/// Decoder of the run-length-encoded pc stream: yields one
/// `(start pc, length)` pair per maximal sequential stretch.
#[derive(Debug, Clone)]
struct RunReader<'a> {
    inner: SegReader<'a>,
    prev_start: i64,
}

impl RunReader<'_> {
    fn next(&mut self) -> Option<(u32, u64)> {
        let delta = unzigzag(self.inner.next()?);
        let start = self.prev_start + delta;
        self.prev_start = start;
        let len = self.inner.next()?;
        Some((u32::try_from(start).ok()?, len))
    }
}

/// The immutable capture of one reference execution: the executed pc
/// stream, the data-address stream (one entry per executed load/store,
/// in execution order), and the run's return value.
///
/// A trace is tied to the exact ([`MachProgram`], workload) pair it was
/// captured from; the [`fingerprint`](ReferenceTrace::fingerprint)
/// identifies that pair for memoization.
#[derive(Debug, Clone)]
pub struct ReferenceTrace {
    pcs: SegStream,
    addrs: SegStream,
    events: u64,
    data_events: u64,
    return_value: i64,
    fingerprint: u64,
}

impl ReferenceTrace {
    /// Executed instructions recorded (µP- and hardware-mapped alike).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Recorded data accesses (loads + stores).
    pub fn data_events(&self) -> u64 {
        self.data_events
    }

    /// Encoded size in bytes (excluding constant-size bookkeeping).
    pub fn bytes(&self) -> usize {
        self.pcs.bytes + self.addrs.bytes
    }

    /// The run's return value (register `r1` at `halt`).
    pub fn return_value(&self) -> i64 {
        self.return_value
    }

    /// FNV-1a hash over the encoded streams and event counts —
    /// identifies the (program, workload) execution for memo keys.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Recomputes the FNV-1a fingerprint from the encoded streams and
    /// compares it against the one stamped at capture time — the
    /// integrity gate for traces whose bytes may have been damaged
    /// after capture. [`crate::trace::TraceReplayer::replay`]'s own
    /// conservation checks catch truncation (fewer decoded events than
    /// recorded); this check additionally catches any byte-level
    /// corruption that leaves the counts plausible.
    ///
    /// # Errors
    ///
    /// [`SimError::TraceCorrupt`] when the streams no longer hash to
    /// the stored fingerprint.
    pub fn validate(&self) -> Result<(), SimError> {
        let h = fingerprint_of(
            self.events,
            self.data_events,
            self.return_value as u64,
            &self.pcs,
            &self.addrs,
        );
        if h != self.fingerprint {
            return Err(SimError::TraceCorrupt {
                detail: format!(
                    "fingerprint mismatch: captured {:#018x}, streams hash to {h:#018x}",
                    self.fingerprint
                ),
            });
        }
        Ok(())
    }

    fn pc_reader(&self) -> RunReader<'_> {
        RunReader {
            inner: self.pcs.reader(),
            prev_start: 0,
        }
    }

    fn addr_reader(&self) -> AddrReader<'_> {
        AddrReader {
            inner: self.addrs.reader(),
        }
    }
}

/// Deliberate-damage hooks for the conformance harness (`conform`
/// feature only): fault-injection tests use these to manufacture the
/// degraded traces the integrity checks must reject. Not part of the
/// supported API surface.
#[cfg(feature = "conform")]
impl ReferenceTrace {
    /// Flips every bit of one encoded byte (of the data-address stream
    /// when `addr_stream`, of the pc stream otherwise). Returns `false`
    /// when `index` is past the end of that stream.
    pub fn corrupt_byte(&mut self, addr_stream: bool, index: usize) -> bool {
        let stream = if addr_stream {
            &mut self.addrs
        } else {
            &mut self.pcs
        };
        let mut remaining = index;
        for segment in &mut stream.segments {
            if remaining < segment.len() {
                segment[remaining] ^= 0xff;
                return true;
            }
            remaining -= segment.len();
        }
        false
    }

    /// Drops up to `n` trailing bytes of the encoded pc stream,
    /// returning how many were actually removed — a truncated capture,
    /// as if segments were lost after the run.
    pub fn truncate_pcs(&mut self, n: usize) -> usize {
        let mut dropped = 0;
        while dropped < n {
            match self.pcs.segments.last_mut() {
                Some(last) if last.is_empty() => {
                    self.pcs.segments.pop();
                }
                Some(last) => {
                    last.pop();
                    self.pcs.bytes -= 1;
                    dropped += 1;
                }
                None => break,
            }
        }
        dropped
    }

    /// Re-stamps the fingerprint from the *current* streams so
    /// [`ReferenceTrace::validate`] passes again — used to build
    /// internally-consistent-looking truncated traces that only the
    /// replay-time conservation checks can reject.
    pub fn refingerprint(&mut self) {
        self.fingerprint = fingerprint_of(
            self.events,
            self.data_events,
            self.return_value as u64,
            &self.pcs,
            &self.addrs,
        );
    }
}

/// An [`ExecRecorder`] that builds a [`ReferenceTrace`] while the
/// simulator runs, under a byte cap.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    pcs: SegStream,
    addrs: SegStream,
    prev_run_start: i64,
    run_start: u32,
    run_len: u64,
    events: u64,
    data_events: u64,
    cap_bytes: usize,
    overflowed: bool,
}

impl TraceBuilder {
    /// A builder that keeps at most `cap_bytes` of encoded trace.
    /// `0` disables capture entirely (every event overflows), which is
    /// the transparent path to "always simulate directly".
    pub fn new(cap_bytes: usize) -> Self {
        TraceBuilder {
            pcs: SegStream::default(),
            addrs: SegStream::default(),
            prev_run_start: 0,
            run_start: 0,
            run_len: 0,
            events: 0,
            data_events: 0,
            cap_bytes,
            overflowed: cap_bytes == 0,
        }
    }

    /// Whether the cap was exceeded (the capture was discarded).
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    fn flush_run(&mut self) {
        if self.run_len > 0 {
            self.pcs
                .put(zigzag(i64::from(self.run_start) - self.prev_run_start));
            self.pcs.put(self.run_len);
            self.prev_run_start = i64::from(self.run_start);
            self.run_len = 0;
            self.spill_if_over_cap();
        }
    }

    fn spill_if_over_cap(&mut self) {
        if self.pcs.bytes + self.addrs.bytes > self.cap_bytes {
            self.overflowed = true;
            // Free the memory eagerly: the rest of the run keeps
            // executing, and the half-trace is useless.
            self.pcs = SegStream::default();
            self.addrs = SegStream::default();
        }
    }

    /// Seals the capture. `return_value` is the finished run's return
    /// value ([`RunStats::return_value`]). Returns `None` when the cap
    /// was exceeded.
    pub fn finish(mut self, return_value: i64) -> Option<ReferenceTrace> {
        if self.overflowed {
            return None;
        }
        self.flush_run();
        if self.overflowed {
            return None;
        }
        let h = fingerprint_of(
            self.events,
            self.data_events,
            self.return_value_bits(return_value),
            &self.pcs,
            &self.addrs,
        );
        Some(ReferenceTrace {
            pcs: self.pcs,
            addrs: self.addrs,
            events: self.events,
            data_events: self.data_events,
            return_value,
            fingerprint: h,
        })
    }

    fn return_value_bits(&self, return_value: i64) -> u64 {
        return_value as u64
    }
}

impl ExecRecorder for TraceBuilder {
    fn inst(&mut self, pc: u32) {
        if self.overflowed {
            return;
        }
        // Run-length encoding: extend the current sequential stretch,
        // or emit it and start a new one at a taken branch.
        if self.run_len > 0 && pc == self.run_start + (self.run_len as u32) {
            self.run_len += 1;
        } else {
            self.flush_run();
            self.run_start = pc;
            self.run_len = 1;
        }
        self.events += 1;
    }

    fn data(&mut self, addr: u32) {
        if self.overflowed {
            return;
        }
        self.addrs.put_u32(addr);
        self.data_events += 1;
        self.spill_if_over_cap();
    }
}

/// Whether (and how) an instruction touches data memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccessKind {
    None,
    Load,
    Store,
}

/// Everything the accounting loop needs about one pc, precomputed.
#[derive(Debug, Clone, Copy)]
struct PcInfo {
    inst: MachInst,
    class: InstClass,
    class_index: usize,
    latency: u64,
    block: BlockId,
    block_index: usize,
    is_block_start: bool,
    inst_addr: u32,
    /// `EnergyTable::base(class, latency)` — a pure function of the
    /// two, so precomputing preserves the exact bits.
    base_energy: Energy,
    access: AccessKind,
}

/// A [`ReferenceTrace`] decoded once into flat in-memory form, ready
/// to be walked any number of times without re-parsing the varint/RLE
/// encoding: one `(start, length)` pair per sequential stretch
/// (structure-of-arrays) plus the raw data-address records.
///
/// Decoding is the per-candidate cost that
/// [`TraceReplayer::replay_batch`] amortizes: K candidates share one
/// decoded walk instead of K decodes of the encoded streams.
#[derive(Debug, Clone)]
pub struct DecodedTrace {
    starts: Vec<u32>,
    lens: Vec<u64>,
    addrs: Vec<u32>,
    events: u64,
    data_events: u64,
    return_value: i64,
}

impl DecodedTrace {
    /// Decodes the pc and data-address streams to exhaustion. A
    /// truncated or damaged capture decodes fewer records than the
    /// trace header claims; that shortfall is *not* an error here —
    /// the replay-time conservation checks reject it exactly as the
    /// streaming [`TraceReplayer::replay`] path does.
    pub fn decode(trace: &ReferenceTrace) -> Self {
        let mut starts = Vec::new();
        let mut lens = Vec::new();
        let mut runs = trace.pc_reader();
        while let Some((start, len)) = runs.next() {
            starts.push(start);
            lens.push(len);
        }
        let mut addrs = Vec::with_capacity(trace.data_events as usize);
        let mut reader = trace.addr_reader();
        while let Some(addr) = reader.next() {
            addrs.push(addr);
        }
        DecodedTrace {
            starts,
            lens,
            addrs,
            events: trace.events,
            data_events: trace.data_events,
            return_value: trace.return_value,
        }
    }

    /// Executed instructions the source trace recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Decoded sequential stretches.
    pub fn stretches(&self) -> usize {
        self.starts.len()
    }
}

/// Per-candidate accumulator state of one [`TraceReplayer::replay_batch`]
/// lane — exactly the locals of the sequential [`TraceReplayer::replay`],
/// so each lane performs the same operations in the same order.
///
/// The class-keyed counters live in flat arrays (indexed by
/// `PcInfo::class_index`, the `InstClass::ALL` position) instead of the
/// `BTreeMap`s of [`RunStats`]; they are folded into the maps once at
/// finalize. Integer counters restructured this way are exact — only
/// the `f64` *add sequence* carries rounding, and that is unchanged.
struct BatchLane {
    stats: RunStats,
    is_hw_block: Vec<bool>,
    cycles: u64,
    energy: Energy,
    class_switches: u64,
    sw_ifetches: u64,
    sw_reads: u64,
    sw_writes: u64,
    hw_loads: u64,
    hw_stores: u64,
    inst_counts: [u64; 8],
    class_cycles: [u64; 8],
    /// Per-block software-to-hardware entry counts; only non-zero
    /// entries are inserted into `RunStats::hw_block_entries`, which is
    /// exactly the key set the sequential `entry().or_insert(0)` grows.
    hw_entries: Vec<u64>,
    prev_class: Option<InstClass>,
    prev_block: Option<BlockId>,
    prev_was_hw: bool,
    /// Set when the lane died (its candidate's error); a dead lane
    /// skips all further accounting, like the sequential early return.
    dead: Option<SimError>,
}

/// Replays a [`ReferenceTrace`] through the accounting of
/// [`Simulator::run`](crate::simulator::Simulator::run) for an
/// arbitrary hardware-block set.
///
/// Construction precomputes a per-pc table (class, latency, block,
/// base energy, …); [`TraceReplayer::replay`] then walks the decoded
/// pc/address streams executing *only* the accounting — no instruction
/// semantics, no register file, no data memory — in exactly the order
/// the direct run performs it, so every counter and every `f64` in the
/// resulting [`RunStats`] is bit-identical to a fresh
/// `Simulator::run` with the same [`SimConfig`].
#[derive(Debug, Clone)]
pub struct TraceReplayer {
    info: Vec<PcInfo>,
    /// `access_prefix[pc]` = data accesses issued by `info[..pc]`, so a
    /// stretch `lo..hi` consumes `access_prefix[hi] - access_prefix[lo]`
    /// address records — lets the batched walk advance the shared
    /// address cursor per stretch in O(1).
    access_prefix: Vec<u32>,
    /// `run_end[pc]` = exclusive end of the maximal contiguous pc range
    /// around `pc` whose instructions all belong to the same block —
    /// the granularity at which the batched walk hoists the per-block
    /// accounting out of the instruction loop.
    run_end: Vec<u32>,
    /// `lat_prefix[pc]` = summed latency of `info[..pc]`; a run's cycle
    /// total in O(1), for deciding up front that no lane can hit its
    /// cycle limit inside the run.
    lat_prefix: Vec<u64>,
    /// Per data-access ordinal (the `access_prefix` numbering): the pc,
    /// for error reporting on a short address stream.
    access_pc: Vec<u32>,
    /// Per data-access ordinal: `true` for a load, `false` for a store.
    access_is_load: Vec<bool>,
    n_blocks: usize,
    inter_inst_overhead: Energy,
}

impl TraceReplayer {
    /// Builds the replay table for one compiled program.
    pub fn new(prog: &MachProgram, app: &Application, energy: &EnergyTable) -> Self {
        let info = prog
            .insts()
            .iter()
            .enumerate()
            .map(|(pc, &inst)| {
                let pc = pc as u32;
                let block = prog.block_of(pc);
                let class = InstClass::of(&inst);
                let latency = inst.latency();
                PcInfo {
                    inst,
                    class,
                    class_index: InstClass::ALL
                        .iter()
                        .position(|&c| c == class)
                        .expect("class in ALL"),
                    latency,
                    block,
                    block_index: block.0 as usize,
                    is_block_start: prog.block_start(block) == pc,
                    inst_addr: prog.inst_addr(pc),
                    base_energy: energy.base(class, latency),
                    access: match inst {
                        MachInst::Ldw { .. } => AccessKind::Load,
                        MachInst::Stw { .. } => AccessKind::Store,
                        _ => AccessKind::None,
                    },
                }
            })
            .collect::<Vec<PcInfo>>();
        let mut access_prefix = Vec::with_capacity(info.len() + 1);
        let mut lat_prefix = Vec::with_capacity(info.len() + 1);
        let mut access_pc = Vec::new();
        let mut access_is_load = Vec::new();
        let mut running = 0u32;
        let mut latency_sum = 0u64;
        access_prefix.push(running);
        lat_prefix.push(latency_sum);
        for (pc, entry) in info.iter().enumerate() {
            match entry.access {
                AccessKind::None => {}
                AccessKind::Load | AccessKind::Store => {
                    running += 1;
                    access_pc.push(pc as u32);
                    access_is_load.push(matches!(entry.access, AccessKind::Load));
                }
            }
            latency_sum += entry.latency;
            access_prefix.push(running);
            lat_prefix.push(latency_sum);
        }
        let mut run_end = vec![0u32; info.len()];
        let mut end = info.len();
        for pc in (0..info.len()).rev() {
            if pc + 1 < info.len() && info[pc + 1].block != info[pc].block {
                end = pc + 1;
            }
            run_end[pc] = end as u32;
        }
        TraceReplayer {
            info,
            access_prefix,
            run_end,
            lat_prefix,
            access_pc,
            access_is_load,
            n_blocks: app.blocks().len(),
            inter_inst_overhead: energy.inter_inst_overhead(),
        }
    }

    /// Replays `trace` under `config`, streaming the µP-side references
    /// into `sink` — the bit-exact equivalent of
    /// `Simulator::run(config, sink)` for the captured execution.
    ///
    /// # Errors
    ///
    /// [`SimError::CycleLimit`] exactly when the direct run would hit
    /// it; [`SimError::BadPc`]/[`SimError::BadAccess`] only on a
    /// corrupt or mismatched trace; [`SimError::TraceCorrupt`] when
    /// the decoded streams do not add up to the recorded event counts
    /// (a truncated capture) — never partial statistics.
    pub fn replay<S: MemSink>(
        &self,
        trace: &ReferenceTrace,
        config: &SimConfig,
        sink: &mut S,
    ) -> Result<RunStats, SimError> {
        let mut stats = RunStats {
            cycles: Cycles::ZERO,
            energy: Energy::ZERO,
            inst_counts: InstClass::ALL.iter().map(|&c| (c, 0)).collect(),
            class_cycles: InstClass::ALL.iter().map(|&c| (c, 0)).collect(),
            block_class_cycles: vec![[0; 8]; self.n_blocks],
            class_switches: 0,
            block_counts: vec![0; self.n_blocks],
            block_cycles: vec![0; self.n_blocks],
            block_energy: vec![Energy::ZERO; self.n_blocks],
            hw_block_entries: std::collections::HashMap::new(),
            hw_loads: 0,
            hw_stores: 0,
            sw_reads: 0,
            sw_writes: 0,
            sw_ifetches: 0,
            return_value: 0,
            trace: Vec::new(),
        };

        // Per-block hardware flag, indexable in O(1) on the hot path.
        let mut is_hw_block = vec![false; self.n_blocks];
        for b in &config.hw_blocks {
            if let Some(flag) = is_hw_block.get_mut(b.0 as usize) {
                *flag = true;
            }
        }

        let mut cycles: u64 = 0;
        let mut prev_class: Option<InstClass> = None;
        let mut prev_block: Option<BlockId> = None;
        let mut prev_was_hw = false;
        let mut runs = trace.pc_reader();
        let mut addrs = trace.addr_reader();
        let mut decoded_insts: u64 = 0;
        let mut decoded_data: u64 = 0;

        // One decoded (start, length) pair per sequential stretch; the
        // per-instruction body below is byte-for-byte the accounting of
        // the direct run, just driven from the precomputed table.
        while let Some((start, len)) = runs.next() {
            let lo = start as usize;
            let hi = lo
                .checked_add(len as usize)
                .filter(|&hi| hi <= self.info.len())
                .ok_or(SimError::BadPc { pc: start })?;
            decoded_insts = decoded_insts.wrapping_add(len);
            for (off, info) in self.info[lo..hi].iter().enumerate() {
                let pc = start + off as u32;
                let is_hw = is_hw_block[info.block_index];

                // Block-entry accounting.
                if prev_block != Some(info.block) && info.is_block_start {
                    stats.block_counts[info.block_index] += 1;
                    if is_hw && !prev_was_hw {
                        *stats.hw_block_entries.entry(info.block).or_insert(0) += 1;
                    }
                }
                prev_block = Some(info.block);
                prev_was_hw = is_hw;

                if !is_hw {
                    cycles += info.latency;
                    if config.max_cycles > 0 && cycles > config.max_cycles {
                        return Err(SimError::CycleLimit {
                            limit: config.max_cycles,
                        });
                    }
                    let mut e = info.base_energy;
                    if let Some(p) = prev_class {
                        if p != info.class {
                            e += self.inter_inst_overhead;
                            stats.class_switches += 1;
                        }
                    }
                    prev_class = Some(info.class);
                    stats.energy += e;
                    stats.block_cycles[info.block_index] += info.latency;
                    stats.block_energy[info.block_index] += e;
                    *stats.inst_counts.get_mut(&info.class).expect("class") += 1;
                    *stats.class_cycles.get_mut(&info.class).expect("class") += info.latency;
                    stats.block_class_cycles[info.block_index][info.class_index] += info.latency;
                    stats.sw_ifetches += 1;
                    sink.ifetch(info.inst_addr);
                    if stats.trace.len() < config.trace_limit {
                        stats.trace.push(TraceEntry {
                            pc,
                            inst: info.inst,
                            cycles,
                        });
                    }
                } else {
                    // Leaving the µP's instruction stream resets the
                    // circuit-state history.
                    prev_class = None;
                }

                match info.access {
                    AccessKind::Load => {
                        let addr = addrs.next().ok_or(SimError::BadAccess { addr: 0, pc })?;
                        decoded_data += 1;
                        if is_hw {
                            if addr < SLOT_BASE {
                                stats.hw_loads += 1;
                            }
                        } else {
                            stats.sw_reads += 1;
                            sink.read(addr);
                        }
                    }
                    AccessKind::Store => {
                        let addr = addrs.next().ok_or(SimError::BadAccess { addr: 0, pc })?;
                        decoded_data += 1;
                        if is_hw {
                            if addr < SLOT_BASE {
                                stats.hw_stores += 1;
                            }
                        } else {
                            stats.sw_writes += 1;
                            sink.write(addr);
                        }
                    }
                    AccessKind::None => {}
                }
            }
        }

        // Conservation checks: a well-formed trace decodes exactly the
        // number of instructions and data accesses it recorded, and
        // leaves no trailing data-address records. A truncated or
        // damaged capture that survives decoding this far must not
        // yield partial statistics (byte-level corruption with intact
        // counts is the job of [`ReferenceTrace::validate`]).
        if decoded_insts != trace.events
            || decoded_data != trace.data_events
            || addrs.next().is_some()
        {
            return Err(SimError::TraceCorrupt {
                detail: format!(
                    "decoded {decoded_insts} of {} recorded instructions and {decoded_data} of {} recorded data accesses",
                    trace.events, trace.data_events
                ),
            });
        }

        stats.cycles = Cycles::new(cycles);
        stats.return_value = trace.return_value;
        Ok(stats)
    }

    fn fresh_stats(&self) -> RunStats {
        RunStats {
            cycles: Cycles::ZERO,
            energy: Energy::ZERO,
            inst_counts: InstClass::ALL.iter().map(|&c| (c, 0)).collect(),
            class_cycles: InstClass::ALL.iter().map(|&c| (c, 0)).collect(),
            block_class_cycles: vec![[0; 8]; self.n_blocks],
            class_switches: 0,
            block_counts: vec![0; self.n_blocks],
            block_cycles: vec![0; self.n_blocks],
            block_energy: vec![Energy::ZERO; self.n_blocks],
            hw_block_entries: std::collections::HashMap::new(),
            hw_loads: 0,
            hw_stores: 0,
            sw_reads: 0,
            sw_writes: 0,
            sw_ifetches: 0,
            return_value: 0,
            trace: Vec::new(),
        }
    }

    /// Replays a decoded trace for K candidate configurations in one
    /// walk of the event stream, streaming each lane's µP-side
    /// references into its own sink.
    ///
    /// Every lane performs **exactly** the operations the sequential
    /// [`TraceReplayer::replay`] performs for its configuration, in the
    /// same order — per-candidate accounting is independent state, so
    /// interleaving the lanes changes nothing about any lane's `f64`
    /// sequence and every returned [`RunStats`] is bit-identical to
    /// the sequential result. What the lanes *share* is the decode:
    /// the stretch walk, bounds checks and address records are paid
    /// once instead of K times.
    ///
    /// # Errors
    ///
    /// Trace-level failures — a malformed stretch
    /// ([`SimError::BadPc`]), a missing data-address record
    /// ([`SimError::BadAccess`]), or the conservation checks
    /// ([`SimError::TraceCorrupt`]) — poison every candidate alike and
    /// fail the whole batch with the top-level `Err`; no partial
    /// results escape. Per-candidate failures
    /// ([`SimError::CycleLimit`]) are returned in that candidate's
    /// inner slot while the other lanes continue.
    ///
    /// # Panics
    ///
    /// When `configs` and `sinks` have different lengths.
    pub fn replay_batch<S: MemSink>(
        &self,
        decoded: &DecodedTrace,
        configs: &[SimConfig],
        sinks: &mut [S],
    ) -> Result<Vec<Result<RunStats, SimError>>, SimError> {
        assert_eq!(
            configs.len(),
            sinks.len(),
            "one sink per batched configuration"
        );
        if configs.is_empty() {
            return Ok(Vec::new());
        }

        let mut lanes: Vec<BatchLane> = configs
            .iter()
            .map(|config| {
                let mut is_hw_block = vec![false; self.n_blocks];
                for b in &config.hw_blocks {
                    if let Some(flag) = is_hw_block.get_mut(b.0 as usize) {
                        *flag = true;
                    }
                }
                BatchLane {
                    stats: self.fresh_stats(),
                    is_hw_block,
                    cycles: 0,
                    energy: Energy::ZERO,
                    class_switches: 0,
                    sw_ifetches: 0,
                    sw_reads: 0,
                    sw_writes: 0,
                    hw_loads: 0,
                    hw_stores: 0,
                    inst_counts: [0; 8],
                    class_cycles: [0; 8],
                    hw_entries: vec![0; self.n_blocks],
                    prev_class: None,
                    prev_block: None,
                    prev_was_hw: false,
                    dead: None,
                }
            })
            .collect();
        let mut live = lanes.len();

        let mut decoded_insts: u64 = 0;
        let mut addr_index: usize = 0;

        // The shared walk, blocked by stretch: the stretch decode,
        // bounds check and address-cursor arithmetic happen once per
        // stretch, then each live lane runs the per-instruction body of
        // the sequential replay over the whole stretch with its state
        // in locals — same operations, same per-lane order, but the
        // `PcInfo` slice is hot in cache for lanes 2..K and the `f64`
        // accumulators stay in registers across the stretch.
        'walk: for (&start, &len) in decoded.starts.iter().zip(&decoded.lens) {
            let lo = start as usize;
            let hi = lo
                .checked_add(len as usize)
                .filter(|&hi| hi <= self.info.len())
                .ok_or(SimError::BadPc { pc: start })?;
            decoded_insts = decoded_insts.wrapping_add(len);

            'lanes: for ((lane, sink), config) in
                lanes.iter_mut().zip(sinks.iter_mut()).zip(configs)
            {
                if lane.dead.is_some() {
                    continue;
                }
                // Lane state for the stretch, in registers. A lane that
                // dies mid-stretch skips the write-back: its partial
                // statistics are discarded with it, as in the
                // sequential early return.
                let mut ai = addr_index;
                let mut cycles = lane.cycles;
                let mut energy = lane.energy;
                let mut class_switches = lane.class_switches;
                let mut sw_ifetches = lane.sw_ifetches;
                let mut sw_reads = lane.sw_reads;
                let mut sw_writes = lane.sw_writes;
                let mut hw_loads = lane.hw_loads;
                let mut hw_stores = lane.hw_stores;
                let mut prev_class = lane.prev_class;
                let mut prev_block = lane.prev_block;
                let mut prev_was_hw = lane.prev_was_hw;

                // The stretch, segmented into maximal same-block runs:
                // the block flag, block indices and entry accounting
                // are per-run, not per-instruction. Only the *first* pc
                // of a run can trigger block-entry accounting — every
                // later pc sees `prev_block == block` — so hoisting the
                // check is exact.
                let mut pos = lo;
                while pos < hi {
                    let rend = (self.run_end[pos] as usize).min(hi);
                    let first = &self.info[pos];
                    let block_index = first.block_index;
                    let is_hw = lane.is_hw_block[block_index];

                    if prev_block != Some(first.block) && first.is_block_start {
                        lane.stats.block_counts[block_index] += 1;
                        if is_hw && !prev_was_hw {
                            lane.hw_entries[block_index] += 1;
                        }
                    }
                    prev_block = Some(first.block);
                    prev_was_hw = is_hw;

                    let a_lo = self.access_prefix[pos] as usize;
                    let a_hi = self.access_prefix[rend] as usize;

                    if is_hw {
                        // Hardware run: no µP cycles, energy or sink
                        // traffic — only the circuit-state reset and
                        // the shared-memory access counters, walked by
                        // access ordinal instead of by instruction.
                        prev_class = None;
                        for ordinal in a_lo..a_hi {
                            let Some(&addr) = decoded.addrs.get(ai) else {
                                // A missing address record is trace
                                // damage: it poisons the whole batch,
                                // exactly as in the sequential replay.
                                return Err(SimError::BadAccess {
                                    addr: 0,
                                    pc: self.access_pc[ordinal],
                                });
                            };
                            ai += 1;
                            if addr < SLOT_BASE {
                                if self.access_is_load[ordinal] {
                                    hw_loads += 1;
                                } else {
                                    hw_stores += 1;
                                }
                            }
                        }
                        pos = rend;
                        continue;
                    }

                    // Software run. When no instruction in the run can
                    // hit the cycle limit, tracing is off, and the sink
                    // accepts the run's consecutive word fetches as
                    // guaranteed hits, the i-fetches are delivered in
                    // one batch and the loop below carries only the
                    // per-instruction accounting and data accesses —
                    // the per-lane order of every accumulator is
                    // unchanged (i-cache and data-side state are
                    // disjoint, and a fetch hit touches no shared
                    // accumulator).
                    let run_latency = self.lat_prefix[rend] - self.lat_prefix[pos];
                    let run_len = (rend - pos) as u32;
                    let fetched_in_bulk = (config.max_cycles == 0
                        || cycles + run_latency <= config.max_cycles)
                        && config.trace_limit == 0
                        && sink.ifetch_run_hits(first.inst_addr, run_len);

                    if fetched_in_bulk {
                        sw_ifetches += run_len as u64;
                        let block_row = &mut lane.stats.block_class_cycles[block_index];
                        let mut run_cycles = lane.stats.block_cycles[block_index];
                        let mut run_energy = lane.stats.block_energy[block_index];
                        for info in &self.info[pos..rend] {
                            cycles += info.latency;
                            let mut e = info.base_energy;
                            if let Some(p) = prev_class {
                                if p != info.class {
                                    e += self.inter_inst_overhead;
                                    class_switches += 1;
                                }
                            }
                            prev_class = Some(info.class);
                            energy += e;
                            run_cycles += info.latency;
                            run_energy += e;
                            lane.inst_counts[info.class_index] += 1;
                            lane.class_cycles[info.class_index] += info.latency;
                            block_row[info.class_index] += info.latency;
                        }
                        lane.stats.block_cycles[block_index] = run_cycles;
                        lane.stats.block_energy[block_index] = run_energy;
                        for ordinal in a_lo..a_hi {
                            let Some(&addr) = decoded.addrs.get(ai) else {
                                return Err(SimError::BadAccess {
                                    addr: 0,
                                    pc: self.access_pc[ordinal],
                                });
                            };
                            ai += 1;
                            if self.access_is_load[ordinal] {
                                sw_reads += 1;
                                sink.read(addr);
                            } else {
                                sw_writes += 1;
                                sink.write(addr);
                            }
                        }
                        pos = rend;
                        continue;
                    }

                    // Exact per-instruction body: cycle-limit death at
                    // the precise pc, interleaved sink calls, optional
                    // trace capture.
                    for (off, info) in self.info[pos..rend].iter().enumerate() {
                        cycles += info.latency;
                        if config.max_cycles > 0 && cycles > config.max_cycles {
                            lane.dead = Some(SimError::CycleLimit {
                                limit: config.max_cycles,
                            });
                            live -= 1;
                            continue 'lanes;
                        }
                        let mut e = info.base_energy;
                        if let Some(p) = prev_class {
                            if p != info.class {
                                e += self.inter_inst_overhead;
                                class_switches += 1;
                            }
                        }
                        prev_class = Some(info.class);
                        energy += e;
                        lane.stats.block_cycles[block_index] += info.latency;
                        lane.stats.block_energy[block_index] += e;
                        lane.inst_counts[info.class_index] += 1;
                        lane.class_cycles[info.class_index] += info.latency;
                        lane.stats.block_class_cycles[block_index][info.class_index] +=
                            info.latency;
                        sw_ifetches += 1;
                        sink.ifetch(info.inst_addr);
                        if lane.stats.trace.len() < config.trace_limit {
                            lane.stats.trace.push(TraceEntry {
                                pc: (pos + off) as u32,
                                inst: info.inst,
                                cycles,
                            });
                        }
                        match info.access {
                            AccessKind::None => {}
                            AccessKind::Load => {
                                let Some(&addr) = decoded.addrs.get(ai) else {
                                    return Err(SimError::BadAccess {
                                        addr: 0,
                                        pc: (pos + off) as u32,
                                    });
                                };
                                ai += 1;
                                sw_reads += 1;
                                sink.read(addr);
                            }
                            AccessKind::Store => {
                                let Some(&addr) = decoded.addrs.get(ai) else {
                                    return Err(SimError::BadAccess {
                                        addr: 0,
                                        pc: (pos + off) as u32,
                                    });
                                };
                                ai += 1;
                                sw_writes += 1;
                                sink.write(addr);
                            }
                        }
                    }
                    pos = rend;
                }

                lane.cycles = cycles;
                lane.energy = energy;
                lane.class_switches = class_switches;
                lane.sw_ifetches = sw_ifetches;
                lane.sw_reads = sw_reads;
                lane.sw_writes = sw_writes;
                lane.hw_loads = hw_loads;
                lane.hw_stores = hw_stores;
                lane.prev_class = prev_class;
                lane.prev_block = prev_block;
                lane.prev_was_hw = prev_was_hw;
            }

            // All lanes consume the same address records per stretch —
            // the count is position-determined, not candidate-dependent
            // — so the shared cursor advances by the precomputed prefix
            // difference.
            addr_index += (self.access_prefix[hi] - self.access_prefix[lo]) as usize;

            if live == 0 {
                // Every candidate died mid-stream; like the sequential
                // early return, nothing further is decoded and the
                // conservation checks are moot.
                break 'walk;
            }
        }

        // Conservation checks, identical to the sequential replay's;
        // skipped only when every lane already died (the sequential
        // path returns before reaching them in that case too).
        if live > 0
            && (decoded_insts != decoded.events
                || addr_index as u64 != decoded.data_events
                || addr_index != decoded.addrs.len())
        {
            return Err(SimError::TraceCorrupt {
                detail: format!(
                    "decoded {decoded_insts} of {} recorded instructions and {addr_index} of {} recorded data accesses",
                    decoded.events, decoded.data_events
                ),
            });
        }

        Ok(lanes
            .into_iter()
            .map(|lane| match lane.dead {
                Some(err) => Err(err),
                None => {
                    let mut stats = lane.stats;
                    stats.cycles = Cycles::new(lane.cycles);
                    stats.energy = lane.energy;
                    stats.class_switches = lane.class_switches;
                    stats.sw_ifetches = lane.sw_ifetches;
                    stats.sw_reads = lane.sw_reads;
                    stats.sw_writes = lane.sw_writes;
                    stats.hw_loads = lane.hw_loads;
                    stats.hw_stores = lane.hw_stores;
                    for (index, &class) in InstClass::ALL.iter().enumerate() {
                        *stats.inst_counts.get_mut(&class).expect("class") =
                            lane.inst_counts[index];
                        *stats.class_cycles.get_mut(&class).expect("class") =
                            lane.class_cycles[index];
                    }
                    for (block, &entries) in lane.hw_entries.iter().enumerate() {
                        if entries > 0 {
                            stats
                                .hw_block_entries
                                .insert(BlockId(block as u32), entries);
                        }
                    }
                    stats.return_value = decoded.return_value;
                    Ok(stats)
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::compile;
    use crate::simulator::{NullSink, Simulator};
    use corepart_ir::lower::lower;
    use corepart_ir::parser::parse;
    use std::collections::HashSet;

    fn setup(src: &str) -> (Application, MachProgram) {
        let app = lower(&parse(src).unwrap()).unwrap();
        let prog = compile(&app);
        (app, prog)
    }

    const TWO_LOOPS: &str = r#"app t; var a[32]; var acc = 0;
        func main() {
            for (var i = 0; i < 32; i = i + 1) { a[i] = a[i] * 3 + 1; }
            for (var j = 0; j < 32; j = j + 1) { acc = acc + a[j]; }
            return acc;
        }"#;

    fn capture(
        app: &Application,
        prog: &MachProgram,
        input: Option<(&str, &[i64])>,
    ) -> (RunStats, ReferenceTrace) {
        let mut sim = Simulator::new(prog, app);
        if let Some((name, data)) = input {
            sim.set_array(name, data).unwrap();
        }
        let mut builder = TraceBuilder::new(usize::MAX);
        let stats = sim
            .run_recorded(&SimConfig::initial(10_000_000), &mut NullSink, &mut builder)
            .unwrap();
        let trace = builder.finish(stats.return_value).expect("under cap");
        (stats, trace)
    }

    #[test]
    fn varint_zigzag_roundtrip() {
        let mut s = SegStream::default();
        let values = [
            0i64,
            1,
            -1,
            2,
            -2,
            127,
            -128,
            300_000,
            -300_000,
            i64::from(u32::MAX),
        ];
        for &v in &values {
            s.put(zigzag(v));
        }
        let mut r = s.reader();
        for &v in &values {
            assert_eq!(unzigzag(r.next().unwrap()), v);
        }
        assert!(r.next().is_none());
    }

    #[test]
    fn segments_stay_bounded() {
        let mut s = SegStream::default();
        for i in 0..2_000_000u64 {
            s.put(i % 7);
        }
        for segment in &s.segments {
            assert!(segment.len() <= SEGMENT_BYTES + 10);
            assert!(segment.capacity() <= SEGMENT_BYTES + 10);
        }
        assert!(s.segments.len() > 1);
    }

    #[test]
    fn replay_matches_direct_initial_run() {
        let input: Vec<i64> = (0..32).map(|i| i % 5).collect();
        let (app, prog) = setup(TWO_LOOPS);
        let (direct, trace) = capture(&app, &prog, Some(("a", &input)));

        let replayer = TraceReplayer::new(&prog, &app, &EnergyTable::default());
        let replayed = replayer
            .replay(&trace, &SimConfig::initial(10_000_000), &mut NullSink)
            .unwrap();
        assert_eq!(direct, replayed);
    }

    #[test]
    fn replay_matches_direct_partitioned_run() {
        let input: Vec<i64> = (0..32).map(|i| (i * 13) % 9 - 4).collect();
        let (app, prog) = setup(TWO_LOOPS);
        let (_, trace) = capture(&app, &prog, Some(("a", &input)));
        let first_loop = app.structure().iter().find(|n| n.is_loop()).expect("loop");
        let hw: HashSet<BlockId> = first_loop.blocks().iter().copied().collect();

        let mut sim = Simulator::new(&prog, &app);
        sim.set_array("a", &input).unwrap();
        let direct = sim
            .run(
                &SimConfig::partitioned(10_000_000, hw.clone()),
                &mut NullSink,
            )
            .unwrap();

        let replayer = TraceReplayer::new(&prog, &app, &EnergyTable::default());
        let replayed = replayer
            .replay(
                &trace,
                &SimConfig::partitioned(10_000_000, hw),
                &mut NullSink,
            )
            .unwrap();
        assert_eq!(direct, replayed);
        assert!(replayed.hw_loads > 0);
    }

    #[test]
    fn replay_reproduces_the_sink_stream() {
        #[derive(Default, PartialEq, Debug)]
        struct Log(Vec<(u8, u32)>);
        impl MemSink for Log {
            fn ifetch(&mut self, a: u32) {
                self.0.push((0, a));
            }
            fn read(&mut self, a: u32) {
                self.0.push((1, a));
            }
            fn write(&mut self, a: u32) {
                self.0.push((2, a));
            }
        }
        let (app, prog) = setup(TWO_LOOPS);
        let mut sim = Simulator::new(&prog, &app);
        let mut builder = TraceBuilder::new(usize::MAX);
        let mut direct_log = Log::default();
        let stats = sim
            .run_recorded(
                &SimConfig::initial(10_000_000),
                &mut direct_log,
                &mut builder,
            )
            .unwrap();
        let trace = builder.finish(stats.return_value).unwrap();

        let replayer = TraceReplayer::new(&prog, &app, &EnergyTable::default());
        let mut replay_log = Log::default();
        replayer
            .replay(&trace, &SimConfig::initial(10_000_000), &mut replay_log)
            .unwrap();
        assert_eq!(direct_log, replay_log);
    }

    #[test]
    fn replay_supports_debug_tracing() {
        let (app, prog) = setup(TWO_LOOPS);
        let (_, trace) = capture(&app, &prog, None);
        let replayer = TraceReplayer::new(&prog, &app, &EnergyTable::default());
        let stats = replayer
            .replay(
                &trace,
                &SimConfig::initial(10_000_000).with_trace(16),
                &mut NullSink,
            )
            .unwrap();
        assert_eq!(stats.trace.len(), 16);
    }

    #[test]
    fn replay_enforces_the_cycle_limit() {
        let (app, prog) = setup(TWO_LOOPS);
        let (direct, trace) = capture(&app, &prog, None);
        assert!(direct.cycles.count() > 100);
        let replayer = TraceReplayer::new(&prog, &app, &EnergyTable::default());
        let err = replayer
            .replay(&trace, &SimConfig::initial(100), &mut NullSink)
            .unwrap_err();
        assert!(matches!(err, SimError::CycleLimit { limit: 100 }));
    }

    #[test]
    fn batched_replay_matches_sequential_lanes() {
        let input: Vec<i64> = (0..32).map(|i| (i * 7) % 11 - 3).collect();
        let (app, prog) = setup(TWO_LOOPS);
        let (_, trace) = capture(&app, &prog, Some(("a", &input)));
        let replayer = TraceReplayer::new(&prog, &app, &EnergyTable::default());
        let decoded = DecodedTrace::decode(&trace);
        assert_eq!(decoded.events(), trace.events());
        assert!(decoded.stretches() > 1);

        // Lanes: all-software, each structural loop alone, everything.
        let loops: Vec<HashSet<BlockId>> = app
            .structure()
            .iter()
            .filter(|n| n.is_loop())
            .map(|n| n.blocks().iter().copied().collect())
            .collect();
        assert!(loops.len() >= 2, "TWO_LOOPS has two loops");
        let mut sets = vec![HashSet::new()];
        sets.extend(loops.iter().cloned());
        sets.push(loops.iter().flatten().copied().collect());

        let configs: Vec<SimConfig> = sets
            .iter()
            .map(|hw| SimConfig::partitioned(10_000_000, hw.clone()))
            .collect();
        let mut sinks: Vec<NullSink> = configs.iter().map(|_| NullSink).collect();
        let batch = replayer
            .replay_batch(&decoded, &configs, &mut sinks)
            .unwrap();
        assert_eq!(batch.len(), configs.len());
        for (config, lane) in configs.iter().zip(&batch) {
            let sequential = replayer.replay(&trace, config, &mut NullSink).unwrap();
            assert_eq!(lane.as_ref().unwrap(), &sequential);
        }
    }

    #[test]
    fn batched_replay_reproduces_per_lane_sink_streams() {
        #[derive(Default, PartialEq, Debug, Clone)]
        struct Log(Vec<(u8, u32)>);
        impl MemSink for Log {
            fn ifetch(&mut self, a: u32) {
                self.0.push((0, a));
            }
            fn read(&mut self, a: u32) {
                self.0.push((1, a));
            }
            fn write(&mut self, a: u32) {
                self.0.push((2, a));
            }
        }
        let (app, prog) = setup(TWO_LOOPS);
        let (_, trace) = capture(&app, &prog, None);
        let replayer = TraceReplayer::new(&prog, &app, &EnergyTable::default());
        let decoded = DecodedTrace::decode(&trace);
        let first_loop = app.structure().iter().find(|n| n.is_loop()).expect("loop");
        let hw: HashSet<BlockId> = first_loop.blocks().iter().copied().collect();
        let configs = [
            SimConfig::initial(10_000_000),
            SimConfig::partitioned(10_000_000, hw),
        ];
        let mut batch_logs = vec![Log::default(); configs.len()];
        replayer
            .replay_batch(&decoded, &configs, &mut batch_logs)
            .unwrap();
        for (config, log) in configs.iter().zip(&batch_logs) {
            let mut sequential = Log::default();
            replayer.replay(&trace, config, &mut sequential).unwrap();
            assert_eq!(log, &sequential);
        }
    }

    #[test]
    fn batched_replay_isolates_a_cycle_limited_lane() {
        let (app, prog) = setup(TWO_LOOPS);
        let (direct, trace) = capture(&app, &prog, None);
        assert!(direct.cycles.count() > 100);
        let replayer = TraceReplayer::new(&prog, &app, &EnergyTable::default());
        let decoded = DecodedTrace::decode(&trace);
        let configs = [SimConfig::initial(100), SimConfig::initial(10_000_000)];
        let mut sinks = [NullSink, NullSink];
        let batch = replayer
            .replay_batch(&decoded, &configs, &mut sinks)
            .unwrap();
        assert!(matches!(batch[0], Err(SimError::CycleLimit { limit: 100 })));
        let surviving = replayer.replay(&trace, &configs[1], &mut NullSink).unwrap();
        assert_eq!(batch[1].as_ref().unwrap(), &surviving);

        // All lanes limited: like the sequential early return, the
        // batch reports the per-lane errors, not a trace-level one.
        let all_limited = [SimConfig::initial(100), SimConfig::initial(101)];
        let mut sinks = [NullSink, NullSink];
        let batch = replayer
            .replay_batch(&decoded, &all_limited, &mut sinks)
            .unwrap();
        assert!(batch
            .iter()
            .all(|lane| matches!(lane, Err(SimError::CycleLimit { .. }))));
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let (app, prog) = setup(TWO_LOOPS);
        let (_, trace) = capture(&app, &prog, None);
        let replayer = TraceReplayer::new(&prog, &app, &EnergyTable::default());
        let decoded = DecodedTrace::decode(&trace);
        let mut sinks: Vec<NullSink> = Vec::new();
        assert!(replayer
            .replay_batch(&decoded, &[], &mut sinks)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn cap_overflow_discards_the_capture() {
        let (app, prog) = setup(TWO_LOOPS);
        let mut sim = Simulator::new(&prog, &app);
        let mut builder = TraceBuilder::new(64);
        let stats = sim
            .run_recorded(&SimConfig::initial(10_000_000), &mut NullSink, &mut builder)
            .unwrap();
        assert!(builder.overflowed());
        assert!(builder.finish(stats.return_value).is_none());
        // The run itself is unaffected by the overflow.
        let fresh = Simulator::new(&prog, &app)
            .run(&SimConfig::initial(10_000_000), &mut NullSink)
            .unwrap();
        assert_eq!(stats, fresh);
    }

    #[test]
    fn zero_cap_disables_capture() {
        let builder = TraceBuilder::new(0);
        assert!(builder.overflowed());
        assert!(builder.finish(0).is_none());
    }

    #[test]
    fn fingerprint_distinguishes_workloads() {
        let (app, prog) = setup(TWO_LOOPS);
        let a: Vec<i64> = (0..32).collect();
        let b: Vec<i64> = (0..32).map(|i| i * 2).collect();
        let (_, ta) = capture(&app, &prog, Some(("a", &a)));
        let (_, tb) = capture(&app, &prog, Some(("a", &b)));
        let (_, ta2) = capture(&app, &prog, Some(("a", &a)));
        // Same execution -> same fingerprint; different data -> the
        // address/pc streams diverge and so does the hash.
        assert_eq!(ta.fingerprint(), ta2.fingerprint());
        assert_ne!(ta.fingerprint(), tb.fingerprint());
        assert!(ta.bytes() > 0);
        assert!(ta.events() > 0);
        assert!(ta.data_events() > 0);
    }

    #[test]
    fn trace_is_compact() {
        let (app, prog) = setup(TWO_LOOPS);
        let (direct, trace) = capture(&app, &prog, None);
        // Mostly ±1 pc deltas and word-stride addresses: ~1 byte per
        // event plus ~1-2 bytes per data access.
        let events = direct.block_counts.iter().sum::<u64>() + direct.sw_ifetches;
        assert!(
            (trace.bytes() as u64) < 4 * events,
            "{} bytes for ~{} events",
            trace.bytes(),
            events
        );
    }
}
