//! Generated-workload corpus: the [`corepart::corpus`] runner fed by
//! the seeded BDL generator.
//!
//! Where [`crate::runner`] asks "does every engine configuration agree
//! on this generated app?", the corpus asks "what does the flow *do*
//! across thousands of them?" — savings distributions, frontier shape,
//! search-effort statistics — while doubling as a deterministic
//! regression corpus: the same run seed always produces the same apps
//! (via [`crate::runner::case_seed`] and [`crate::gen::generate`]) and
//! therefore a byte-identical columnar results file.

use std::path::Path;

use corepart::corpus::{
    run_corpus_with, source_features, CorpusEntry, CorpusOptions, CorpusOutcome, RemoteOptions,
};
use corepart::error::CorepartError;
use corepart::prepare::Workload;
use corepart_ir::lower::lower;
use corepart_ir::parser::parse;

use crate::gen::generate;
use crate::runner::case_seed;

/// Builds the corpus entry at `index` of the generated corpus rooted
/// at run seed `seed`: derive the case seed, generate the app, parse
/// its rendered source for feature extraction, lower it, and attach
/// the generator's own workload.
///
/// # Errors
///
/// Propagates parse/lower failures — by construction the generator
/// only emits valid BDL, so an error here is itself a finding.
pub fn gen_entry(seed: u64, index: u64) -> Result<CorpusEntry, CorepartError> {
    let case = case_seed(seed, index);
    let gen = generate(case);
    let source = gen.source();
    let program = parse(&source)?;
    let features = source_features(&program);
    let app = lower(&program)?;
    Ok(CorpusEntry {
        index,
        seed: case,
        name: gen.name.clone(),
        source,
        app,
        workload: Workload::from_arrays(gen.workload_arrays()),
        features,
    })
}

/// Runs (or resumes) a generated corpus of `count` apps rooted at
/// `seed` — see [`corepart::corpus::run_corpus`] for the journal/resume contract. The
/// provider tag is derived from `seed`, so a journal written for one
/// seed refuses to resume under another.
///
/// # Errors
///
/// Everything [`corepart::corpus::run_corpus`] can raise, plus generator parse/lower
/// failures from [`gen_entry`].
pub fn run_gen_corpus(
    seed: u64,
    count: u64,
    options: CorpusOptions,
    journal_path: &Path,
    out_path: &Path,
    resume: bool,
) -> Result<CorpusOutcome, CorepartError> {
    run_gen_corpus_with(seed, count, options, journal_path, out_path, resume, None)
}

/// [`run_gen_corpus`] with an optional remote executor: with
/// `remote = Some(..)` the chunks are shipped to a `corepart serve`
/// daemon as pipelined requests (`conform corpus --connect`), with the
/// journal and TSV byte-identical to a local run.
///
/// # Errors
///
/// Everything [`run_gen_corpus`] can raise, plus connection and
/// protocol failures against the daemon.
#[allow(clippy::too_many_arguments)]
pub fn run_gen_corpus_with(
    seed: u64,
    count: u64,
    mut options: CorpusOptions,
    journal_path: &Path,
    out_path: &Path,
    resume: bool,
    remote: Option<&RemoteOptions>,
) -> Result<CorpusOutcome, CorepartError> {
    options.provider_tag = format!("gen seed={seed}");
    run_corpus_with(
        count,
        |index| gen_entry(seed, index),
        &options,
        journal_path,
        out_path,
        resume,
        remote,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_entry_is_deterministic() {
        let a = gen_entry(7, 3).expect("generates");
        let b = gen_entry(7, 3).expect("generates");
        assert_eq!(a.name, b.name);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.features, b.features);
        assert_eq!(a.seed, case_seed(7, 3));
    }

    #[test]
    fn gen_entry_features_reflect_the_generated_source() {
        let entry = gen_entry(1, 0).expect("generates");
        // Every generated app has at least one array and one statement.
        assert!(entry.features.array_bytes > 0);
        assert!(entry.features.stmts > 0);
    }
}
