//! Reproduction shape test: the qualitative claims of the paper's
//! Table 1 / Figure 6 must hold when the full flow runs on all six
//! reconstructed applications.
//!
//! This is the repository's headline regression test. It does not pin
//! absolute joules (our technology calibration is reconstructed); it
//! pins the *shape*: savings in the 35–94 % band, performance
//! maintained or improved everywhere except `trick`, and small
//! additional hardware. The exact quantitative output is pinned
//! separately, byte for byte, by the golden snapshots in
//! `tests/goldens.rs` — a calibration change fails there first, and
//! fails here only when it leaves the paper's qualitative bands.

use std::sync::OnceLock;

use corepart::flow::DesignFlow;
use corepart::prepare::Workload;
use corepart::system::SystemConfig;
use corepart_workloads::all;

struct Row {
    name: &'static str,
    saving: f64,
    time_change: f64,
    geq: u64,
    icache_drop: f64,
}

/// The six flows run once per test binary; every test reads the same
/// rows (the flows are deterministic, so sharing loses nothing).
fn run_rows() -> &'static [Row] {
    static ROWS: OnceLock<Vec<Row>> = OnceLock::new();
    ROWS.get_or_init(|| {
        all()
            .iter()
            .map(|w| {
                let app = w.app().expect("lowers");
                let result = DesignFlow::with_config(SystemConfig::new())
                    .run_app(app, Workload::from_arrays(w.arrays(1)))
                    .expect("flow succeeds");
                let outcome = &result.outcome;
                let (_, detail) = outcome
                    .best
                    .as_ref()
                    .unwrap_or_else(|| panic!("{}: no partition found", w.name));
                let icache_drop = 1.0
                    - detail.metrics.icache.joules() / outcome.initial.icache.joules().max(1e-30);
                Row {
                    name: w.name,
                    saving: outcome.energy_saving_percent().expect("saving"),
                    time_change: outcome.time_change_percent().expect("change"),
                    geq: detail.metrics.geq.cells(),
                    icache_drop,
                }
            })
            .collect()
    })
}

#[test]
fn table1_qualitative_shape_reproduced() {
    let rows = run_rows();
    assert_eq!(rows.len(), 6);

    for r in rows {
        // "high reductions of power consumption between 35% and 94%"
        // (abstract); we allow a ±4pp calibration margin on the band.
        assert!(
            (31.0..=98.0).contains(&r.saving),
            "{}: saving {:.1}% outside the paper band",
            r.name,
            r.saving
        );
        // "a relatively small additional hardware overhead of less than
        // 16k cells" — allow reconstruction slack up to 20k.
        assert!(
            r.geq < 20_000,
            "{}: {} cells exceeds the paper's hardware scale",
            r.name,
            r.geq
        );
    }

    // "maintaining or even slightly increasing the performance …
    // (except for one case)": five rows faster, trick slower.
    for r in rows {
        if r.name == "trick" {
            assert!(
                r.time_change > 0.0,
                "trick must trade time for energy, got {:+.1}%",
                r.time_change
            );
        } else {
            assert!(
                r.time_change < 0.0,
                "{}: expected a speedup, got {:+.1}%",
                r.name,
                r.time_change
            );
        }
    }

    // The i-cache collapse effect (the paper's `trick` row: 5.58 mJ →
    // 12.59 µJ): when the hot kernel leaves, i-cache energy drops by
    // more than 90% for the kernel-dominated applications.
    let trick = rows.iter().find(|r| r.name == "trick").expect("trick row");
    assert!(
        trick.icache_drop > 0.9,
        "trick i-cache must collapse, dropped only {:.0}%",
        trick.icache_drop * 100.0
    );
    let digs = rows.iter().find(|r| r.name == "digs").expect("digs row");
    assert!(digs.icache_drop > 0.9, "digs i-cache must collapse");
}

#[test]
fn ckey_is_the_least_memory_intensive() {
    // §4: ckey "was in fact the less memory-intensive one" — its
    // cache+memory share of total energy must be the smallest... in our
    // reconstruction the procedural pixels make the d-cache/memory
    // share small relative to the core-energy share.
    let w = corepart_workloads::by_name("ckey").expect("ckey");
    let result = DesignFlow::new()
        .run_app(w.app().expect("lowers"), Workload::from_arrays(w.arrays(1)))
        .expect("flow succeeds");
    let i = &result.outcome.initial;
    let mem_share = (i.dcache.joules() + i.mem.joules()) / i.total_energy().joules();
    // The d-cache traffic is only spilled scalars; memory share tiny.
    assert!(
        i.mem.joules() / i.total_energy().joules() < 0.01,
        "ckey main-memory share should be negligible"
    );
    let _ = mem_share;
}

#[test]
fn savings_ranking_correlates_with_kernel_dominance() {
    // digs/ckey (kernel-dominated) must save more than engine (the
    // control-heavy app with the paper's smallest saving).
    let rows = run_rows();
    let get = |n: &str| {
        rows.iter()
            .find(|r| r.name == n)
            .unwrap_or_else(|| panic!("row {n}"))
            .saving
    };
    assert!(get("digs") > get("3d"));
    assert!(get("ckey") > get("3d"));
}
