//! Cluster decomposition (Fig. 1 step 2).
//!
//! "A cluster in our definition is a set of operations which represents
//! code segments like nested loops, if-then-else constructs, functions
//! etc. … Decomposition is done by structural information of the
//! initial behavioral description solely" (§3.2).
//!
//! The decomposition walks the structure tree recorded during lowering:
//!
//! 1. If the application body is a single loop wrapping everything (the
//!    usual outer *frame loop* of a DSP application), descend into its
//!    body — the interesting clusters live inside, and the frame loop
//!    itself stays on the µP core as the scheduler of the cluster chain.
//! 2. Every remaining top-level construct becomes one cluster: a loop
//!    nest, an if/else, an inlined function, or a maximal straight-line
//!    run.
//!
//! The result is the *linear cluster chain* of Fig. 2 b: clusters
//! `c_1 … c_n` executed in order (possibly many times, per the frame
//! loop), each annotated with its `gen`/`use` summary for the
//! bus-transfer estimation of §3.3.

use std::fmt;

use crate::cdfg::{Application, StructNode};
use crate::dataflow::{region_gen_use, GenUse};
use crate::op::BlockId;

/// Identifier of a cluster within a [`ClusterChain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub u32);

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// What source construct a cluster came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterKind {
    /// A loop nest.
    LoopNest,
    /// An if/else region.
    Conditional,
    /// An inlined function body.
    Function,
    /// A maximal straight-line run.
    Straight,
}

impl fmt::Display for ClusterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ClusterKind::LoopNest => "loop-nest",
            ClusterKind::Conditional => "conditional",
            ClusterKind::Function => "function",
            ClusterKind::Straight => "straight",
        };
        f.write_str(s)
    }
}

/// One cluster `c_i` of the chain.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// Position in the chain.
    pub id: ClusterId,
    /// Human-readable label from the source construct.
    pub label: String,
    /// The construct kind.
    pub kind: ClusterKind,
    /// Blocks owned by the cluster (disjoint across clusters).
    pub blocks: Vec<BlockId>,
    /// The block control enters through.
    pub entry: BlockId,
    /// `gen[c_i]` / `use[c_i]` summary.
    pub gen_use: GenUse,
    /// Static instruction count (a quick size measure).
    pub inst_count: usize,
}

impl Cluster {
    /// True when the cluster contains at least one loop (candidate hot
    /// spot).
    pub fn is_loop(&self) -> bool {
        self.kind == ClusterKind::LoopNest
    }
}

impl fmt::Display for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} ({}, {} blocks, {} insts)",
            self.id,
            self.label,
            self.kind,
            self.blocks.len(),
            self.inst_count
        )
    }
}

/// The linear cluster chain of Fig. 2 b.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterChain {
    clusters: Vec<Cluster>,
    /// Blocks not owned by any cluster (frame-loop headers, glue) —
    /// always executed by the µP core.
    residual_blocks: Vec<BlockId>,
    /// How many times the chain is traversed per application run (the
    /// frame-loop descent factor is only known after profiling; this
    /// stores the number of descended loop levels for reporting).
    descended_levels: u32,
}

impl ClusterChain {
    /// The clusters in chain order.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Looks up a cluster.
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id.0 as usize]
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// True when decomposition found no clusters (empty application).
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Iterates over the clusters.
    pub fn iter(&self) -> impl Iterator<Item = &Cluster> {
        self.clusters.iter()
    }

    /// Blocks owned by no cluster (executed by the µP core in every
    /// partition).
    pub fn residual_blocks(&self) -> &[BlockId] {
        &self.residual_blocks
    }

    /// How many frame-loop levels the decomposition descended through.
    pub fn descended_levels(&self) -> u32 {
        self.descended_levels
    }

    /// The union `gen`/`use` summary of all clusters strictly before
    /// `id` — `C_pred^{c_i}` in Fig. 2 b / Fig. 3 step 1.
    pub fn preds_gen_use(&self, id: ClusterId) -> GenUse {
        let mut acc = GenUse::default();
        for c in &self.clusters[..id.0 as usize] {
            acc = acc.union(&c.gen_use);
        }
        acc
    }

    /// The union summary of all clusters strictly after `id` —
    /// `C_succ^{c_i}` in Fig. 3 step 3.
    pub fn succs_gen_use(&self, id: ClusterId) -> GenUse {
        let mut acc = GenUse::default();
        for c in &self.clusters[id.0 as usize + 1..] {
            acc = acc.union(&c.gen_use);
        }
        acc
    }

    /// The immediately preceding cluster, if any (`c_{i-1}`).
    pub fn prev(&self, id: ClusterId) -> Option<&Cluster> {
        id.0.checked_sub(1).map(|i| &self.clusters[i as usize])
    }

    /// The immediately following cluster, if any (`c_{i+1}`).
    pub fn next(&self, id: ClusterId) -> Option<&Cluster> {
        self.clusters.get(id.0 as usize + 1)
    }
}

/// How many times control *enters* a cluster from outside — the
/// per-invocation multiplier of the paper's bus-transfer scheme
/// (§3.3 a–d: one deposit/read-back round per call of the ASIC core).
///
/// For a loop cluster the entry block is the loop header, which also
/// executes once per iteration; the back-edge executions from blocks
/// inside the cluster are subtracted, leaving only the external
/// entries.
pub fn cluster_invocations(
    app: &Application,
    profile: &crate::interp::ExecProfile,
    cluster: &Cluster,
) -> u64 {
    let entry = cluster.entry;
    let backedges: u64 = cluster
        .blocks
        .iter()
        .filter(|&&b| app.block(b).term.successors().contains(&entry))
        .map(|&b| profile.count(b))
        .sum();
    profile.count(entry).saturating_sub(backedges)
}

/// Decomposes an application into its cluster chain.
///
/// See the module docs for the rules. The returned chain may be empty
/// for an application with an empty `main`.
pub fn decompose(app: &Application) -> ClusterChain {
    let mut nodes: &[StructNode] = app.structure();
    let mut descended = 0u32;
    let mut residual: Vec<BlockId> = Vec::new();

    // Frame-loop descent: while the whole body is one loop, look inside.
    loop {
        let loops: Vec<&StructNode> = nodes.iter().filter(|n| n.is_loop()).collect();
        let non_trivial: Vec<&StructNode> = nodes
            .iter()
            .filter(|n| !matches!(n, StructNode::Straight { .. }))
            .collect();
        if loops.len() == 1 && non_trivial.len() == 1 {
            if let StructNode::Loop {
                header_blocks,
                body,
                all_blocks,
                ..
            } = loops[0]
            {
                fn contains_loop(n: &StructNode) -> bool {
                    n.is_loop() || n.children().iter().any(|c| contains_loop(c))
                }
                // Only a *frame* loop — one that wraps further loops —
                // is dissolved; a leaf loop (even a branchy one) is
                // itself the hot cluster.
                if body.iter().any(contains_loop) {
                    // Straight nodes beside the frame loop stay residual.
                    for n in nodes {
                        if matches!(n, StructNode::Straight { .. }) {
                            residual.extend(n.blocks().iter().copied());
                        }
                    }
                    residual.extend(header_blocks.iter().copied());
                    // The latch/step blocks of the frame loop that are
                    // not owned by body children are residual as well;
                    // collect below by subtraction.
                    let mut owned: Vec<BlockId> = Vec::new();
                    for c in body.iter() {
                        owned.extend(c.blocks().iter().copied());
                    }
                    for b in all_blocks {
                        if !owned.contains(b) && !header_blocks.contains(b) {
                            residual.push(*b);
                        }
                    }
                    // Only blocks with instructions count as meaningful
                    // residual; harmless either way.
                    nodes = body;
                    descended += 1;
                    continue;
                }
            }
        }
        break;
    }

    let mut clusters = Vec::new();
    for node in nodes {
        let (kind, blocks) = match node {
            StructNode::Straight { blocks } => (ClusterKind::Straight, blocks.clone()),
            StructNode::Loop { all_blocks, .. } => (ClusterKind::LoopNest, all_blocks.clone()),
            StructNode::Branch { all_blocks, .. } => (ClusterKind::Conditional, all_blocks.clone()),
            StructNode::Inlined { all_blocks, .. } => (ClusterKind::Function, all_blocks.clone()),
        };
        if blocks.is_empty() {
            continue;
        }
        let inst_count: usize = blocks.iter().map(|&b| app.block(b).insts.len()).sum();
        if inst_count == 0 {
            residual.extend(blocks);
            continue;
        }
        let gen_use = region_gen_use(app, &blocks);
        let id = ClusterId(clusters.len() as u32);
        clusters.push(Cluster {
            id,
            label: node.label(),
            kind,
            entry: blocks[0],
            blocks,
            gen_use,
            inst_count,
        });
    }

    ClusterChain {
        clusters,
        residual_blocks: residual,
        descended_levels: descended,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse;

    fn app(src: &str) -> Application {
        lower(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn flat_body_yields_clusters_in_order() {
        let a = app(r#"app t; var g = 0; var buf[16];
            func main() {
                g = 1;
                for (var i = 0; i < 16; i = i + 1) { buf[i] = i; }
                if (g > 0) { g = 2; }
                g = 3;
            }"#);
        let chain = decompose(&a);
        let kinds: Vec<ClusterKind> = chain.iter().map(|c| c.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ClusterKind::Straight,
                ClusterKind::LoopNest,
                ClusterKind::Conditional,
                ClusterKind::Straight
            ]
        );
        assert_eq!(chain.descended_levels(), 0);
    }

    #[test]
    fn frame_loop_descent() {
        let a = app(r#"app t; var acc = 0; var buf[8];
            func main() {
                for (var frame = 0; frame < 100; frame = frame + 1) {
                    for (var i = 0; i < 8; i = i + 1) { buf[i] = buf[i] + 1; }
                    acc = acc + buf[0];
                }
            }"#);
        let chain = decompose(&a);
        assert_eq!(chain.descended_levels(), 1);
        // Inside: the inner loop + the straight acc update.
        assert!(chain.len() >= 2, "got {} clusters", chain.len());
        assert!(chain.iter().any(|c| c.is_loop()));
        // Frame-loop header blocks are residual.
        assert!(!chain.residual_blocks().is_empty());
    }

    #[test]
    fn single_leaf_loop_not_descended() {
        // A single loop whose body is pure straight-line code is itself
        // the hot cluster; don't dissolve it.
        let a = app(r#"app t; var buf[32];
            func main() {
                for (var i = 0; i < 32; i = i + 1) { buf[i] = i * i; }
            }"#);
        let chain = decompose(&a);
        assert_eq!(chain.descended_levels(), 0);
        // The `for` init forms a small straight cluster ahead of the
        // loop-nest cluster.
        assert_eq!(chain.len(), 2);
        assert!(chain.clusters()[1].is_loop());
    }

    #[test]
    fn function_statement_becomes_cluster() {
        let a = app(r#"app t; var g = 0;
            func work() { for (var i = 0; i < 4; i = i + 1) { g = g + i; } }
            func main() { g = 1; work(); g = 2; }"#);
        let chain = decompose(&a);
        assert!(chain
            .iter()
            .any(|c| c.kind == ClusterKind::Function && c.label == "work"));
    }

    #[test]
    fn clusters_own_disjoint_blocks() {
        let a = app(r#"app t; var g = 0; var buf[8];
            func main() {
                for (var f = 0; f < 10; f = f + 1) {
                    for (var i = 0; i < 8; i = i + 1) { buf[i] = i; }
                    if (g > 0) { g = 0; } else { g = 1; }
                    g = g + buf[0];
                }
            }"#);
        let chain = decompose(&a);
        let mut seen = std::collections::HashSet::new();
        for c in chain.iter() {
            for &b in &c.blocks {
                assert!(seen.insert(b), "{b} owned twice");
            }
        }
        for &b in chain.residual_blocks() {
            assert!(seen.insert(b), "residual {b} also owned by a cluster");
        }
    }

    #[test]
    fn preds_succs_summaries() {
        let a = app(r#"app t; var x = 0; var y = 0;
            func main() {
                x = 5;
                for (var i = 0; i < 4; i = i + 1) { y = y + x; }
                x = y;
            }"#);
        let chain = decompose(&a);
        assert!(chain.len() >= 3);
        let mid = ClusterId(1);
        let preds = chain.preds_gen_use(mid);
        let succs = chain.succs_gen_use(mid);
        // x generated before the loop; y used after it.
        use crate::dataflow::DataItem;
        let x = VarIdByName::get(&a, "x");
        let y = VarIdByName::get(&a, "y");
        assert!(preds.gen.contains(&DataItem::Scalar(x)));
        assert!(succs.use_.contains(&DataItem::Scalar(y)));
        // Transfers into the loop cluster: it uses x (and i from init).
        let inbound = preds.transfers_to(&chain.cluster(mid).gen_use);
        assert!(inbound >= 1);
    }

    struct VarIdByName;
    impl VarIdByName {
        fn get(a: &Application, name: &str) -> crate::op::VarId {
            crate::op::VarId(
                a.vars()
                    .iter()
                    .position(|v| v.name.as_deref() == Some(name))
                    .unwrap() as u32,
            )
        }
    }

    #[test]
    fn prev_next_navigation() {
        let a = app(r#"app t; var g = 0;
            func main() { g = 1; while (g > 0) { g = g - 1; } g = 2; }"#);
        let chain = decompose(&a);
        assert!(chain.prev(ClusterId(0)).is_none());
        assert_eq!(chain.next(ClusterId(0)).unwrap().id, ClusterId(1));
        let last = ClusterId(chain.len() as u32 - 1);
        assert!(chain.next(last).is_none());
    }

    #[test]
    fn empty_main_is_empty_chain() {
        let a = app("app t; func main() { }");
        let chain = decompose(&a);
        assert!(chain.is_empty());
        assert_eq!(chain.len(), 0);
    }
}
