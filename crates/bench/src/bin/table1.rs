//! Regenerates the paper's **Table 1**: energy dissipation and
//! execution time for the initial (I) and partitioned (P) design of all
//! six applications.
//!
//! ```text
//! cargo run --release -p corepart-bench --bin table1 [-- --json]
//! ```
//!
//! With `--json`, emits the table as a JSON array (for plotting and CI
//! dashboards) instead of the human-readable rendering.

use corepart::json::table1_to_json;
use corepart::report::{Table1, Table1Entry};
use corepart::system::SystemConfig;
use corepart_bench::run_all;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let config = SystemConfig::new();
    let results = run_all(&config);

    let mut table = Table1::new();
    for r in &results {
        table.push(Table1Entry::from_outcome(r.app_name.clone(), &r.outcome));
    }
    if json {
        println!("{}", table1_to_json(&table));
        return;
    }
    println!("Table 1: energy dissipation and execution time, initial (I) vs partitioned (P)\n");
    println!("{table}");

    println!("Partition details:");
    for r in &results {
        match &r.outcome.best {
            Some((partition, detail)) => {
                let clusters: Vec<String> = partition
                    .clusters
                    .iter()
                    .map(|&c| r.prepared.chain.cluster(c).label.clone())
                    .collect();
                println!(
                    "  {:<8} -> {} on {} | U_R={:.3} vs U_uP={:.3} | HW {} | comm {} words",
                    r.app_name,
                    clusters.join(" + "),
                    partition.set.name(),
                    detail.u_r,
                    detail.u_up,
                    detail.metrics.geq,
                    detail.comm_words,
                );
            }
            None => println!("  {:<8} -> no beneficial partition found", r.app_name),
        }
    }
}
