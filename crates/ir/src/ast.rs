//! Abstract syntax tree of the behavioral description language.
//!
//! Applications enter the partitioning flow as "a behavioral
//! description" (§3.2). `corepart` accepts a small, C-like language with
//! integer scalars, fixed-size global arrays (which live in the shared
//! memory of Fig. 2 a), functions, loops and conditionals — enough to
//! express the paper's DSP-style workloads.
//!
//! A program can be built by parsing source text
//! ([`crate::parser::parse`]) or programmatically via these types.

use std::fmt;

use crate::op::{BinOp, UnOp};

/// A source location (1-based line/column) for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A whole behavioral-description program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The application name (`app <name>;`).
    pub name: String,
    /// Named integer constants.
    pub consts: Vec<ConstDecl>,
    /// Global scalar variables.
    pub globals: Vec<GlobalDecl>,
    /// Global arrays (shared-memory resident).
    pub arrays: Vec<ArrayDecl>,
    /// Function definitions. Execution starts at `main`.
    pub funcs: Vec<FuncDecl>,
}

impl Program {
    /// Looks up a function by name.
    pub fn func(&self, name: &str) -> Option<&FuncDecl> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Looks up an array by name.
    pub fn array(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.name == name)
    }
}

/// `const NAME = <int>;`
#[derive(Debug, Clone, PartialEq)]
pub struct ConstDecl {
    /// Constant name.
    pub name: String,
    /// Folded value.
    pub value: i64,
    /// Declaration site.
    pub span: Span,
}

/// `var NAME = <int>;` at top level.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Variable name.
    pub name: String,
    /// Initial value.
    pub init: i64,
    /// Declaration site.
    pub span: Span,
}

/// `var NAME[<len>];` at top level.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDecl {
    /// Array name.
    pub name: String,
    /// Number of (word-sized) elements.
    pub len: u32,
    /// Declaration site.
    pub span: Span,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Definition site.
    pub span: Span,
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A scalar variable.
    Var(String),
    /// An array element.
    Index(String, Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var x = e;` — declares a local.
    VarDecl {
        /// Local name.
        name: String,
        /// Initializer.
        init: Expr,
        /// Site.
        span: Span,
    },
    /// `lv = e;`
    Assign {
        /// Target location.
        target: LValue,
        /// Assigned value.
        value: Expr,
        /// Site.
        span: Span,
    },
    /// `if (c) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch statements.
        then_body: Vec<Stmt>,
        /// Else-branch statements (possibly empty).
        else_body: Vec<Stmt>,
        /// Site.
        span: Span,
    },
    /// `while (c) { .. }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Body statements.
        body: Vec<Stmt>,
        /// Site.
        span: Span,
    },
    /// `for (init; c; step) { .. }` — sugar over `while`.
    For {
        /// Init statement (VarDecl or Assign).
        init: Box<Stmt>,
        /// Loop condition.
        cond: Expr,
        /// Step statement (Assign).
        step: Box<Stmt>,
        /// Body statements.
        body: Vec<Stmt>,
        /// Site.
        span: Span,
    },
    /// `return e?;`
    Return {
        /// Optional return value.
        value: Option<Expr>,
        /// Site.
        span: Span,
    },
    /// An expression evaluated for effect (a call).
    Expr {
        /// The expression.
        expr: Expr,
        /// Site.
        span: Span,
    },
}

impl Stmt {
    /// The statement's source location.
    pub fn span(&self) -> Span {
        match self {
            Stmt::VarDecl { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::For { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::Expr { span, .. } => *span,
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Span),
    /// Scalar variable or named constant reference.
    Var(String, Span),
    /// Array element read.
    Index(String, Box<Expr>, Span),
    /// Unary operation.
    Unary(UnOp, Box<Expr>, Span),
    /// Binary operation. `&&`/`||` are lowered to bitwise on 0/1 values
    /// (the language has no short-circuit evaluation).
    Binary(BinOp, Box<Expr>, Box<Expr>, Span),
    /// Function call.
    Call(String, Vec<Expr>, Span),
}

impl Expr {
    /// The expression's source location.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s)
            | Expr::Var(_, s)
            | Expr::Index(_, _, s)
            | Expr::Unary(_, _, s)
            | Expr::Binary(_, _, _, s)
            | Expr::Call(_, _, s) => *s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_lookup() {
        let p = Program {
            name: "t".into(),
            consts: vec![],
            globals: vec![],
            arrays: vec![ArrayDecl {
                name: "buf".into(),
                len: 16,
                span: Span::default(),
            }],
            funcs: vec![FuncDecl {
                name: "main".into(),
                params: vec![],
                body: vec![],
                span: Span::default(),
            }],
        };
        assert!(p.func("main").is_some());
        assert!(p.func("other").is_none());
        assert_eq!(p.array("buf").unwrap().len, 16);
    }

    #[test]
    fn spans_accessible() {
        let s = Span { line: 3, col: 7 };
        let e = Expr::Int(1, s);
        assert_eq!(e.span(), s);
        assert_eq!(format!("{s}"), "3:7");
        let st = Stmt::Return {
            value: None,
            span: s,
        };
        assert_eq!(st.span(), s);
    }
}
