//! `3d` — "an algorithm for computing 3D vectors of a motion picture".
//!
//! Fixed-point (Q8) 3×3 matrix transform plus translation over a vertex
//! list, followed by a light view-space accumulation pass that stays
//! software-friendly. The transform loop is the multiply-rich hot
//! cluster the partitioner is expected to move; the paper's row shows a
//! modest 35 % saving with a small, rarely-clocked ASIC core.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of vertices.
pub const NV: usize = 96;

/// The behavioral source.
pub const SOURCE: &str = r#"
app threed;

const NV = 96;

var vx[96];
var vy[96];
var vz[96];
var ox[96];
var oy[96];
var oz[96];
var mat[12];

func main() {
    // Hot cluster: fixed-point matrix transform of every vertex.
    for (var i = 0; i < NV; i = i + 1) {
        var x = vx[i];
        var y = vy[i];
        var z = vz[i];
        ox[i] = (mat[0] * x + mat[1] * y + mat[2] * z + mat[9]) >> 8;
        oy[i] = (mat[3] * x + mat[4] * y + mat[5] * z + mat[10]) >> 8;
        oz[i] = (mat[6] * x + mat[7] * y + mat[8] * z + mat[11]) >> 8;
    }
    // View-space post-pass: clamp behind-camera vertices, accumulate a
    // screen-space checksum (control-flow-heavy, stays on the uP core).
    var acc = 0;
    for (var j = 0; j < NV; j = j + 1) {
        var depth = oz[j];
        if (depth < 16) {
            depth = 16;
        }
        var sx = (ox[j] << 7) / depth;
        var sy = (oy[j] << 7) / depth;
        acc = acc + sx + sy;
    }
    return acc;
}
"#;

/// Deterministic input arrays: vertex coordinates and a Q8 rotation
/// matrix.
pub fn arrays(seed: u64) -> Vec<(String, Vec<i64>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let coord =
        |rng: &mut StdRng| -> Vec<i64> { (0..NV).map(|_| rng.gen_range(-256..256)).collect() };
    // Q8 rotation-ish matrix (rows roughly orthonormal) + translation.
    let mat: Vec<i64> = vec![
        221, -128, 0, //
        128, 221, 0, //
        0, 0, 256, //
        512, 256, 2048,
    ];
    vec![
        ("vx".to_owned(), coord(&mut rng)),
        ("vy".to_owned(), coord(&mut rng)),
        (
            "vz".to_owned(),
            (0..NV).map(|_| rng.gen_range(32..512)).collect(),
        ),
        ("mat".to_owned(), mat),
    ]
}
