//! Extension experiment **E1** — running the ASIC core at a reduced
//! supply voltage.
//!
//! The paper's related work includes multiple-voltage core-based design
//! (its reference \[10\], Hong/Kirovski DAC'98); Henkel's own cores run
//! at the nominal CMOS6 5 V. This experiment combines the two ideas:
//! after `corepart` picks a partition, the ASIC core — which often has
//! timing slack because the application is µP-bound — is re-evaluated
//! at 5.0 / 3.3 / 2.4 V. Switching energy falls with `V²` while the
//! ASIC clock derates per the alpha-power law, so its cycle count is
//! converted into µP-clock equivalents for the time column.
//!
//! ```text
//! cargo run --release -p corepart-bench --bin ablation_voltage
//! ```

use corepart::engine::Engine;
use corepart::partition::Partitioner;
use corepart::prepare::Workload;
use corepart::system::SystemConfig;
use corepart_bench::SEED;
use corepart_tech::units::{Cycles, Energy};
use corepart_workloads::all;

fn main() {
    let config = SystemConfig::new();
    println!("E1: ASIC supply-voltage scaling of the chosen partition\n");
    println!(
        "{:<8} {:>6} {:>14} {:>10} {:>12} {:>8}",
        "app", "Vdd", "total energy", "saving%", "total cyc*", "chg%"
    );
    for w in all() {
        let app = w.app().expect("bundled workload lowers");
        let workload = Workload::from_arrays(w.arrays(SEED));
        let engine = Engine::new(config.clone()).expect("engine");
        let session = engine.session(&app, &workload);
        let partitioner = Partitioner::new(&session).expect("initial run");
        let outcome = partitioner.run().expect("search");
        let Some((_, detail)) = &outcome.best else {
            println!("{:<8} (no partition found)\n", w.name);
            continue;
        };
        let initial = &outcome.initial;

        for vdd in [5.0f64, 3.3, 2.4] {
            // ASIC energy scales with V²; its wall-clock stretches by
            // the delay derating, expressed in µP-clock-equivalent
            // cycles. Everything µP-side is voltage-unchanged.
            let e_scale = (vdd / config.process.supply_voltage()).powi(2);
            let derate = config.process.delay_derating(vdd);
            let asic_e = detail.metrics.asic_core.unwrap_or(Energy::ZERO);
            let total_e = detail.metrics.total_energy() - asic_e + asic_e * e_scale;
            let asic_cyc_eq = (detail.metrics.asic_cycles.count() as f64 * derate).round() as u64;
            let total_cyc = detail.metrics.up_cycles + Cycles::new(asic_cyc_eq);
            let saving = total_e
                .percent_saving(initial.total_energy())
                .unwrap_or(0.0);
            let chg = total_cyc
                .percent_change(initial.total_cycles())
                .unwrap_or(0.0);
            println!(
                "{:<8} {:>5.1}V {:>14} {:>10.1} {:>12} {:>8.1}",
                w.name,
                vdd,
                format!("{total_e}"),
                saving,
                total_cyc,
                chg,
            );
        }
        println!();
    }
    println!(
        "(*) ASIC cycles converted to uP-clock equivalents via the alpha-power\n\
         delay derating. Reading: voltage scaling buys extra savings exactly\n\
         where the partition left timing slack (negative chg%), and costs\n\
         time where the ASIC was already the critical resource (trick)."
    );
}
