//! The SPARC-like machine instruction set of the modelled µP core.
//!
//! The paper's experiments run on a SPARCLite embedded core with an
//! instruction-level energy simulator (§4). This module defines a
//! 32-register RISC instruction set of the same flavour: three-operand
//! ALU ops with a register-or-immediate second source, multi-cycle
//! multiply/divide, displacement loads/stores, and compare-and-branch.

use std::fmt;

/// A machine register. `r0` is hardwired to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// The hardwired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Number of architectural registers.
    pub const COUNT: u8 = 32;
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Second source operand: register or immediate (SPARC's reg-or-imm13,
/// widened here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegImm {
    /// A register source.
    Reg(Reg),
    /// An immediate source.
    Imm(i64),
}

impl fmt::Display for RegImm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegImm::Reg(r) => write!(f, "{r}"),
            RegImm::Imm(i) => write!(f, "{i}"),
        }
    }
}

impl From<Reg> for RegImm {
    fn from(r: Reg) -> RegImm {
        RegImm::Reg(r)
    }
}

impl From<i64> for RegImm {
    fn from(i: i64) -> RegImm {
        RegImm::Imm(i)
    }
}

/// ALU operations (single-cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left logical.
    Sll,
    /// Shift right arithmetic.
    Sra,
    /// Set if less than.
    Slt,
    /// Set if less or equal.
    Sle,
    /// Set if equal.
    Seq,
    /// Set if not equal.
    Sne,
    /// Set if greater than.
    Sgt,
    /// Set if greater or equal.
    Sge,
}

impl AluOp {
    /// Evaluates the operation.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl((b & 63) as u32),
            AluOp::Sra => a.wrapping_shr((b & 63) as u32),
            AluOp::Slt => i64::from(a < b),
            AluOp::Sle => i64::from(a <= b),
            AluOp::Seq => i64::from(a == b),
            AluOp::Sne => i64::from(a != b),
            AluOp::Sgt => i64::from(a > b),
            AluOp::Sge => i64::from(a >= b),
        }
    }

    /// True for the shift operations (they exercise the core's barrel
    /// shifter rather than the adder).
    pub fn is_shift(self) -> bool {
        matches!(self, AluOp::Sll | AluOp::Sra)
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sle => "sle",
            AluOp::Seq => "seq",
            AluOp::Sne => "sne",
            AluOp::Sgt => "sgt",
            AluOp::Sge => "sge",
        };
        f.write_str(s)
    }
}

/// One machine instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachInst {
    /// `rd = rs1 <op> rhs`
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rhs: RegImm,
    },
    /// `rd = rs1 * rhs` (multi-cycle).
    Mul {
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rhs: RegImm,
    },
    /// `rd = rs1 / rhs` (multi-cycle; 0 when dividing by zero).
    Div {
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rhs: RegImm,
    },
    /// `rd = rs1 % rhs` (multi-cycle; 0 when dividing by zero).
    Rem {
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rhs: RegImm,
    },
    /// `rd = imm`
    Movi {
        /// Destination.
        rd: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// `rd = mem[rs1 + offset]` (word).
    Ldw {
        /// Destination.
        rd: Reg,
        /// Base register.
        base: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// `mem[base + offset] = rs` (word).
    Stw {
        /// Source.
        rs: Reg,
        /// Base register.
        base: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// Branch to `target` when `rs == 0`.
    Beqz {
        /// Tested register.
        rs: Reg,
        /// Target instruction index.
        target: u32,
    },
    /// Branch to `target` when `rs != 0`.
    Bnez {
        /// Tested register.
        rs: Reg,
        /// Target instruction index.
        target: u32,
    },
    /// Unconditional jump.
    Jmp {
        /// Target instruction index.
        target: u32,
    },
    /// Stop execution (end of `main`).
    Halt,
    /// No operation.
    Nop,
}

impl MachInst {
    /// The latency of this instruction in core cycles (SPARCLite-era
    /// figures: single-cycle ALU, 5-cycle multiply, 20-cycle divide,
    /// single-cycle loads/stores assuming a cache hit — miss penalties
    /// are added by the memory hierarchy simulation).
    pub fn latency(&self) -> u64 {
        match self {
            MachInst::Mul { .. } => 5,
            MachInst::Div { .. } | MachInst::Rem { .. } => 20,
            MachInst::Ldw { .. } | MachInst::Stw { .. } => 1,
            _ => 1,
        }
    }
}

impl fmt::Display for MachInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachInst::Alu { op, rd, rs1, rhs } => write!(f, "{op} {rd}, {rs1}, {rhs}"),
            MachInst::Mul { rd, rs1, rhs } => write!(f, "smul {rd}, {rs1}, {rhs}"),
            MachInst::Div { rd, rs1, rhs } => write!(f, "sdiv {rd}, {rs1}, {rhs}"),
            MachInst::Rem { rd, rs1, rhs } => write!(f, "srem {rd}, {rs1}, {rhs}"),
            MachInst::Movi { rd, imm } => write!(f, "set {imm}, {rd}"),
            MachInst::Ldw { rd, base, offset } => write!(f, "ld [{base}+{offset}], {rd}"),
            MachInst::Stw { rs, base, offset } => write!(f, "st {rs}, [{base}+{offset}]"),
            MachInst::Beqz { rs, target } => write!(f, "beqz {rs}, {target}"),
            MachInst::Bnez { rs, target } => write!(f, "bnez {rs}, {target}"),
            MachInst::Jmp { target } => write!(f, "jmp {target}"),
            MachInst::Halt => f.write_str("halt"),
            MachInst::Nop => f.write_str("nop"),
        }
    }
}

/// Coarse instruction classes for the instruction-level energy model
/// (Tiwari-style base costs per class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InstClass {
    /// Single-cycle ALU (arith/logic/compare).
    Alu,
    /// Shift (barrel shifter).
    Shift,
    /// Multiply.
    Mul,
    /// Divide/remainder.
    Div,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Branch/jump.
    Branch,
    /// Immediate move / nop / halt.
    Move,
}

impl InstClass {
    /// All classes in a stable order.
    pub const ALL: [InstClass; 8] = [
        InstClass::Alu,
        InstClass::Shift,
        InstClass::Mul,
        InstClass::Div,
        InstClass::Load,
        InstClass::Store,
        InstClass::Branch,
        InstClass::Move,
    ];

    /// Classifies a machine instruction.
    pub fn of(inst: &MachInst) -> InstClass {
        match inst {
            MachInst::Alu { op, .. } if op.is_shift() => InstClass::Shift,
            MachInst::Alu { .. } => InstClass::Alu,
            MachInst::Mul { .. } => InstClass::Mul,
            MachInst::Div { .. } | MachInst::Rem { .. } => InstClass::Div,
            MachInst::Ldw { .. } => InstClass::Load,
            MachInst::Stw { .. } => InstClass::Store,
            MachInst::Beqz { .. } | MachInst::Bnez { .. } | MachInst::Jmp { .. } => {
                InstClass::Branch
            }
            MachInst::Movi { .. } | MachInst::Halt | MachInst::Nop => InstClass::Move,
        }
    }
}

impl fmt::Display for InstClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstClass::Alu => "alu",
            InstClass::Shift => "shift",
            InstClass::Mul => "mul",
            InstClass::Div => "div",
            InstClass::Load => "load",
            InstClass::Store => "store",
            InstClass::Branch => "branch",
            InstClass::Move => "move",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_eval() {
        assert_eq!(AluOp::Add.eval(3, 4), 7);
        assert_eq!(AluOp::Sub.eval(3, 4), -1);
        assert_eq!(AluOp::Sll.eval(1, 3), 8);
        assert_eq!(AluOp::Sra.eval(-16, 2), -4);
        assert_eq!(AluOp::Slt.eval(1, 2), 1);
        assert_eq!(AluOp::Sge.eval(1, 2), 0);
        assert_eq!(AluOp::Xor.eval(0b101, 0b110), 0b011);
    }

    #[test]
    fn latencies() {
        let mul = MachInst::Mul {
            rd: Reg(1),
            rs1: Reg(2),
            rhs: RegImm::Imm(3),
        };
        assert_eq!(mul.latency(), 5);
        let div = MachInst::Div {
            rd: Reg(1),
            rs1: Reg(2),
            rhs: RegImm::Imm(3),
        };
        assert_eq!(div.latency(), 20);
        assert_eq!(MachInst::Nop.latency(), 1);
    }

    #[test]
    fn classification() {
        let sll = MachInst::Alu {
            op: AluOp::Sll,
            rd: Reg(1),
            rs1: Reg(1),
            rhs: RegImm::Imm(2),
        };
        assert_eq!(InstClass::of(&sll), InstClass::Shift);
        let add = MachInst::Alu {
            op: AluOp::Add,
            rd: Reg(1),
            rs1: Reg(1),
            rhs: RegImm::Reg(Reg(2)),
        };
        assert_eq!(InstClass::of(&add), InstClass::Alu);
        assert_eq!(InstClass::of(&MachInst::Halt), InstClass::Move);
        assert_eq!(
            InstClass::of(&MachInst::Jmp { target: 0 }),
            InstClass::Branch
        );
    }

    #[test]
    fn display() {
        let i = MachInst::Alu {
            op: AluOp::Add,
            rd: Reg(3),
            rs1: Reg(1),
            rhs: RegImm::Imm(4),
        };
        assert_eq!(format!("{i}"), "add r3, r1, 4");
        let l = MachInst::Ldw {
            rd: Reg(2),
            base: Reg(5),
            offset: 8,
        };
        assert_eq!(format!("{l}"), "ld [r5+8], r2");
    }

    #[test]
    fn conversions() {
        let ri: RegImm = Reg(4).into();
        assert_eq!(ri, RegImm::Reg(Reg(4)));
        let ii: RegImm = 7i64.into();
        assert_eq!(ii, RegImm::Imm(7));
    }
}
