//! `digs` — a smoothing algorithm for digital images.
//!
//! A 3×3 weighted smoothing kernel over a grey-scale image followed by
//! a delta/threshold pass. Essentially the whole application is one
//! regular loop nest — the paper's best case, where partitioning
//! removes almost everything from the µP core (94 % saving, the
//! largest ASIC core at just under 16 k cells).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Image side length.
pub const SIDE: usize = 40;

/// The behavioral source.
pub const SOURCE: &str = r#"
app digs;

const SIDE = 40;

var img[1600];
var smooth[1600];

func main() {
    // 3x3 weighted smoothing (Gaussian-ish integer weights, /16 via
    // shift).
    for (var y = 1; y < SIDE - 1; y = y + 1) {
        for (var x = 1; x < SIDE - 1; x = x + 1) {
            var p = y * SIDE + x;
            var acc = img[p] * 4
                + (img[p - 1] + img[p + 1] + img[p - SIDE] + img[p + SIDE]) * 2
                + img[p - SIDE - 1] + img[p - SIDE + 1]
                + img[p + SIDE - 1] + img[p + SIDE + 1];
            smooth[p] = acc >> 4;
        }
    }
    // Edge-preservation pass: keep the original where smoothing moved
    // the value too far.
    var changed = 0;
    for (var y2 = 1; y2 < SIDE - 1; y2 = y2 + 1) {
        for (var x2 = 1; x2 < SIDE - 1; x2 = x2 + 1) {
            var q = y2 * SIDE + x2;
            var d = smooth[q] - img[q];
            var m = d >> 63;
            d = (d ^ m) - m;
            if (d > 24) {
                smooth[q] = img[q];
                changed = changed + 1;
            }
        }
    }
    return changed;
}
"#;

/// A deterministic test image: smooth gradient + salt-and-pepper noise
/// (so both passes do real work).
pub fn arrays(seed: u64) -> Vec<(String, Vec<i64>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut img = vec![0i64; SIDE * SIDE];
    for y in 0..SIDE {
        for x in 0..SIDE {
            let base = (x as i64 * 3 + y as i64 * 2) % 200;
            let noise = if rng.gen_ratio(1, 12) {
                rng.gen_range(-120..120)
            } else {
                rng.gen_range(-4..5)
            };
            img[y * SIDE + x] = (base + noise).clamp(0, 255);
        }
    }
    vec![("img".to_owned(), img)]
}
