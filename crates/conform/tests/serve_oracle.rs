//! Served-vs-fresh oracle: a `corepart serve` daemon on a loopback
//! socket must answer generated applications byte-identically to a
//! fresh in-process engine, and a corrupt request must produce a typed
//! error while leaving the store exactly as it was.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use corepart::json::{parse_json, result_field};
use corepart::serve::{respond_fresh, ComputeKind, ComputeRequest, ServeOptions, Server};
use corepart::system::SystemConfig;
use corepart_conform::generate;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.addr()).unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
    }

    fn recv(&mut self) -> String {
        let mut response = String::new();
        self.reader.read_line(&mut response).unwrap();
        assert!(response.ends_with('\n'), "truncated response: {response}");
        response.trim_end().to_owned()
    }

    fn ask(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }

    fn store_shape(&mut self) -> (u64, u64) {
        let stats = parse_json(&self.ask("{\"cmd\":\"stats\"}")).unwrap();
        let result = stats.get("result").unwrap();
        (
            result.get("bytes").and_then(|v| v.as_u64()).unwrap(),
            result
                .get("shards")
                .and_then(|v| v.as_array())
                .unwrap()
                .iter()
                .map(|s| s.get("entries").and_then(|v| v.as_u64()).unwrap())
                .sum(),
        )
    }
}

fn spawn_server() -> Server {
    Server::spawn(
        SystemConfig::new(),
        &ServeOptions {
            port: 0,
            shards: 2,
            threads: 1,
            ..ServeOptions::default()
        },
    )
    .unwrap()
}

#[test]
fn served_generated_apps_match_fresh_engines() {
    let server = spawn_server();
    let base = SystemConfig::new();
    let mut client = Client::connect(&server);
    for seed in 0..6u64 {
        let app = generate(seed);
        let mut req = ComputeRequest::new(ComputeKind::Partition, &app.source());
        req.id = Some(seed);
        req.arrays = app.workload_arrays();
        let fresh = respond_fresh(&base, &req);
        // Twice per app: the second answer comes from the warm store.
        for pass in 0..2 {
            let served = client.ask(&req.to_json());
            if fresh.contains("\"ok\":false") {
                // Error responses carry no advisory stats — the whole
                // line must match, warm or cold.
                assert_eq!(served, fresh, "seed {seed} pass {pass}");
            } else {
                assert_eq!(
                    result_field(&served),
                    result_field(&fresh),
                    "seed {seed} pass {pass}: served result drifted from fresh"
                );
            }
        }
    }
    client.ask("{\"cmd\":\"shutdown\"}");
    server.join();
}

/// Builds the pipelined-oracle request mix: one partition and two
/// identical verify requests (a coalescable pair) per generated seed,
/// each paired with its fresh-engine reference response.
fn pipelined_mix(base: &SystemConfig, ordered: bool) -> Vec<(ComputeRequest, String)> {
    let mut mix = Vec::new();
    for seed in 0..6u64 {
        let app = generate(seed);
        let mut partition = ComputeRequest::new(ComputeKind::Partition, &app.source());
        partition.arrays = app.workload_arrays();
        partition.ordered = ordered;
        let mut verify = partition.clone();
        verify.kind = ComputeKind::Verify;
        verify.clusters = vec![0];
        for mut req in [partition, verify.clone(), verify] {
            req.id = Some(mix.len() as u64);
            let fresh = respond_fresh(base, &req);
            mix.push((req, fresh));
        }
    }
    // Deterministic shuffle: i -> (7 i + 3) mod 18 is a permutation
    // of the 18 requests because gcd(7, 18) = 1.
    let len = mix.len();
    (0..len).map(|i| mix[(7 * i + 3) % len].clone()).collect()
}

fn check_against_fresh(served: &str, fresh: &str, context: &str) {
    if fresh.contains("\"ok\":false") {
        assert_eq!(served, fresh, "{context}");
    } else {
        assert_eq!(
            result_field(served),
            result_field(fresh),
            "{context}: served result drifted from fresh"
        );
    }
}

#[test]
fn pipelined_shuffled_responses_match_serial_serving() {
    let server = spawn_server();
    let base = SystemConfig::new();
    let mix = pipelined_mix(&base, true);
    let mut client = Client::connect(&server);
    // Burst every request before reading a single response; ordered
    // (default) semantics promise responses in request order even
    // though the shards finish out of order.
    for (req, _) in &mix {
        client.send(&req.to_json());
    }
    for (i, (req, fresh)) in mix.iter().enumerate() {
        let served = client.recv();
        let echoed = parse_json(&served)
            .unwrap()
            .get("id")
            .and_then(|v| v.as_u64());
        assert_eq!(echoed, req.id, "burst position {i} answered out of order");
        check_against_fresh(&served, fresh, &format!("burst position {i}"));
    }
    client.ask("{\"cmd\":\"shutdown\"}");
    server.join();
}

#[test]
fn unordered_responses_are_matched_by_id() {
    let server = spawn_server();
    let base = SystemConfig::new();
    let mix = pipelined_mix(&base, false);
    let mut client = Client::connect(&server);
    for (req, _) in &mix {
        client.send(&req.to_json());
    }
    // `"ordered":false` waives the reorder buffer: responses arrive in
    // completion order and the client matches them by echoed id.
    let mut seen = vec![false; mix.len()];
    for _ in 0..mix.len() {
        let served = client.recv();
        let id = parse_json(&served)
            .unwrap()
            .get("id")
            .and_then(|v| v.as_u64())
            .expect("unordered response lost its id") as usize;
        assert!(!seen[id], "id {id} answered twice");
        seen[id] = true;
        let (_, fresh) = mix
            .iter()
            .find(|(req, _)| req.id == Some(id as u64))
            .unwrap();
        check_against_fresh(&served, fresh, &format!("id {id}"));
    }
    assert!(seen.iter().all(|&s| s), "some requests were never answered");
    client.ask("{\"cmd\":\"shutdown\"}");
    server.join();
}

#[test]
fn connection_cap_answers_busy_and_closes() {
    let server = Server::spawn(
        SystemConfig::new(),
        &ServeOptions {
            port: 0,
            shards: 2,
            threads: 1,
            max_connections: 1,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let mut first = Client::connect(&server);
    let app = generate(1);
    let mut req = ComputeRequest::new(ComputeKind::Partition, &app.source());
    req.arrays = app.workload_arrays();
    assert!(first.ask(&req.to_json()).contains("\"ok\":true"));

    // The over-cap connection gets exactly one typed `busy` line and
    // an orderly close, with no request ever read from it.
    let mut second = Client::connect(&server);
    let busy = second.recv();
    assert!(busy.contains("\"ok\":false"), "{busy}");
    assert!(busy.contains("\"kind\":\"busy\""), "{busy}");
    let mut rest = String::new();
    assert_eq!(
        second.reader.read_line(&mut rest).unwrap(),
        0,
        "not closed: {rest}"
    );

    // The admitted connection is unharmed — and once it hangs up, the
    // freed slot admits a new client.
    assert!(first.ask(&req.to_json()).contains("\"store_hit\":true"));
    drop(first);
    let mut third = None;
    for attempt in 0..100 {
        let mut candidate = Client::connect(&server);
        candidate.send(&req.to_json());
        let answer = candidate.recv();
        if answer.contains("\"ok\":true") {
            third = Some(candidate);
            break;
        }
        assert!(answer.contains("\"kind\":\"busy\""), "{answer}");
        assert!(attempt < 99, "slot never freed after disconnect");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    third.unwrap().ask("{\"cmd\":\"shutdown\"}");
    server.join();
}

#[test]
fn request_timeout_returns_typed_error_without_poisoning() {
    let server = Server::spawn(
        SystemConfig::new(),
        &ServeOptions {
            port: 0,
            shards: 1,
            threads: 1,
            request_timeout_ms: 1,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(&server);
    let app = generate(0);
    let mut req = ComputeRequest::new(ComputeKind::Partition, &app.source());
    req.id = Some(7);
    req.arrays = app.workload_arrays();

    // A cold partition cannot finish inside 1 ms, so the writer
    // synthesizes a typed timeout error while the shard keeps
    // computing in the background.
    let timed_out = client.ask(&req.to_json());
    assert!(timed_out.contains("\"ok\":false"), "{timed_out}");
    assert!(timed_out.contains("\"kind\":\"timeout\""), "{timed_out}");
    assert!(timed_out.contains("\"id\":7"), "{timed_out}");

    // The abandoned compute still memoizes: polling the same request
    // eventually answers from the warm store, under the same 1 ms
    // deadline, proving the engine was not poisoned mid-flight.
    let mut warm = None;
    for _ in 0..2000 {
        let answer = client.ask(&req.to_json());
        if answer.contains("\"ok\":true") {
            warm = Some(answer);
            break;
        }
        assert!(answer.contains("\"kind\":\"timeout\""), "{answer}");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let warm = warm.expect("request never completed after the timeout");
    assert!(warm.contains("\"store_hit\":true"), "{warm}");

    client.ask("{\"cmd\":\"shutdown\"}");
    server.join();
}

#[test]
fn corrupt_source_is_a_typed_error_and_leaves_the_store_clean() {
    let server = spawn_server();
    let mut client = Client::connect(&server);

    // Warm the store with one healthy app, then snapshot its shape.
    let app = generate(1);
    let mut good = ComputeRequest::new(ComputeKind::Partition, &app.source());
    good.arrays = app.workload_arrays();
    assert!(client.ask(&good.to_json()).contains("\"ok\":true"));
    let before = client.store_shape();

    // A corrupt BDL must be rejected with the `ir` error kind…
    let mut broken = good.clone();
    broken.source = "app broken; func main( { return 0; }".to_owned();
    let response = client.ask(&broken.to_json());
    assert!(response.contains("\"ok\":false"), "{response}");
    assert!(response.contains("\"kind\":\"ir\""), "{response}");

    // …and must not have admitted (or evicted) anything: no poisoned
    // entry reaches the pools, because the parse fails before the
    // store is touched.
    assert_eq!(client.store_shape(), before, "the store changed shape");

    // The daemon still answers healthy requests afterwards.
    let again = client.ask(&good.to_json());
    assert!(again.contains("\"ok\":true"), "{again}");
    assert!(again.contains("\"store_hit\":true"), "{again}");

    client.ask("{\"cmd\":\"shutdown\"}");
    server.join();
}
