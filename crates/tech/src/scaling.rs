//! Technology-node scaling tables and operating points.
//!
//! The paper evaluates one process (CMOS6, 0.8µ at 5 V). This module
//! turns "which process, at which supply" into a first-class *operating
//! point*: a `(node, vdd)` pair resolved through a per-node scaling
//! table in the Lumos style — one row per node carrying vdd, frequency,
//! energy and area factors relative to the base process, plus the node's
//! threshold voltage bounding its DVFS range.
//!
//! The crucial property is that an operating point never changes *what
//! executes*: instruction streams, cache events and bus transfers are
//! node-invariant counts. A point only changes *what the counts weigh*,
//! via [`PointWeights`] — three pure multipliers (energy, time, area)
//! applied to metrics computed at the base process. The base process at
//! its native point resolves to weights of exactly `1.0`, so weighting
//! is bit-exact identity there.

use std::fmt;

use crate::process::{alpha_power_derate, CmosProcess};
use crate::units::Frequency;

/// DVFS over-drive ceiling: supplies up to `1.3 ×` a node's nominal vdd
/// are accepted (the Lumos table convention); the floor is the node's
/// threshold voltage, exclusive.
pub const DVFS_UPPER_RATIO: f64 = 1.3;

/// A `(technology node, supply voltage)` pair selecting how node-invariant
/// replay counts are weighed into energy/time/area.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Technology node in nanometres (e.g. `800` for the paper's 0.8µ).
    pub node_nm: u32,
    /// Supply voltage in volts.
    pub vdd: f64,
}

impl OperatingPoint {
    /// The native point of a base process: its own node at its own
    /// nominal supply. Weights resolve to exactly `1.0` there.
    pub fn native_of(base: &CmosProcess) -> Self {
        OperatingPoint {
            node_nm: (base.feature_size_um() * 1000.0).round() as u32,
            vdd: base.supply_voltage(),
        }
    }
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm@{:.3}V", self.node_nm, self.vdd)
    }
}

/// Why an operating point failed to resolve against a scaling table.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalingError {
    /// The requested node has no row in the table.
    UnknownNode {
        /// The requested node in nanometres.
        node_nm: u32,
        /// The nodes the table does carry.
        known: Vec<u32>,
    },
    /// The requested supply is outside the node's DVFS range.
    VoltageOutOfRange {
        /// The requested supply voltage (volts).
        vdd: f64,
        /// Exclusive lower bound (the node's threshold voltage).
        low: f64,
        /// Inclusive upper bound (`1.3 ×` nominal).
        high: f64,
        /// The node whose range was violated.
        node_nm: u32,
    },
}

impl fmt::Display for ScalingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalingError::UnknownNode { node_nm, known } => {
                write!(f, "unknown technology node {node_nm}nm (known: ")?;
                for (i, n) in known.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}")?;
                }
                write!(f, ")")
            }
            ScalingError::VoltageOutOfRange {
                vdd,
                low,
                high,
                node_nm,
            } => write!(
                f,
                "voltage {vdd} V outside ({low}, {high}] for node {node_nm}nm"
            ),
        }
    }
}

impl std::error::Error for ScalingError {}

/// One row of a [`NodeScalingTable`]: factors relative to the table's
/// base process, in the Lumos table shape.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeScaling {
    /// Technology node in nanometres.
    pub node_nm: u32,
    /// Nominal supply as a fraction of the base supply.
    pub vdd_factor: f64,
    /// Clock frequency multiplier at nominal supply.
    pub freq_factor: f64,
    /// Per-event switching-energy multiplier at nominal supply.
    pub energy_factor: f64,
    /// Silicon-area multiplier for the same gate-equivalent count.
    pub area_factor: f64,
    /// Threshold voltage in volts (exclusive DVFS floor).
    pub vth: f64,
}

impl NodeScaling {
    /// Nominal supply voltage of this node, in volts.
    pub fn nominal_vdd(&self, base: &CmosProcess) -> f64 {
        base.supply_voltage() * self.vdd_factor
    }

    /// The node's valid supply range `(low, high]` in volts:
    /// `(vth, 1.3 × nominal]`.
    pub fn dvfs_range(&self, base: &CmosProcess) -> (f64, f64) {
        (self.vth, DVFS_UPPER_RATIO * self.nominal_vdd(base))
    }

    /// The lowest supply a voltage sweep visits: well above threshold
    /// (alpha-power delay diverges at `vth`) and no lower than 60% of
    /// nominal, whichever is higher.
    pub fn sweep_floor(&self, base: &CmosProcess) -> f64 {
        let vnom = self.nominal_vdd(base);
        (0.6 * vnom).max(self.vth + 0.1 * (vnom - self.vth))
    }

    /// A descending supply sweep from nominal to [`NodeScaling::sweep_floor`]
    /// with `steps` points (`steps == 1` yields just the nominal; the
    /// first point is always exactly nominal).
    pub fn vdd_sweep(&self, base: &CmosProcess, steps: usize) -> Vec<f64> {
        let vnom = self.nominal_vdd(base);
        let steps = steps.max(1);
        if steps == 1 {
            return vec![vnom];
        }
        let floor = self.sweep_floor(base);
        (0..steps)
            .map(|i| vnom + (floor - vnom) * (i as f64 / (steps - 1) as f64))
            .collect()
    }

    /// A concrete [`CmosProcess`] for this node at nominal supply,
    /// derived from `base`. Its switch energy, clock and DVFS range are
    /// consistent with this row's factors: `gate_switch_energy` is
    /// `energy_factor ×` the base's, the clock is `freq_factor ×`, and
    /// `delay_derating` agrees bit-for-bit with the derating inside
    /// [`NodeScalingTable::weights`].
    pub fn process(&self, base: &CmosProcess) -> CmosProcess {
        let vnom = self.nominal_vdd(base);
        // E = C·V² at both points: C_node = C_base · energy_factor / vdd_factor².
        let cap =
            base.gate_capacitance() * self.energy_factor / (self.vdd_factor * self.vdd_factor);
        CmosProcess::with_params(
            format!("{} node {}nm", base.name(), self.node_nm),
            self.node_nm as f64 / 1000.0,
            vnom,
            self.vth,
            cap,
            base.idle_activity(),
            base.active_activity(),
            Frequency::from_hertz(base.clock().hertz() * self.freq_factor),
        )
    }
}

/// The three pure multipliers an operating point applies to base-process
/// metrics. At the base process's native point all three are exactly
/// `1.0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointWeights {
    /// Multiplier on every switching energy.
    pub energy: f64,
    /// Multiplier on wall-clock time for the same cycle count.
    pub time: f64,
    /// Multiplier on silicon area for the same gate-equivalent count.
    pub area: f64,
}

impl PointWeights {
    /// The identity weighting (native point).
    pub fn identity() -> Self {
        PointWeights {
            energy: 1.0,
            time: 1.0,
            area: 1.0,
        }
    }
}

/// Per-node scaling factors for a family of processes sharing one base.
///
/// ```
/// use corepart_tech::process::CmosProcess;
/// use corepart_tech::scaling::{NodeScalingTable, OperatingPoint};
///
/// let base = CmosProcess::cmos6();
/// let table = NodeScalingTable::cmos6_family();
/// // The native point weighs everything by exactly 1.
/// let w = table.weights(&base, &OperatingPoint { node_nm: 800, vdd: 5.0 }).unwrap();
/// assert_eq!((w.energy, w.time, w.area), (1.0, 1.0, 1.0));
/// // A deep-submicron point is dramatically cheaper.
/// let w = table.weights(&base, &OperatingPoint { node_nm: 180, vdd: 1.8 }).unwrap();
/// assert!(w.energy < 0.1 && w.time < 1.0 && w.area < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NodeScalingTable {
    rows: Vec<NodeScaling>,
}

impl NodeScalingTable {
    /// Build a table from explicit rows.
    pub fn new(rows: Vec<NodeScaling>) -> Self {
        NodeScalingTable { rows }
    }

    /// The CMOS6-anchored scaling family: the paper's 0.8µ node as the
    /// identity row, followed by classic half-micron-to-deep-submicron
    /// nodes. Factors follow first-order constant-field scaling bent
    /// toward the historically reported supply/frequency points (the
    /// Lumos-table shape: per-node vdd/frequency/energy/area factors
    /// plus threshold voltage).
    pub fn cmos6_family() -> Self {
        let row = |node_nm, vdd_factor, freq_factor, energy_factor, area_factor, vth| NodeScaling {
            node_nm,
            vdd_factor,
            freq_factor,
            energy_factor,
            area_factor,
            vth,
        };
        NodeScalingTable::new(vec![
            // node  vdd_f  freq_f  energy_f  area_f    vth
            row(800, 1.0, 1.0, 1.0, 1.0, 0.80),
            row(600, 0.66, 1.35, 0.48, 0.56, 0.70),
            row(350, 0.66, 2.0, 0.35, 0.19, 0.58),
            row(250, 0.5, 2.6, 0.19, 0.098, 0.47),
            row(180, 0.36, 3.2, 0.096, 0.051, 0.39),
            row(130, 0.24, 3.7, 0.042, 0.026, 0.33),
            row(90, 0.2, 4.0, 0.026, 0.013, 0.28),
            row(65, 0.2, 4.3, 0.017, 0.0084, 0.25),
            row(45, 0.18, 4.6, 0.011, 0.0042, 0.22),
            row(32, 0.17, 4.8, 0.0075, 0.0021, 0.20),
        ])
    }

    /// The table's rows, largest node first.
    pub fn rows(&self) -> &[NodeScaling] {
        &self.rows
    }

    /// The nodes the table knows, in row order.
    pub fn nodes(&self) -> Vec<u32> {
        self.rows.iter().map(|r| r.node_nm).collect()
    }

    /// The row for a node, if present.
    pub fn row(&self, node_nm: u32) -> Option<&NodeScaling> {
        self.rows.iter().find(|r| r.node_nm == node_nm)
    }

    /// Resolve an operating point into its three weights.
    ///
    /// Validates the node against the table and the supply against the
    /// node's DVFS range `(vth, 1.3 × nominal]`. The time weight is
    /// `(1 / freq_factor) · derate` with the derate computed by the same
    /// alpha-power law as [`CmosProcess::delay_derating`], so
    /// `time(vdd) == time(vnom) · derate(vdd)` holds bit-exactly.
    pub fn weights(
        &self,
        base: &CmosProcess,
        point: &OperatingPoint,
    ) -> Result<PointWeights, ScalingError> {
        let row = self
            .row(point.node_nm)
            .ok_or_else(|| ScalingError::UnknownNode {
                node_nm: point.node_nm,
                known: self.nodes(),
            })?;
        let vnom = row.nominal_vdd(base);
        let (low, high) = row.dvfs_range(base);
        if !(point.vdd > low && point.vdd <= high) {
            return Err(ScalingError::VoltageOutOfRange {
                vdd: point.vdd,
                low,
                high,
                node_nm: point.node_nm,
            });
        }
        let derate = alpha_power_derate(point.vdd, vnom, row.vth);
        let v_ratio = point.vdd / vnom;
        Ok(PointWeights {
            energy: row.energy_factor * v_ratio * v_ratio,
            time: (1.0 / row.freq_factor) * derate,
            area: row.area_factor,
        })
    }
}

impl Default for NodeScalingTable {
    fn default() -> Self {
        NodeScalingTable::cmos6_family()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_point_weights_are_exactly_one() {
        let base = CmosProcess::cmos6();
        let table = NodeScalingTable::cmos6_family();
        let native = OperatingPoint::native_of(&base);
        assert_eq!(
            native,
            OperatingPoint {
                node_nm: 800,
                vdd: 5.0
            }
        );
        let w = table.weights(&base, &native).unwrap();
        assert_eq!(w.energy.to_bits(), 1.0f64.to_bits());
        assert_eq!(w.time.to_bits(), 1.0f64.to_bits());
        assert_eq!(w.area.to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn every_row_has_usable_dvfs_range() {
        let base = CmosProcess::cmos6();
        let table = NodeScalingTable::cmos6_family();
        for row in table.rows() {
            let vnom = row.nominal_vdd(&base);
            let (low, high) = row.dvfs_range(&base);
            assert!(low < vnom && vnom <= high, "node {}", row.node_nm);
            assert!(row.sweep_floor(&base) > low, "node {}", row.node_nm);
            // Nominal weights resolve cleanly.
            let p = OperatingPoint {
                node_nm: row.node_nm,
                vdd: vnom,
            };
            let w = table.weights(&base, &p).unwrap();
            assert!(w.energy > 0.0 && w.time > 0.0 && w.area > 0.0);
        }
    }

    #[test]
    fn smaller_nodes_weigh_less() {
        let base = CmosProcess::cmos6();
        let table = NodeScalingTable::cmos6_family();
        let mut prev: Option<PointWeights> = None;
        for row in table.rows() {
            let p = OperatingPoint {
                node_nm: row.node_nm,
                vdd: row.nominal_vdd(&base),
            };
            let w = table.weights(&base, &p).unwrap();
            if let Some(prev) = prev {
                assert!(w.energy < prev.energy, "node {}", row.node_nm);
                assert!(w.area < prev.area, "node {}", row.node_nm);
            }
            prev = Some(w);
        }
    }

    #[test]
    fn lowering_vdd_within_range_never_raises_energy() {
        let base = CmosProcess::cmos6();
        let table = NodeScalingTable::cmos6_family();
        for row in table.rows() {
            let sweep = row.vdd_sweep(&base, 8);
            assert_eq!(sweep.len(), 8);
            assert_eq!(sweep[0].to_bits(), row.nominal_vdd(&base).to_bits());
            let mut prev_energy = f64::INFINITY;
            let mut prev_time = 0.0f64;
            for vdd in sweep {
                let p = OperatingPoint {
                    node_nm: row.node_nm,
                    vdd,
                };
                let w = table.weights(&base, &p).unwrap();
                assert!(w.energy <= prev_energy, "node {} vdd {vdd}", row.node_nm);
                assert!(w.time >= prev_time, "node {} vdd {vdd}", row.node_nm);
                prev_energy = w.energy;
                prev_time = w.time;
            }
        }
    }

    #[test]
    fn time_weight_factors_through_delay_derating_bit_exactly() {
        let base = CmosProcess::cmos6();
        let table = NodeScalingTable::cmos6_family();
        for row in table.rows() {
            let node = row.process(&base);
            let vnom = row.nominal_vdd(&base);
            let w_nom = table
                .weights(
                    &base,
                    &OperatingPoint {
                        node_nm: row.node_nm,
                        vdd: vnom,
                    },
                )
                .unwrap();
            for vdd in row.vdd_sweep(&base, 5) {
                let w = table
                    .weights(
                        &base,
                        &OperatingPoint {
                            node_nm: row.node_nm,
                            vdd,
                        },
                    )
                    .unwrap();
                let derate = node.delay_derating(vdd);
                assert_eq!(
                    w.time.to_bits(),
                    (w_nom.time * derate).to_bits(),
                    "node {} vdd {vdd}",
                    row.node_nm
                );
            }
        }
    }

    #[test]
    fn node_process_consistent_with_factors() {
        let base = CmosProcess::cmos6();
        let table = NodeScalingTable::cmos6_family();
        for row in table.rows() {
            let node = row.process(&base);
            let e_ratio = node.gate_switch_energy().joules() / base.gate_switch_energy().joules();
            assert!(
                (e_ratio - row.energy_factor).abs() < 1e-12 * row.energy_factor,
                "node {}",
                row.node_nm
            );
            let f_ratio = node.clock().hertz() / base.clock().hertz();
            assert!((f_ratio - row.freq_factor).abs() < 1e-12 * row.freq_factor);
            assert_eq!(node.threshold_voltage(), row.vth);
        }
    }

    #[test]
    fn errors_name_the_problem() {
        let base = CmosProcess::cmos6();
        let table = NodeScalingTable::cmos6_family();
        let err = table
            .weights(
                &base,
                &OperatingPoint {
                    node_nm: 123,
                    vdd: 1.0,
                },
            )
            .unwrap_err();
        assert!(err.to_string().contains("unknown technology node 123"));
        let err = table
            .weights(
                &base,
                &OperatingPoint {
                    node_nm: 800,
                    vdd: 0.5,
                },
            )
            .unwrap_err();
        assert!(err.to_string().contains("outside"));
        // Over-drive beyond 1.3x nominal is rejected too.
        let err = table
            .weights(
                &base,
                &OperatingPoint {
                    node_nm: 800,
                    vdd: 7.0,
                },
            )
            .unwrap_err();
        assert!(err.to_string().contains("outside"));
    }
}
