//! Counter semantics of [`corepart::engine::SessionStats`]: the
//! second resolution of every stage artifact is a *shared hit* —
//! observable through flags and cache counters, not recomputation —
//! and the counters agree no matter which entry path (direct
//! `Partitioner`, `DesignFlow`, `explore`) resolved them.
//!
//! Library-level error paths of the configuration surface live here
//! too (the CLI-level ones are in `tests/cli.rs`).

use std::sync::Arc;

use corepart::engine::{Engine, SessionStats};
use corepart::explore::explore;
use corepart::flow::DesignFlow;
use corepart::partition::Partitioner;
use corepart::prepare::Workload;
use corepart::system::SystemConfig;
use corepart::CorepartError;
use corepart_ir::lower::lower;
use corepart_ir::parser::parse;

const SRC: &str = r#"app stats; var x[96]; var y[96]; var acc = 0;
    func main() {
        for (var i = 1; i < 95; i = i + 1) {
            y[i] = (x[i - 1] + 2 * x[i] + x[i + 1]) >> 2;
        }
        for (var j = 0; j < 96; j = j + 1) { acc = acc + y[j] * 3; }
        return acc;
    }"#;

fn app() -> corepart_ir::cdfg::Application {
    lower(&parse(SRC).unwrap()).unwrap()
}

fn workload() -> Workload {
    Workload::from_arrays([("x", (0..96).map(|i| (i * 5) % 17).collect::<Vec<i64>>())])
}

/// A shared (pool-served) stage resolution must be a lookup, not a
/// recompute: much cheaper than the computing session's resolution or
/// under an absolute millisecond — whichever margin is wider, so OS
/// scheduling jitter cannot flake the assertion.
fn assert_lookup_cheap(stage: &str, shared_nanos: u64, computed_nanos: u64) {
    assert!(
        shared_nanos < computed_nanos / 2 || shared_nanos < 1_000_000,
        "{stage}: shared resolution took {shared_nanos} ns vs {computed_nanos} ns to compute — \
         that is a recompute, not a pool hit"
    );
}

#[test]
fn second_resolution_of_each_stage_is_a_shared_hit() {
    let application = app();
    let load = workload();
    let engine = Engine::new(SystemConfig::new()).unwrap();

    // First session computes every stage by running the full search.
    let first = engine.session(&application, &load);
    let outcome_first = Partitioner::new(&first).unwrap().run().unwrap();
    let after_first = first.stats();
    assert!(!after_first.prepare_shared, "first session computes");
    assert!(!after_first.baseline_shared);
    assert!(after_first.schedule_cache_misses > 0, "cold cache misses");
    assert_eq!(after_first.replays, 1, "one verification, one replay");

    // Second session on the same engine: every stage artifact is
    // served from the pools.
    let second = engine.session(&application, &load);
    assert_eq!(second.stats(), SessionStats::default(), "opening is free");

    let prepared_first = first.prepared_arc().unwrap();
    let prepared_second = second.prepared_arc().unwrap();
    assert!(
        Arc::ptr_eq(&prepared_first, &prepared_second),
        "one PreparedApp instance serves both sessions"
    );
    second.baseline().unwrap();
    let outcome_second = Partitioner::new(&second).unwrap().run().unwrap();
    let after_second = second.stats();

    assert!(after_second.prepare_shared, "second prepare is a hit");
    assert!(after_second.baseline_shared, "second baseline is a hit");
    assert_lookup_cheap(
        "prepare",
        after_second.prepare_nanos,
        after_first.prepare_nanos,
    );
    assert_lookup_cheap(
        "baseline",
        after_second.baseline_nanos,
        after_first.baseline_nanos,
    );

    // The schedule cache is shared, so the second search adds hits but
    // not a single new miss: every schedule was already memoized.
    assert_eq!(
        after_second.schedule_cache_misses, after_first.schedule_cache_misses,
        "warm search must not recompute any schedule"
    );
    assert!(
        after_second.schedule_cache_hits > after_first.schedule_cache_hits,
        "warm search is served from the shared cache"
    );

    // Same for verification: the replay memo already holds the winning
    // hardware set, so no second replay runs.
    assert_eq!(after_second.replays, 1, "no re-replay on the warm path");
    assert!(
        after_second.replay_hits > after_first.replay_hits,
        "warm verification is served from the replay memo"
    );

    // And the served artifacts decide identically.
    assert_eq!(outcome_first.initial, outcome_second.initial);
    assert_eq!(outcome_first.best, outcome_second.best);
}

#[test]
fn stats_fill_in_stage_order() {
    let application = app();
    let load = workload();
    let engine = Engine::new(SystemConfig::new()).unwrap();
    let session = engine.session(&application, &load);

    assert_eq!(session.stats(), SessionStats::default());

    session.prepared().unwrap();
    let after_prepare = session.stats();
    assert!(after_prepare.prepare_nanos > 0);
    assert_eq!(after_prepare.baseline_nanos, 0, "baseline still lazy");
    assert_eq!(after_prepare.schedule_cache_misses, 0);

    session.baseline().unwrap();
    let after_baseline = session.stats();
    assert!(after_baseline.baseline_nanos > 0);
    assert_eq!(
        after_baseline.schedule_cache_hits + after_baseline.schedule_cache_misses,
        0,
        "no schedule work before the search"
    );
}

#[test]
fn flow_and_direct_engine_report_identical_counters() {
    // `DesignFlow` is a thin wrapper over a fresh Engine + session;
    // the search statistics — including the cache counters — must be
    // bit-identical to driving the engine directly from cold.
    let flow_outcome = DesignFlow::new()
        .run_source(SRC, workload())
        .unwrap()
        .outcome;

    let application = app();
    let load = workload();
    let engine = Engine::new(SystemConfig::new()).unwrap();
    let session = engine.session(&application, &load);
    let direct_outcome = Partitioner::new(&session).unwrap().run().unwrap();

    assert_eq!(flow_outcome, direct_outcome);
}

#[test]
fn explore_agrees_with_flow_on_every_metric() {
    // A single-configuration exploration and a flow run are the same
    // computation through different entry points.
    let flow = DesignFlow::new().run_source(SRC, workload()).unwrap();
    let (_, detail) = flow.outcome.best.as_ref().expect("a partition is found");

    let application = app();
    let load = workload();
    let configs = vec![("paper".to_owned(), SystemConfig::new())];
    let ex = explore(&application, &load, &configs).unwrap();
    assert_eq!(ex.points.len(), 2, "initial + one configuration");

    let initial = &ex.points[0];
    assert!(initial.is_initial);
    assert_eq!(initial.energy, flow.outcome.initial.total_energy());
    assert_eq!(initial.cycles, flow.outcome.initial.total_cycles());

    let point = &ex.points[1];
    assert_eq!(point.energy, detail.metrics.total_energy());
    assert_eq!(point.cycles, detail.metrics.total_cycles());
    assert_eq!(point.geq, detail.metrics.geq);
}

#[test]
fn empty_resource_sets_are_rejected_everywhere() {
    let empty = SystemConfig::new().with_resource_sets(vec![]);

    let engine_err = Engine::new(empty.clone()).unwrap_err();
    assert!(matches!(engine_err, CorepartError::Config { .. }));
    assert!(
        engine_err.to_string().contains("at least one resource set"),
        "got: {engine_err}"
    );

    let flow_err = DesignFlow::with_config(empty.clone())
        .run_source(SRC, workload())
        .unwrap_err();
    assert!(matches!(flow_err, CorepartError::Config { .. }));

    let application = app();
    let load = workload();
    let configs = vec![("empty".to_owned(), empty)];
    let explore_err = explore(&application, &load, &configs).unwrap_err();
    assert!(matches!(explore_err, CorepartError::Config { .. }));
}

#[test]
fn out_of_range_resource_set_is_a_typed_config_error() {
    let config = SystemConfig::new();
    let sets = config.resource_sets.len();
    assert!(sets > 0);
    let err = config.resource_set(sets + 41).unwrap_err();
    assert!(matches!(err, CorepartError::Config { .. }));
    let message = err.to_string();
    assert!(
        message.contains(&format!("no resource set at index {}", sets + 41)),
        "got: {message}"
    );
    assert!(
        message.contains(&format!("{sets} sets")),
        "the error must state how many sets exist: {message}"
    );
}
