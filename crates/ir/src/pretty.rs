//! Pretty-printer for the behavioral AST.
//!
//! Emits source text that re-parses to an equivalent program — the
//! round-trip property is enforced by the property tests in this
//! module. Useful for dumping programmatically built ASTs, for
//! normalizing user sources, and as a debugging aid when lowering
//! misbehaves.

use std::fmt::Write as _;

use crate::ast::{Expr, LValue, Program, Stmt};
use crate::op::{BinOp, UnOp};

/// Renders a whole program as parseable source text.
pub fn print_program(prog: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "app {};", prog.name);
    for c in &prog.consts {
        let _ = writeln!(out, "const {} = {};", c.name, c.value);
    }
    for g in &prog.globals {
        let _ = writeln!(out, "var {} = {};", g.name, g.init);
    }
    for a in &prog.arrays {
        let _ = writeln!(out, "var {}[{}];", a.name, a.len);
    }
    for f in &prog.funcs {
        let _ = writeln!(out, "func {}({}) {{", f.name, f.params.join(", "));
        for s in &f.body {
            print_stmt(&mut out, s, 1);
        }
        let _ = writeln!(out, "}}");
    }
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_stmt(out: &mut String, stmt: &Stmt, level: usize) {
    indent(out, level);
    match stmt {
        Stmt::VarDecl { name, init, .. } => {
            let _ = writeln!(out, "var {name} = {};", print_expr(init));
        }
        Stmt::Assign { target, value, .. } => {
            let t = match target {
                LValue::Var(n) => n.clone(),
                LValue::Index(n, idx) => format!("{n}[{}]", print_expr(idx)),
            };
            let _ = writeln!(out, "{t} = {};", print_expr(value));
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            let _ = writeln!(out, "if ({}) {{", print_expr(cond));
            for s in then_body {
                print_stmt(out, s, level + 1);
            }
            if else_body.is_empty() {
                indent(out, level);
                let _ = writeln!(out, "}}");
            } else {
                indent(out, level);
                let _ = writeln!(out, "}} else {{");
                for s in else_body {
                    print_stmt(out, s, level + 1);
                }
                indent(out, level);
                let _ = writeln!(out, "}}");
            }
        }
        Stmt::While { cond, body, .. } => {
            let _ = writeln!(out, "while ({}) {{", print_expr(cond));
            for s in body {
                print_stmt(out, s, level + 1);
            }
            indent(out, level);
            let _ = writeln!(out, "}}");
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            let init_s = print_simple_stmt(init);
            let step_s = print_simple_stmt(step);
            let _ = writeln!(out, "for ({init_s}; {}; {step_s}) {{", print_expr(cond));
            for s in body {
                print_stmt(out, s, level + 1);
            }
            indent(out, level);
            let _ = writeln!(out, "}}");
        }
        Stmt::Return { value, .. } => match value {
            Some(e) => {
                let _ = writeln!(out, "return {};", print_expr(e));
            }
            None => {
                let _ = writeln!(out, "return;");
            }
        },
        Stmt::Expr { expr, .. } => {
            let _ = writeln!(out, "{};", print_expr(expr));
        }
    }
}

fn print_simple_stmt(stmt: &Stmt) -> String {
    match stmt {
        Stmt::VarDecl { name, init, .. } => format!("var {name} = {}", print_expr(init)),
        Stmt::Assign { target, value, .. } => {
            let t = match target {
                LValue::Var(n) => n.clone(),
                LValue::Index(n, idx) => format!("{n}[{}]", print_expr(idx)),
            };
            format!("{t} = {}", print_expr(value))
        }
        Stmt::Expr { expr, .. } => print_expr(expr),
        other => unreachable!("compound statement in for header: {other:?}"),
    }
}

/// Renders an expression, fully parenthesized (re-parses to an
/// identical tree regardless of operator precedence).
pub fn print_expr(expr: &Expr) -> String {
    match expr {
        Expr::Int(v, _) => {
            if *v < 0 {
                // `-9223372036854775808` won't re-lex as a literal;
                // parenthesized negation of the positive magnitude is
                // safe for everything above i64::MIN (the parser folds
                // it back into a constant).
                format!("(0 - {})", (*v as i128).unsigned_abs())
            } else {
                v.to_string()
            }
        }
        Expr::Var(n, _) => n.clone(),
        Expr::Index(n, idx, _) => format!("{n}[{}]", print_expr(idx)),
        Expr::Unary(op, e, _) => {
            let o = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
                UnOp::BitNot => "~",
            };
            format!("({o}{})", print_expr(e))
        }
        Expr::Binary(op, l, r, _) => {
            let o = binop_token(*op);
            format!("({} {o} {})", print_expr(l), print_expr(r))
        }
        Expr::Call(n, args, _) => {
            let a: Vec<String> = args.iter().map(print_expr).collect();
            format!("{n}({})", a.join(", "))
        }
    }
}

fn binop_token(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use crate::lower::lower;
    use crate::parser::parse;
    use proptest::prelude::*;

    const SAMPLE: &str = r#"app sample;
        const K = 3;
        var g = 7;
        var buf[16];
        func helper(a, b) { return a * b + K; }
        func main() {
            for (var i = 0; i < 16; i = i + 1) {
                buf[i] = helper(i, g);
                if (buf[i] > 20) { buf[i] = 20; } else { buf[i] = buf[i] + 1; }
            }
            while (g > 0) { g = g - 1; }
            return buf[5];
        }"#;

    #[test]
    fn roundtrip_preserves_behaviour() {
        let p1 = parse(SAMPLE).unwrap();
        let printed = print_program(&p1);
        let p2 = parse(&printed).unwrap();
        // Compare observable behaviour, not ASTs (spans differ).
        let a1 = lower(&p1).unwrap();
        let a2 = lower(&p2).unwrap();
        let r1 = Interpreter::new(&a1).run(1_000_000).unwrap();
        let r2 = Interpreter::new(&a2).run(1_000_000).unwrap();
        assert_eq!(r1.return_value, r2.return_value);
        assert_eq!(r1.loads, r2.loads);
        assert_eq!(r1.stores, r2.stores);
    }

    #[test]
    fn double_print_is_fixpoint() {
        let p1 = parse(SAMPLE).unwrap();
        let s1 = print_program(&p1);
        let s2 = print_program(&parse(&s1).unwrap());
        assert_eq!(s1, s2, "printing must be a normal form");
    }

    #[test]
    fn negative_literals_roundtrip() {
        let p = parse("app t; func main() { var x = 0 - 5; return x * (0 - 3); }").unwrap();
        let printed = print_program(&p);
        let p2 = parse(&printed).unwrap();
        let r = Interpreter::new(&lower(&p2).unwrap()).run(1000).unwrap();
        assert_eq!(r.return_value, Some(15));
    }

    fn arb_expr_src() -> impl Strategy<Value = String> {
        let leaf = prop_oneof![
            Just("a".to_owned()),
            (-100i64..100).prop_map(|v| {
                if v < 0 {
                    format!("(0 - {})", -v)
                } else {
                    v.to_string()
                }
            }),
        ];
        leaf.prop_recursive(4, 32, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} + {r})")),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} * {r})")),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} ^ {r})")),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} < {r})")),
                inner.prop_map(|e| format!("(~{e})")),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// print(parse(e)) re-parses to the same runtime value.
        #[test]
        fn expr_roundtrip_behaviour(e in arb_expr_src(), a in -50i64..50) {
            let src = format!("app t; var g = {a}; func main() {{ var a = g; return {e}; }}");
            let p1 = parse(&src).expect("generated source parses");
            let printed = print_program(&p1);
            let p2 = parse(&printed).expect("printed source parses");
            let r1 = Interpreter::new(&lower(&p1).expect("lowers"))
                .run(1_000_000).expect("runs");
            let r2 = Interpreter::new(&lower(&p2).expect("lowers"))
                .run(1_000_000).expect("runs");
            prop_assert_eq!(r1.return_value, r2.return_value);
        }
    }
}
