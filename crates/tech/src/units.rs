//! Physical-quantity newtypes used throughout `corepart`.
//!
//! Energies, powers, times, cycle counts and hardware effort are all easy
//! to confuse when every one of them is a bare number. Following
//! C-NEWTYPE, each quantity gets its own type with only the physically
//! meaningful operations defined, so `Energy + Power` is a compile error
//! while `Power * Seconds -> Energy` works.
//!
//! ```
//! use corepart_tech::units::{Energy, Power, Seconds};
//!
//! let p = Power::from_milliwatts(120.0);
//! let t = Seconds::from_nanos(50.0);
//! let e: Energy = p * t;
//! assert!((e.joules() - 6.0e-9).abs() < 1e-18);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An amount of energy, stored in joules.
///
/// `Energy` is the central bookkeeping quantity of the library: every
/// simulator and analytical model reports its contribution as an
/// `Energy`, and the partitioner minimizes their sum.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from joules.
    pub fn from_joules(joules: f64) -> Self {
        Energy(joules)
    }

    /// Creates an energy from millijoules.
    pub fn from_millijoules(mj: f64) -> Self {
        Energy(mj * 1e-3)
    }

    /// Creates an energy from microjoules.
    pub fn from_microjoules(uj: f64) -> Self {
        Energy(uj * 1e-6)
    }

    /// Creates an energy from nanojoules.
    pub fn from_nanojoules(nj: f64) -> Self {
        Energy(nj * 1e-9)
    }

    /// Creates an energy from picojoules.
    pub fn from_picojoules(pj: f64) -> Self {
        Energy(pj * 1e-12)
    }

    /// Returns the value in joules.
    pub fn joules(self) -> f64 {
        self.0
    }

    /// Returns the value in millijoules.
    pub fn millijoules(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the value in microjoules.
    pub fn microjoules(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the value in nanojoules.
    pub fn nanojoules(self) -> f64 {
        self.0 * 1e9
    }

    /// Returns the value in picojoules.
    pub fn picojoules(self) -> f64 {
        self.0 * 1e12
    }

    /// Returns the larger of two energies.
    pub fn max(self, other: Energy) -> Energy {
        Energy(self.0.max(other.0))
    }

    /// Returns the smaller of two energies.
    pub fn min(self, other: Energy) -> Energy {
        Energy(self.0.min(other.0))
    }

    /// True when the energy is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Relative saving of `self` over a `baseline`, in percent.
    ///
    /// A positive result means `self` is *smaller* than the baseline,
    /// matching the paper's "Sav%" column sign convention (Table 1 prints
    /// savings as negative deltas; [`crate::units::Energy::percent_change`]
    /// gives that form).
    ///
    /// Returns `None` when the baseline is zero.
    pub fn percent_saving(self, baseline: Energy) -> Option<f64> {
        if baseline.0 == 0.0 {
            None
        } else {
            Some((baseline.0 - self.0) / baseline.0 * 100.0)
        }
    }

    /// Relative change of `self` versus a `baseline`, in percent
    /// (negative = reduction, the sign convention of the paper's
    /// "Sav%"/"Chg%" columns).
    ///
    /// Returns `None` when the baseline is zero.
    pub fn percent_change(self, baseline: Energy) -> Option<f64> {
        if baseline.0 == 0.0 {
            None
        } else {
            Some((self.0 - baseline.0) / baseline.0 * 100.0)
        }
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl SubAssign for Energy {
    fn sub_assign(&mut self, rhs: Energy) {
        self.0 -= rhs.0;
    }
}

impl Neg for Energy {
    type Output = Energy;
    fn neg(self) -> Energy {
        Energy(-self.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Mul<Energy> for f64 {
    type Output = Energy;
    fn mul(self, rhs: Energy) -> Energy {
        Energy(self * rhs.0)
    }
}

impl Mul<u64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: u64) -> Energy {
        Energy(self.0 * rhs as f64)
    }
}

impl Div<f64> for Energy {
    type Output = Energy;
    fn div(self, rhs: f64) -> Energy {
        Energy(self.0 / rhs)
    }
}

impl Div<Energy> for Energy {
    /// Dividing two energies yields a dimensionless ratio.
    type Output = f64;
    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Energy> for Energy {
    fn sum<I: Iterator<Item = &'a Energy>>(iter: I) -> Energy {
        iter.copied().sum()
    }
}

impl fmt::Display for Energy {
    /// Formats with an engineering prefix, mirroring the paper's tables
    /// (`mJ`, `µJ`, `nJ`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.0.abs();
        let (val, unit) = if a == 0.0 {
            (0.0, "J")
        } else if a >= 1.0 {
            (self.0, "J")
        } else if a >= 1e-3 {
            (self.0 * 1e3, "mJ")
        } else if a >= 1e-6 {
            (self.0 * 1e6, "µJ")
        } else if a >= 1e-9 {
            (self.0 * 1e9, "nJ")
        } else {
            (self.0 * 1e12, "pJ")
        };
        if let Some(prec) = f.precision() {
            write!(f, "{val:.prec$}{unit}")
        } else {
            write!(f, "{val:.3}{unit}")
        }
    }
}

/// Electrical power, stored in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Power(f64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// Creates a power from watts.
    pub fn from_watts(watts: f64) -> Self {
        Power(watts)
    }

    /// Creates a power from milliwatts.
    pub fn from_milliwatts(mw: f64) -> Self {
        Power(mw * 1e-3)
    }

    /// Creates a power from microwatts.
    pub fn from_microwatts(uw: f64) -> Self {
        Power(uw * 1e-6)
    }

    /// Returns the value in watts.
    pub fn watts(self) -> f64 {
        self.0
    }

    /// Returns the value in milliwatts.
    pub fn milliwatts(self) -> f64 {
        self.0 * 1e3
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl AddAssign for Power {
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}

impl Sub for Power {
    type Output = Power;
    fn sub(self, rhs: Power) -> Power {
        Power(self.0 - rhs.0)
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Power {
        Power(self.0 * rhs)
    }
}

impl Mul<Power> for f64 {
    type Output = Power;
    fn mul(self, rhs: Power) -> Power {
        Power(self * rhs.0)
    }
}

impl Mul<Seconds> for Power {
    type Output = Energy;
    fn mul(self, rhs: Seconds) -> Energy {
        Energy(self.0 * rhs.0)
    }
}

impl Mul<Power> for Seconds {
    type Output = Energy;
    fn mul(self, rhs: Power) -> Energy {
        Energy(self.0 * rhs.0)
    }
}

impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        iter.fold(Power::ZERO, Add::add)
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.0.abs();
        let (val, unit) = if a == 0.0 {
            (0.0, "W")
        } else if a >= 1.0 {
            (self.0, "W")
        } else if a >= 1e-3 {
            (self.0 * 1e3, "mW")
        } else {
            (self.0 * 1e6, "µW")
        };
        write!(f, "{val:.3}{unit}")
    }
}

/// A duration, stored in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Seconds(f64);

impl Seconds {
    /// Zero duration.
    pub const ZERO: Seconds = Seconds(0.0);

    /// Creates a duration from seconds.
    pub fn from_secs(secs: f64) -> Self {
        Seconds(secs)
    }

    /// Creates a duration from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Seconds(ms * 1e-3)
    }

    /// Creates a duration from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Seconds(us * 1e-6)
    }

    /// Creates a duration from nanoseconds.
    pub fn from_nanos(ns: f64) -> Self {
        Seconds(ns * 1e-9)
    }

    /// Returns the value in seconds.
    pub fn secs(self) -> f64 {
        self.0
    }

    /// Returns the value in nanoseconds.
    pub fn nanos(self) -> f64 {
        self.0 * 1e9
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: f64) -> Seconds {
        Seconds(self.0 * rhs)
    }
}

impl Mul<u64> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: u64) -> Seconds {
        Seconds(self.0 * rhs as f64)
    }
}

impl Div<Seconds> for Seconds {
    type Output = f64;
    fn div(self, rhs: Seconds) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        iter.fold(Seconds::ZERO, Add::add)
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.0.abs();
        let (val, unit) = if a == 0.0 {
            (0.0, "s")
        } else if a >= 1.0 {
            (self.0, "s")
        } else if a >= 1e-3 {
            (self.0 * 1e3, "ms")
        } else if a >= 1e-6 {
            (self.0 * 1e6, "µs")
        } else {
            (self.0 * 1e9, "ns")
        };
        write!(f, "{val:.3}{unit}")
    }
}

/// A count of clock cycles.
///
/// Cycle counts are exact integers; converting to wall-clock time
/// requires a cycle period via [`Cycles::at_period`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    pub fn new(count: u64) -> Self {
        Cycles(count)
    }

    /// Returns the raw count.
    pub fn count(self) -> u64 {
        self.0
    }

    /// Converts to wall-clock time given a cycle period.
    pub fn at_period(self, period: Seconds) -> Seconds {
        period * self.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Relative change versus `baseline` in percent (negative = fewer
    /// cycles), matching the paper's "Chg%" column.
    ///
    /// Returns `None` when the baseline is zero.
    pub fn percent_change(self, baseline: Cycles) -> Option<f64> {
        if baseline.0 == 0 {
            None
        } else {
            Some((self.0 as f64 - baseline.0 as f64) / baseline.0 as f64 * 100.0)
        }
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl From<u64> for Cycles {
    fn from(count: u64) -> Cycles {
        Cycles(count)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Thousands separators, matching the paper's "5,167,958" style.
        let s = self.0.to_string();
        let bytes = s.as_bytes();
        let mut out = String::with_capacity(s.len() + s.len() / 3);
        for (i, b) in bytes.iter().enumerate() {
            if i > 0 && (bytes.len() - i).is_multiple_of(3) {
                out.push(',');
            }
            out.push(*b as char);
        }
        f.write_str(&out)
    }
}

/// Hardware effort in gate equivalents ("cells" in the paper).
///
/// The paper reports ASIC-core overheads of "less than 16k cells"; this
/// type carries those counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GateEq(u64);

impl GateEq {
    /// Zero gate equivalents.
    pub const ZERO: GateEq = GateEq(0);

    /// Creates a gate-equivalent count.
    pub fn new(cells: u64) -> Self {
        GateEq(cells)
    }

    /// Returns the raw cell count.
    pub fn cells(self) -> u64 {
        self.0
    }

    /// Ratio of this effort to a normalization base, dimensionless.
    ///
    /// Returns `None` when `base` is zero.
    pub fn ratio(self, base: GateEq) -> Option<f64> {
        if base.0 == 0 {
            None
        } else {
            Some(self.0 as f64 / base.0 as f64)
        }
    }
}

impl Add for GateEq {
    type Output = GateEq;
    fn add(self, rhs: GateEq) -> GateEq {
        GateEq(self.0 + rhs.0)
    }
}

impl AddAssign for GateEq {
    fn add_assign(&mut self, rhs: GateEq) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for GateEq {
    type Output = GateEq;
    fn mul(self, rhs: u64) -> GateEq {
        GateEq(self.0 * rhs)
    }
}

impl Sum for GateEq {
    fn sum<I: Iterator<Item = GateEq>>(iter: I) -> GateEq {
        iter.fold(GateEq::ZERO, Add::add)
    }
}

impl From<u64> for GateEq {
    fn from(cells: u64) -> GateEq {
        GateEq(cells)
    }
}

impl fmt::Display for GateEq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1000 {
            write!(f, "{:.1}k cells", self.0 as f64 / 1000.0)
        } else {
            write!(f, "{} cells", self.0)
        }
    }
}

/// A clock frequency, stored in hertz.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Frequency(f64);

impl Frequency {
    /// Creates a frequency from hertz.
    pub fn from_hertz(hz: f64) -> Self {
        Frequency(hz)
    }

    /// Creates a frequency from megahertz.
    pub fn from_megahertz(mhz: f64) -> Self {
        Frequency(mhz * 1e6)
    }

    /// Returns the value in hertz.
    pub fn hertz(self) -> f64 {
        self.0
    }

    /// Returns the value in megahertz.
    pub fn megahertz(self) -> f64 {
        self.0 / 1e6
    }

    /// The period of one clock cycle at this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    pub fn period(self) -> Seconds {
        assert!(self.0 > 0.0, "period of a zero frequency is undefined");
        Seconds::from_secs(1.0 / self.0)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.1}MHz", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.1}kHz", self.0 / 1e3)
        } else {
            write!(f, "{:.1}Hz", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_constructors_round_trip() {
        assert_eq!(Energy::from_millijoules(1.0).joules(), 1e-3);
        assert_eq!(Energy::from_microjoules(1.0).joules(), 1e-6);
        assert_eq!(Energy::from_nanojoules(1.0).joules(), 1e-9);
        assert_eq!(Energy::from_picojoules(1.0).joules(), 1e-12);
        assert!((Energy::from_joules(2.5).millijoules() - 2500.0).abs() < 1e-9);
    }

    #[test]
    fn energy_arithmetic() {
        let a = Energy::from_joules(2.0);
        let b = Energy::from_joules(0.5);
        assert_eq!((a + b).joules(), 2.5);
        assert_eq!((a - b).joules(), 1.5);
        assert_eq!((a * 3.0).joules(), 6.0);
        assert_eq!((a / 2.0).joules(), 1.0);
        assert_eq!(a / b, 4.0);
        assert_eq!((-a).joules(), -2.0);
        let mut c = a;
        c += b;
        assert_eq!(c.joules(), 2.5);
        c -= b;
        assert_eq!(c.joules(), 2.0);
    }

    #[test]
    fn energy_sum_over_iterator() {
        let total: Energy = (1..=4).map(|i| Energy::from_joules(i as f64)).sum();
        assert_eq!(total.joules(), 10.0);
        let v = [Energy::from_joules(1.0), Energy::from_joules(2.0)];
        let total_ref: Energy = v.iter().sum();
        assert_eq!(total_ref.joules(), 3.0);
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Power::from_watts(2.0) * Seconds::from_secs(3.0);
        assert_eq!(e.joules(), 6.0);
        let e2 = Seconds::from_secs(3.0) * Power::from_watts(2.0);
        assert_eq!(e2.joules(), 6.0);
    }

    #[test]
    fn percent_saving_and_change() {
        let base = Energy::from_joules(10.0);
        let part = Energy::from_joules(3.5);
        assert!((part.percent_saving(base).unwrap() - 65.0).abs() < 1e-9);
        assert!((part.percent_change(base).unwrap() + 65.0).abs() < 1e-9);
        assert_eq!(part.percent_saving(Energy::ZERO), None);
    }

    #[test]
    fn energy_display_engineering_prefixes() {
        assert_eq!(format!("{}", Energy::from_millijoules(44.79)), "44.790mJ");
        assert_eq!(format!("{}", Energy::from_microjoules(116.93)), "116.930µJ");
        assert_eq!(format!("{}", Energy::from_nanojoules(12.0)), "12.000nJ");
        assert_eq!(format!("{}", Energy::ZERO), "0.000J");
        assert_eq!(format!("{:.1}", Energy::from_millijoules(44.79)), "44.8mJ");
    }

    #[test]
    fn cycles_display_thousands_separators() {
        assert_eq!(format!("{}", Cycles::new(5_167_958)), "5,167,958");
        assert_eq!(format!("{}", Cycles::new(154)), "154");
        assert_eq!(format!("{}", Cycles::new(1_000)), "1,000");
        assert_eq!(format!("{}", Cycles::new(0)), "0");
    }

    #[test]
    fn cycles_arithmetic_and_time() {
        let c = Cycles::new(100) + Cycles::new(50);
        assert_eq!(c.count(), 150);
        assert_eq!((c - Cycles::new(50)).count(), 100);
        assert_eq!((c * 2).count(), 300);
        assert_eq!(
            Cycles::new(10).saturating_sub(Cycles::new(20)),
            Cycles::ZERO
        );
        let t = Cycles::new(1000).at_period(Seconds::from_nanos(25.0));
        assert!((t.nanos() - 25_000.0).abs() < 1e-6);
    }

    #[test]
    fn cycles_percent_change_matches_paper_convention() {
        // 3d: 39,712 -> 32,843 is -17.29%
        let chg = Cycles::new(32_843)
            .percent_change(Cycles::new(39_712))
            .unwrap();
        assert!((chg + 17.29).abs() < 0.01, "chg = {chg}");
        assert_eq!(Cycles::new(5).percent_change(Cycles::ZERO), None);
    }

    #[test]
    fn gate_eq_display() {
        assert_eq!(format!("{}", GateEq::new(15_900)), "15.9k cells");
        assert_eq!(format!("{}", GateEq::new(640)), "640 cells");
    }

    #[test]
    fn gate_eq_ratio() {
        assert_eq!(GateEq::new(500).ratio(GateEq::new(1000)), Some(0.5));
        assert_eq!(GateEq::new(500).ratio(GateEq::ZERO), None);
    }

    #[test]
    fn frequency_period() {
        let f = Frequency::from_megahertz(40.0);
        assert!((f.period().nanos() - 25.0).abs() < 1e-9);
        assert_eq!(f.megahertz(), 40.0);
    }

    #[test]
    #[should_panic(expected = "zero frequency")]
    fn zero_frequency_period_panics() {
        let _ = Frequency::from_hertz(0.0).period();
    }

    #[test]
    fn display_power_and_seconds() {
        assert_eq!(format!("{}", Power::from_milliwatts(250.0)), "250.000mW");
        assert_eq!(format!("{}", Seconds::from_micros(12.5)), "12.500µs");
        assert_eq!(format!("{}", Seconds::from_nanos(80.0)), "80.000ns");
    }
}
