//! Ablation **A5** — comparison against performance-driven
//! partitioning, plus the reproducible perf baseline for the search
//! engine itself.
//!
//! §2 positions the paper against classic hardware/software partitioners
//! whose "objective is to meet performance constraints while keeping
//! the system cost as low as possible. But none of them provide power
//! related optimization". This experiment runs both objectives on every
//! application: the speedup-greedy baseline (hardware budget 20 k
//! cells) and our energy-driven partitioner, then compares energy and
//! cycles side by side.
//!
//! On top of the A5 table, the binary times an 8-point
//! hardware-weight sweep on `mpg` and `engine` two ways — the seed's
//! sequential path (fresh preparation, baseline simulation and
//! schedule cache per configuration, one thread) against the shared,
//! parallel [`explore`] engine — checks the design points are
//! bit-identical, and writes everything to `BENCH_partition.json`.
//!
//! ```text
//! cargo run --release -p corepart-bench --bin baseline_perf
//! ```

use std::time::Instant;

use corepart::baselines::performance_partition;
use corepart::explore::{explore, hardware_weight_sweep, DesignPoint};
use corepart::json::outcome_to_json;
use corepart::parallel::resolve_threads;
use corepart::partition::Partitioner;
use corepart::prepare::{prepare, Workload};
use corepart::system::SystemConfig;
use corepart_bench::SEED;
use corepart_tech::units::GateEq;
use corepart_workloads::{all, by_name};

/// The seed's exploration path: every configuration prepares,
/// simulates and schedules from scratch, one after the other. Kept
/// here as the reference the parallel engine is measured against; the
/// point-assembly mirrors [`explore`] so the outputs are comparable
/// verbatim.
fn sequential_sweep(
    w: &corepart_workloads::PaperWorkload,
    configs: &[(String, SystemConfig)],
) -> Vec<DesignPoint> {
    let workload = Workload::from_arrays(w.arrays(SEED));
    let mut outcomes = Vec::with_capacity(configs.len());
    for (_, config) in configs {
        let app = w.app().expect("bundled workload lowers");
        let prepared = prepare(app, workload.clone(), config).expect("bundled workload prepares");
        let outcome = Partitioner::new(&prepared, config)
            .expect("initial run")
            .run()
            .expect("search");
        outcomes.push(outcome);
    }

    let first_initial = &outcomes[0].initial;
    let base = first_initial.total_energy();
    let mut points = Vec::with_capacity(configs.len() + 1);
    points.push(DesignPoint {
        label: "initial (all software)".into(),
        energy: first_initial.total_energy(),
        cycles: first_initial.total_cycles(),
        geq: GateEq::ZERO,
        saving_percent: 0.0,
        is_initial: true,
    });
    for ((label, _), outcome) in configs.iter().zip(&outcomes) {
        let (energy, cycles, geq) = match &outcome.best {
            Some((_, detail)) => (
                detail.metrics.total_energy(),
                detail.metrics.total_cycles(),
                detail.metrics.geq,
            ),
            None => (
                outcome.initial.total_energy(),
                outcome.initial.total_cycles(),
                GateEq::ZERO,
            ),
        };
        points.push(DesignPoint {
            label: label.clone(),
            energy,
            cycles,
            geq,
            saving_percent: energy.percent_saving(base).unwrap_or(0.0),
            is_initial: false,
        });
    }
    points
}

fn main() {
    println!("A5: energy-driven (ours) vs performance-driven (related work)\n");
    println!(
        "{:<8} {:<7} {:>10} {:>10} {:>12}",
        "app", "method", "saving%", "chg%", "HW cells"
    );
    let mut outcome_rows: Vec<String> = Vec::new();
    for w in all() {
        let config = SystemConfig::new();
        let app = w.app().expect("bundled workload lowers");
        let prepared = prepare(app, Workload::from_arrays(w.arrays(SEED)), &config)
            .expect("bundled workload prepares");
        let partitioner = Partitioner::new(&prepared, &config).expect("initial run");

        let ours = partitioner.run().expect("our search");
        let perf = performance_partition(&partitioner, &config, GateEq::new(20_000))
            .expect("perf baseline");
        outcome_rows.push(outcome_to_json(w.name, &ours));

        for (method, outcome) in [("energy", &ours), ("perf", &perf)] {
            match &outcome.best {
                Some((_, detail)) => println!(
                    "{:<8} {:<7} {:>10.1} {:>10.1} {:>12}",
                    w.name,
                    method,
                    outcome.energy_saving_percent().unwrap_or(0.0),
                    outcome.time_change_percent().unwrap_or(0.0),
                    detail.metrics.geq.cells()
                ),
                None => println!(
                    "{:<8} {:<7} {:>10} {:>10} {:>12}",
                    w.name, method, "--", "--", "--"
                ),
            }
        }
        println!();
    }
    println!(
        "Expected shape: the perf method matches or beats on cycles but\n\
         loses on energy wherever the fastest cluster is not the most\n\
         energy-efficient one (and it has no notion of cache/memory energy)."
    );

    // Engine perf baseline: 8-point hardware-weight sweep, seed's
    // sequential path vs the shared, parallel engine.
    let weights = [0.0, 0.1, 0.2, 0.5, 1.0, 2.0, 4.0, 16.0];
    let threads = resolve_threads(0);
    println!(
        "\nsweep timing ({} points, {} threads):\n",
        weights.len(),
        threads
    );
    println!(
        "{:<8} {:>12} {:>12} {:>9} {:>10}",
        "app", "seq ms", "engine ms", "speedup", "identical"
    );
    let mut sweep_rows: Vec<String> = Vec::new();
    for name in ["mpg", "engine"] {
        let w = by_name(name).expect("paper workload exists");
        let seq_configs = hardware_weight_sweep(&weights, &SystemConfig::new().with_threads(1));

        let seq_start = Instant::now();
        let seq_points = sequential_sweep(&w, &seq_configs);
        let seq_nanos = seq_start.elapsed().as_nanos();

        let app = w.app().expect("bundled workload lowers");
        let workload = Workload::from_arrays(w.arrays(SEED));
        let par_configs = hardware_weight_sweep(&weights, &SystemConfig::new());
        let par_start = Instant::now();
        let exploration = explore(&app, &workload, &par_configs).expect("sweep runs");
        let par_nanos = par_start.elapsed().as_nanos();

        let identical = seq_points == exploration.points;
        let speedup = seq_nanos as f64 / par_nanos.max(1) as f64;
        println!(
            "{:<8} {:>12.1} {:>12.1} {:>8.2}x {:>10}",
            name,
            seq_nanos as f64 / 1e6,
            par_nanos as f64 / 1e6,
            speedup,
            identical
        );
        sweep_rows.push(format!(
            concat!(
                "{{\"app\":\"{}\",\"points\":{},\"threads\":{},",
                "\"seq_nanos\":{},\"par_nanos\":{},\"speedup\":{:.4},",
                "\"identical\":{}}}"
            ),
            name,
            weights.len(),
            threads,
            seq_nanos,
            par_nanos,
            speedup,
            identical
        ));
        assert!(
            identical,
            "parallel sweep must reproduce the sequential points bit-for-bit"
        );
    }

    let json = format!(
        "{{\"seed\":{},\"threads\":{},\"workloads\":[{}],\"sweep\":[{}]}}\n",
        SEED,
        threads,
        outcome_rows.join(","),
        sweep_rows.join(",")
    );
    let path = "BENCH_partition.json";
    std::fs::write(path, &json).expect("write BENCH_partition.json");
    println!("\nwrote {path}");
}
