//! Systematic design-space exploration.
//!
//! §3.5 describes an interactive loop: "the designer will make use of
//! his/her interaction possibilities to provide the partitioning
//! algorithms with different parameters". This module automates that
//! loop: sweep any combination of knobs (resource sets, objective
//! balance, cache geometry), collect every verified design point, and
//! extract the energy/hardware/performance Pareto frontier a designer
//! would actually choose from.

use corepart_ir::cdfg::Application;
use corepart_tech::units::{Cycles, Energy, GateEq};

use crate::error::CorepartError;
use crate::partition::Partitioner;
use crate::prepare::{prepare, Workload};
use crate::system::SystemConfig;

/// One explored design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Human-readable description of the knob settings.
    pub label: String,
    /// Total system energy.
    pub energy: Energy,
    /// Total execution cycles.
    pub cycles: Cycles,
    /// Additional hardware.
    pub geq: GateEq,
    /// Energy saving vs the sweep's initial design, percent.
    pub saving_percent: f64,
    /// Whether this point is the all-software design.
    pub is_initial: bool,
}

impl DesignPoint {
    /// True when `self` dominates `other` (no worse on all three
    /// axes, strictly better on at least one).
    pub fn dominates(&self, other: &DesignPoint) -> bool {
        let le = self.energy.joules() <= other.energy.joules()
            && self.cycles <= other.cycles
            && self.geq <= other.geq;
        let lt = self.energy.joules() < other.energy.joules()
            || self.cycles < other.cycles
            || self.geq < other.geq;
        le && lt
    }
}

/// Results of one exploration sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Exploration {
    /// Every evaluated point (including the initial design).
    pub points: Vec<DesignPoint>,
}

impl Exploration {
    /// The Pareto-optimal subset over (energy, cycles, hardware).
    ///
    /// Coincident points (identical on all three axes) are reported
    /// once, keeping the first label.
    pub fn pareto_frontier(&self) -> Vec<&DesignPoint> {
        let mut frontier: Vec<&DesignPoint> = Vec::new();
        for p in self
            .points
            .iter()
            .filter(|p| !self.points.iter().any(|q| q.dominates(p)))
        {
            let coincident = frontier
                .iter()
                .any(|q| q.energy == p.energy && q.cycles == p.cycles && q.geq == p.geq);
            if !coincident {
                frontier.push(p);
            }
        }
        frontier
    }

    /// The minimum-energy point.
    pub fn min_energy(&self) -> Option<&DesignPoint> {
        self.points.iter().min_by(|a, b| {
            a.energy
                .joules()
                .partial_cmp(&b.energy.joules())
                .expect("finite energies")
        })
    }

    /// The minimum-cycles point.
    pub fn min_cycles(&self) -> Option<&DesignPoint> {
        self.points.iter().min_by_key(|p| p.cycles)
    }

    /// Renders the frontier as an aligned table.
    pub fn render_frontier(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>14} {:>12} {:>10} {:>9}\n",
            "design point", "energy", "cycles", "HW cells", "saving%"
        ));
        let mut frontier = self.pareto_frontier();
        frontier.sort_by(|a, b| {
            a.energy
                .joules()
                .partial_cmp(&b.energy.joules())
                .expect("finite energies")
        });
        for p in frontier {
            out.push_str(&format!(
                "{:<28} {:>14} {:>12} {:>10} {:>9.1}\n",
                p.label,
                format!("{}", p.energy),
                p.cycles.to_string(),
                p.geq.cells(),
                p.saving_percent,
            ));
        }
        out
    }
}

/// Explores an application over a family of configurations.
///
/// Each configuration is a `(label, SystemConfig)` pair; the sweep
/// re-prepares and re-partitions under each one, recording the chosen
/// design (or the initial design when no partition wins). The initial
/// design of the *first* configuration is included as the baseline
/// point.
///
/// # Errors
///
/// Propagates preparation/simulation failures; configurations whose
/// search finds nothing contribute their initial design instead.
pub fn explore<F>(
    app_source: F,
    workload: &Workload,
    configs: &[(String, SystemConfig)],
) -> Result<Exploration, CorepartError>
where
    F: Fn() -> Result<Application, CorepartError>,
{
    if configs.is_empty() {
        return Err(CorepartError::Config {
            message: "exploration needs at least one configuration".into(),
        });
    }
    let mut points = Vec::new();
    let mut baseline: Option<Energy> = None;

    for (label, config) in configs {
        let prepared = prepare(app_source()?, workload.clone(), config)?;
        let partitioner = Partitioner::new(&prepared, config)?;
        let initial = partitioner.initial().clone();
        let base = *baseline.get_or_insert_with(|| initial.total_energy());
        if points.is_empty() {
            points.push(DesignPoint {
                label: "initial (all software)".into(),
                energy: initial.total_energy(),
                cycles: initial.total_cycles(),
                geq: GateEq::ZERO,
                saving_percent: 0.0,
                is_initial: true,
            });
        }
        let outcome = partitioner.run()?;
        let (energy, cycles, geq) = match &outcome.best {
            Some((_, detail)) => (
                detail.metrics.total_energy(),
                detail.metrics.total_cycles(),
                detail.metrics.geq,
            ),
            None => (initial.total_energy(), initial.total_cycles(), GateEq::ZERO),
        };
        points.push(DesignPoint {
            label: label.clone(),
            energy,
            cycles,
            geq,
            saving_percent: energy.percent_saving(base).unwrap_or(0.0),
            is_initial: false,
        });
    }
    Ok(Exploration { points })
}

/// Convenience: the standard sweep over objective hardware weights.
pub fn hardware_weight_sweep(weights: &[f64], base: &SystemConfig) -> Vec<(String, SystemConfig)> {
    weights
        .iter()
        .map(|&g| {
            (
                format!("G = {g}"),
                base.clone().with_factors(base.factor_f, g),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use corepart_ir::lower::lower;
    use corepart_ir::parser::parse;

    const SRC: &str = r#"app explore; var x[96]; var y[96];
        func main() {
            for (var i = 1; i < 95; i = i + 1) {
                y[i] = x[i] * 7 + (x[i - 1] >> 2);
            }
            return y[40];
        }"#;

    fn app() -> Result<Application, CorepartError> {
        Ok(lower(&parse(SRC)?)?)
    }

    fn workload() -> Workload {
        Workload::from_arrays([("x", (0..96).collect::<Vec<i64>>())])
    }

    #[test]
    fn sweep_produces_points_and_frontier() {
        let configs = hardware_weight_sweep(&[0.0, 0.2, 2.0], &SystemConfig::new());
        let ex = explore(app, &workload(), &configs).expect("sweep runs");
        // initial + 3 sweep points.
        assert_eq!(ex.points.len(), 4);
        let frontier = ex.pareto_frontier();
        assert!(!frontier.is_empty());
        // The minimum-energy point must be on the frontier.
        let min_e = ex.min_energy().expect("non-empty");
        assert!(frontier.iter().any(|p| p.label == min_e.label));
        // The initial point is dominated by a successful partition.
        assert!(ex
            .points
            .iter()
            .any(|p| !p.is_initial && p.energy < ex.points[0].energy));
        let text = ex.render_frontier();
        assert!(text.contains("design point"));
    }

    #[test]
    fn domination_is_strict_partial_order() {
        let a = DesignPoint {
            label: "a".into(),
            energy: Energy::from_microjoules(10.0),
            cycles: Cycles::new(100),
            geq: GateEq::new(0),
            saving_percent: 0.0,
            is_initial: false,
        };
        let b = DesignPoint {
            label: "b".into(),
            energy: Energy::from_microjoules(5.0),
            cycles: Cycles::new(100),
            geq: GateEq::new(0),
            saving_percent: 50.0,
            is_initial: false,
        };
        assert!(b.dominates(&a));
        assert!(!a.dominates(&b));
        assert!(!a.dominates(&a), "irreflexive");
        // Incomparable pair: trade energy for cycles.
        let c = DesignPoint {
            label: "c".into(),
            energy: Energy::from_microjoules(7.0),
            cycles: Cycles::new(50),
            geq: GateEq::new(500),
            saving_percent: 30.0,
            is_initial: false,
        };
        assert!(!b.dominates(&c) && !c.dominates(&b));
    }

    #[test]
    fn empty_config_list_rejected() {
        assert!(explore(app, &workload(), &[]).is_err());
    }

    #[test]
    fn min_accessors() {
        let configs = hardware_weight_sweep(&[0.2], &SystemConfig::new());
        let ex = explore(app, &workload(), &configs).expect("sweep runs");
        assert!(ex.min_energy().is_some());
        assert!(ex.min_cycles().is_some());
    }
}
