//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of `rand` it actually uses. The implementation is
//! **bit-exact** with `rand 0.8.5` + `rand_chacha 0.3.1` for that
//! slice — `StdRng::seed_from_u64`, integer `gen_range`, `gen_ratio`,
//! `shuffle`/`choose` — so every pinned golden value and every number
//! in EXPERIMENTS.md derived under the real crates stays valid:
//!
//! * `StdRng` is ChaCha12 with a 64-word `BlockRng` buffer, replicating
//!   `rand_core`'s `next_u32`/`next_u64` read pattern (including the
//!   straddling read at the buffer boundary).
//! * `seed_from_u64` is `rand_core`'s PCG32 seed expansion.
//! * Integer `gen_range` is the widening-multiply rejection sampler of
//!   `UniformInt::sample_single_inclusive`.
//! * `gen_ratio` is `Bernoulli::from_ratio` (fixed-point compare).
//! * `shuffle` is the reverse Fisher–Yates of `SliceRandom`.
//!
//! The golden-value regression tests in `corepart-workloads` double as
//! the compatibility vector: they were derived under the real crates
//! and still pass against this one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the PCG32 stream
    /// `rand_core 0.6` uses, then seeds the generator.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let bytes = x.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

mod chacha {
    /// The ChaCha12 block function with a 64-bit block counter and zero
    /// nonce — the `rand_chacha 0.3` keystream layout.
    pub(crate) struct ChaCha12 {
        key: [u32; 8],
        pub(crate) counter: u64,
    }

    const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    #[inline(always)]
    fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    impl ChaCha12 {
        pub(crate) fn new(seed: &[u8; 32]) -> Self {
            let mut key = [0u32; 8];
            for (i, k) in key.iter_mut().enumerate() {
                *k = u32::from_le_bytes([
                    seed[4 * i],
                    seed[4 * i + 1],
                    seed[4 * i + 2],
                    seed[4 * i + 3],
                ]);
            }
            ChaCha12 { key, counter: 0 }
        }

        /// One 16-word keystream block at `counter`.
        pub(crate) fn block(&self, counter: u64, out: &mut [u32]) {
            let mut init = [0u32; 16];
            init[..4].copy_from_slice(&CONSTANTS);
            init[4..12].copy_from_slice(&self.key);
            init[12] = counter as u32;
            init[13] = (counter >> 32) as u32;
            // Words 14-15: zero nonce/stream.
            let mut s = init;
            for _ in 0..6 {
                quarter(&mut s, 0, 4, 8, 12);
                quarter(&mut s, 1, 5, 9, 13);
                quarter(&mut s, 2, 6, 10, 14);
                quarter(&mut s, 3, 7, 11, 15);
                quarter(&mut s, 0, 5, 10, 15);
                quarter(&mut s, 1, 6, 11, 12);
                quarter(&mut s, 2, 7, 8, 13);
                quarter(&mut s, 3, 4, 9, 14);
            }
            for (o, (w, i)) in out.iter_mut().zip(s.iter().zip(init.iter())) {
                *o = w.wrapping_add(*i);
            }
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::chacha::ChaCha12;
    use super::{RngCore, SeedableRng};

    /// The standard generator: ChaCha12, as in `rand 0.8`.
    ///
    /// Reproduces `rand_core`'s `BlockRng` buffering: a 64-word buffer
    /// (four ChaCha blocks) refilled at once, with `next_u64` reading
    /// two consecutive words — including the split read when only one
    /// word remains in the buffer.
    pub struct StdRng {
        core: ChaCha12,
        buf: [u32; 64],
        index: usize,
    }

    impl StdRng {
        fn generate(&mut self) {
            for b in 0..4u64 {
                let start = (b as usize) * 16;
                self.core
                    .block(self.core.counter + b, &mut self.buf[start..start + 16]);
            }
            self.core.counter += 4;
        }

        fn generate_and_set(&mut self, index: usize) {
            self.generate();
            self.index = index;
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            StdRng {
                core: ChaCha12::new(&seed),
                buf: [0u32; 64],
                index: 64, // buffer empty: first use refills
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= self.buf.len() {
                self.generate_and_set(0);
            }
            let value = self.buf[self.index];
            self.index += 1;
            value
        }

        fn next_u64(&mut self) -> u64 {
            let read_u64 =
                |buf: &[u32], index: usize| u64::from(buf[index + 1]) << 32 | u64::from(buf[index]);
            let len = self.buf.len();
            let index = self.index;
            if index < len - 1 {
                self.index += 2;
                read_u64(&self.buf, index)
            } else if index >= len {
                self.generate_and_set(2);
                read_u64(&self.buf, 0)
            } else {
                // One word left: it becomes the low half, the first word
                // of the fresh buffer the high half.
                let x = u64::from(self.buf[len - 1]);
                self.generate_and_set(1);
                let y = u64::from(self.buf[0]);
                (y << 32) | x
            }
        }
    }
}

/// Distributions over random words.
pub mod distributions {
    use super::RngCore;

    /// Types that map generator output to values.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" full-range distribution of each primitive.
    pub struct Standard;

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }
    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }
    impl Distribution<i32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i32 {
            rng.next_u32() as i32
        }
    }
    impl Distribution<i64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
            rng.next_u64() as i64
        }
    }
    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }
    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            (rng.next_u32() as i32) < 0
        }
    }
    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A boolean distribution with fixed-point probability, matching
    /// `rand 0.8`'s `Bernoulli`.
    pub struct Bernoulli {
        p_int: u64,
    }

    const ALWAYS_TRUE: u64 = u64::MAX;
    const SCALE: f64 = 2.0 * (1u64 << 63) as f64;

    impl Bernoulli {
        /// A distribution returning `true` with probability `p`.
        ///
        /// # Panics
        ///
        /// When `p` is outside `[0, 1]`.
        pub fn new(p: f64) -> Bernoulli {
            if !(0.0..1.0).contains(&p) {
                assert!(p == 1.0, "Bernoulli probability out of range: {p}");
                return Bernoulli { p_int: ALWAYS_TRUE };
            }
            Bernoulli {
                p_int: (p * SCALE) as u64,
            }
        }

        /// `true` with probability `numerator / denominator`.
        ///
        /// # Panics
        ///
        /// When `numerator > denominator`.
        pub fn from_ratio(numerator: u32, denominator: u32) -> Bernoulli {
            assert!(
                numerator <= denominator,
                "Bernoulli ratio {numerator}/{denominator} out of range"
            );
            if numerator == denominator {
                return Bernoulli { p_int: ALWAYS_TRUE };
            }
            let p_int = ((u64::from(numerator) << 32) / u64::from(denominator)) << 32;
            Bernoulli { p_int }
        }
    }

    impl Distribution<bool> for Bernoulli {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() < self.p_int
        }
    }
}

mod uniform {
    use super::RngCore;

    /// Types with a built-in uniform-range sampler.
    ///
    /// A single blanket `SampleRange` impl hangs off this trait (rather
    /// than one impl per concrete range type) so integer literals in
    /// `gen_range(-2..3)` unify with the surrounding expression instead
    /// of falling back to `i32`, exactly as with the real crate.
    pub trait SampleUniform: Sized + Copy + PartialOrd {
        /// Samples uniformly from `low..=high`.
        fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R)
            -> Self;
        /// `v - 1`, to convert a half-open bound to an inclusive one.
        fn dec(v: Self) -> Self;
    }

    /// A range usable with [`crate::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Samples one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "gen_range: empty range");
            T::sample_single_inclusive(self.start, T::dec(self.end), rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = (*self.start(), *self.end());
            assert!(low <= high, "gen_range: empty range");
            T::sample_single_inclusive(low, high, rng)
        }
    }

    // `UniformInt::sample_single_inclusive` of rand 0.8.5: widening
    // multiply with the bitmask-free rejection zone.
    macro_rules! uniform_int_impl {
        ($ty:ty, $unsigned:ty, $sample:ident, $u_large:ty, $wide:ty) => {
            impl SampleUniform for $ty {
                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: $ty,
                    high: $ty,
                    rng: &mut R,
                ) -> $ty {
                    let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                    if range == 0 {
                        // The full type range.
                        return rng.$sample() as $ty;
                    }
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v: $u_large = rng.$sample() as $u_large;
                        let wide = (v as $wide) * (range as $wide);
                        let hi = (wide >> (<$u_large>::BITS)) as $u_large;
                        let lo = wide as $u_large;
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }

                fn dec(v: $ty) -> $ty {
                    v - 1
                }
            }
        };
    }

    uniform_int_impl!(i64, u64, next_u64, u64, u128);
    uniform_int_impl!(u64, u64, next_u64, u64, u128);
    uniform_int_impl!(i32, u32, next_u32, u32, u64);
    uniform_int_impl!(u32, u32, next_u32, u32, u64);
    // 64-bit platforms: usize takes the u64 path, as in rand 0.8.
    uniform_int_impl!(usize, usize, next_u64, u64, u128);
}

pub use uniform::{SampleRange, SampleUniform};

/// Convenience sampling methods, as on `rand::Rng`.
pub trait Rng: RngCore {
    /// A value from the type's full-range [`distributions::Standard`]
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// A uniform value from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.sample(distributions::Bernoulli::new(p))
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        self.sample(distributions::Bernoulli::from_ratio(numerator, denominator))
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers, as in `rand::seq`.
pub mod seq {
    use super::Rng;
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles in place (reverse Fisher–Yates, as in `rand 0.8`).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-120i64..120);
            assert!((-120..120).contains(&v));
            let u = rng.gen_range(0usize..=17);
            assert!(u <= 17);
        }
    }

    #[test]
    fn mixed_u32_u64_reads_straddle_buffer() {
        // Exercise the split read at the 64-word buffer boundary: 63
        // u32 reads leave one word, the next u64 must straddle.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..63 {
            rng.gen::<u32>();
        }
        let v = rng.gen::<u64>();
        let w = rng.gen::<u64>();
        assert_ne!(v, w);
    }

    #[test]
    fn gen_ratio_rate_roughly_matches() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..12_000).filter(|_| rng.gen_ratio(1, 12)).count();
        assert!((700..1300).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
