//! Error types of the IR crate.

use std::error::Error;
use std::fmt;

use crate::ast::Span;

/// Errors produced while parsing, lowering or interpreting a behavioral
/// description.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// Lexical error.
    Lex {
        /// Where it occurred.
        span: Span,
        /// What went wrong.
        message: String,
    },
    /// Syntax error.
    Parse {
        /// Where it occurred.
        span: Span,
        /// What went wrong.
        message: String,
    },
    /// Semantic error during lowering (undefined names, arity
    /// mismatches, recursion, …).
    Lower {
        /// Where it occurred (best effort).
        span: Span,
        /// What went wrong.
        message: String,
    },
    /// Runtime error in the profiling interpreter.
    Interp {
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Lex { span, message } => write!(f, "lex error at {span}: {message}"),
            IrError::Parse { span, message } => write!(f, "parse error at {span}: {message}"),
            IrError::Lower { span, message } => write!(f, "lowering error at {span}: {message}"),
            IrError::Interp { message } => write!(f, "interpreter error: {message}"),
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = IrError::Parse {
            span: Span { line: 4, col: 2 },
            message: "expected `;`".into(),
        };
        assert_eq!(e.to_string(), "parse error at 4:2: expected `;`");
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<IrError>();
    }
}
