//! The instruction-set simulator (ISS) of the µP core.
//!
//! This is the reconstruction of the paper's "instruction set simulator
//! tool … with the facility to calculate the energy consumption
//! depending on the instruction executed at a point in time" (§3.5,
//! Fig. 5 "Core Energy Estimation" block).
//!
//! One simulator serves both sides of a partition: it always executes
//! the *whole* program functionally (so control flow and data values
//! stay exact), but instructions belonging to blocks in
//! [`SimConfig::hw_blocks`] are **free** — they model work moved to the
//! ASIC core, so they consume no µP cycles/energy and emit no cache
//! traffic. Their shared-memory array accesses are tallied separately
//! (the ASIC reaches the memory directly over the bus, Fig. 2 a), and
//! entries into hardware regions are counted so the partitioner can
//! charge the µP↔ASIC communication of §3.3.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::error::Error;
use std::fmt;

use corepart_ir::cdfg::Application;
use corepart_ir::op::BlockId;
use corepart_tech::units::{Cycles, Energy};

use crate::codegen::{MachProgram, VarLoc, DATA_BASE, SLOT_BASE};
use crate::energy::EnergyTable;
use crate::isa::{InstClass, MachInst, Reg, RegImm};

/// Receiver of the µP core's memory reference stream (i-fetches plus
/// data reads/writes). Implemented by the cache hierarchy simulator.
pub trait MemSink {
    /// An instruction fetch from `addr`.
    fn ifetch(&mut self, addr: u32);
    /// A data read from `addr`.
    fn read(&mut self, addr: u32);
    /// A data write to `addr`.
    fn write(&mut self, addr: u32);

    /// Offers `count` consecutive word fetches (`addr`, `addr + 4`, …)
    /// as one batch. A sink accepts — returning `true` — only when it
    /// can prove the grouped delivery is observably identical to
    /// `count` interleaved [`MemSink::ifetch`] calls (a cache sink: all
    /// touched lines resident, so every fetch is a hit and no
    /// shared-accumulator event fires). On `false` the sink must be
    /// left untouched; the caller then delivers fetch by fetch.
    ///
    /// The default declines, so plain sinks keep the exact call
    /// sequence.
    fn ifetch_run_hits(&mut self, _addr: u32, _count: u32) -> bool {
        false
    }
}

/// A sink that drops all references (pure-core runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl MemSink for NullSink {
    fn ifetch(&mut self, _addr: u32) {}
    fn read(&mut self, _addr: u32) {}
    fn write(&mut self, _addr: u32) {}
    fn ifetch_run_hits(&mut self, _addr: u32, _count: u32) -> bool {
        // Dropping a batch is indistinguishable from dropping each.
        true
    }
}

/// Observer of the *executed* instruction stream, independent of any
/// hardware/software split: every pc in execution order (hardware- and
/// software-mapped alike) plus every load/store address. Used by
/// [`crate::trace::TraceBuilder`] to capture a reference trace.
pub trait ExecRecorder {
    /// Instruction at `pc` is about to execute.
    fn inst(&mut self, pc: u32);
    /// A load or store touched `addr` (slot and data space alike).
    fn data(&mut self, addr: u32);
}

/// A recorder that drops all events ([`Simulator::run`] uses it).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl ExecRecorder for NullRecorder {
    fn inst(&mut self, _pc: u32) {}
    fn data(&mut self, _addr: u32) {}
}

/// Simulation parameters.
#[derive(Debug, Clone, Default)]
pub struct SimConfig {
    /// Cycle budget; exceeding it aborts with
    /// [`SimError::CycleLimit`]. `0` means no limit.
    pub max_cycles: u64,
    /// IR blocks whose instructions execute on the ASIC core: free for
    /// the µP, tallied separately.
    pub hw_blocks: HashSet<BlockId>,
    /// When non-zero, capture the first `trace_limit` executed µP
    /// instructions into [`RunStats::trace`] (a debugging aid; hardware
    /// -mapped instructions are not traced).
    pub trace_limit: usize,
}

impl SimConfig {
    /// Config for an initial (unpartitioned) run with a cycle budget.
    pub fn initial(max_cycles: u64) -> Self {
        SimConfig {
            max_cycles,
            hw_blocks: HashSet::new(),
            trace_limit: 0,
        }
    }

    /// Config for a partitioned run.
    pub fn partitioned(max_cycles: u64, hw_blocks: HashSet<BlockId>) -> Self {
        SimConfig {
            max_cycles,
            hw_blocks,
            trace_limit: 0,
        }
    }

    /// Returns a copy that captures an execution trace.
    pub fn with_trace(mut self, limit: usize) -> Self {
        self.trace_limit = limit;
        self
    }
}

/// One traced µP instruction execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Program counter (instruction index).
    pub pc: u32,
    /// The executed instruction.
    pub inst: MachInst,
    /// µP cycle count *after* this instruction.
    pub cycles: u64,
}

/// Statistics of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// µP core cycles (hardware-mapped instructions excluded).
    pub cycles: Cycles,
    /// µP core energy (base + inter-instruction overhead).
    pub energy: Energy,
    /// Executed µP instructions per class.
    pub inst_counts: BTreeMap<InstClass, u64>,
    /// µP cycles per class (latency-weighted).
    pub class_cycles: BTreeMap<InstClass, u64>,
    /// µP cycles per class, attributed to each IR block (indexed
    /// `[block][class as usize via InstClass::ALL order]`).
    pub block_class_cycles: Vec<[u64; 8]>,
    /// Inter-instruction class switches (circuit-state overhead events).
    pub class_switches: u64,
    /// Entry count of every IR block (functional, includes HW blocks).
    pub block_counts: Vec<u64>,
    /// µP cycles attributed to each IR block.
    pub block_cycles: Vec<u64>,
    /// µP energy attributed to each IR block.
    pub block_energy: Vec<Energy>,
    /// Entries into each hardware block from software (or start).
    pub hw_block_entries: HashMap<BlockId, u64>,
    /// Shared-memory loads executed inside hardware blocks.
    pub hw_loads: u64,
    /// Shared-memory stores executed inside hardware blocks.
    pub hw_stores: u64,
    /// µP-side data reads sent to the cache hierarchy.
    pub sw_reads: u64,
    /// µP-side data writes sent to the cache hierarchy.
    pub sw_writes: u64,
    /// µP-side instruction fetches.
    pub sw_ifetches: u64,
    /// `main`'s return value (register `r1` at `halt`).
    pub return_value: i64,
    /// Captured execution trace (first [`SimConfig::trace_limit`] µP
    /// instructions; empty when tracing is off).
    pub trace: Vec<TraceEntry>,
}

impl RunStats {
    /// Owned heap footprint of the per-block and per-class tables, in
    /// bytes. Map entries are charged a fixed per-node estimate; the
    /// point is stable byte accounting for store eviction, not
    /// allocator-exact numbers.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        const MAP_NODE_EST: usize = 48;
        size_of::<Self>()
            + (self.inst_counts.len() + self.class_cycles.len() + self.hw_block_entries.len())
                * MAP_NODE_EST
            + self.block_class_cycles.capacity() * size_of::<[u64; 8]>()
            + self.block_counts.capacity() * size_of::<u64>()
            + self.block_cycles.capacity() * size_of::<u64>()
            + self.block_energy.capacity() * size_of::<Energy>()
            + self.trace.capacity() * size_of::<TraceEntry>()
    }

    /// Total µP cycles attributed to a set of blocks.
    pub fn cycles_of(&self, blocks: &[BlockId]) -> Cycles {
        Cycles::new(
            blocks
                .iter()
                .map(|&b| self.block_cycles[b.0 as usize])
                .sum(),
        )
    }

    /// Total µP energy attributed to a set of blocks.
    pub fn energy_of(&self, blocks: &[BlockId]) -> Energy {
        blocks
            .iter()
            .map(|&b| self.block_energy[b.0 as usize])
            .sum()
    }
}

/// Errors of the instruction-set simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The configured cycle limit was exceeded.
    CycleLimit {
        /// The limit that was hit.
        limit: u64,
    },
    /// A data access touched an unmapped or misaligned address.
    BadAccess {
        /// The offending byte address.
        addr: u32,
        /// Program counter of the access.
        pc: u32,
    },
    /// The program counter left the code region.
    BadPc {
        /// The offending pc.
        pc: u32,
    },
    /// An unknown array name was passed to
    /// [`Simulator::set_array`]/[`Simulator::array`].
    UnknownArray {
        /// The requested name.
        name: String,
    },
    /// Input data longer than the target array.
    DataTooLong {
        /// The array name.
        name: String,
        /// Its capacity in words.
        capacity: u32,
        /// The data length provided.
        given: usize,
    },
    /// A reference trace failed an integrity check: its stored
    /// fingerprint does not match its streams, or replay decoded a
    /// different number of events than the capture recorded
    /// (truncated or corrupted segments). Replay refuses to produce
    /// statistics from such a trace rather than silently diverge.
    TraceCorrupt {
        /// What the integrity check found.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CycleLimit { limit } => {
                write!(f, "cycle limit of {limit} exceeded")
            }
            SimError::BadAccess { addr, pc } => {
                write!(f, "bad memory access to {addr:#x} at pc {pc}")
            }
            SimError::BadPc { pc } => write!(f, "program counter {pc} out of code region"),
            SimError::UnknownArray { name } => write!(f, "no array named `{name}`"),
            SimError::DataTooLong {
                name,
                capacity,
                given,
            } => write!(f, "array `{name}` holds {capacity} words, {given} given"),
            SimError::TraceCorrupt { detail } => {
                write!(f, "reference trace corrupt: {detail}")
            }
        }
    }
}

impl Error for SimError {}

/// The instruction-set simulator, bound to a compiled program and its
/// source application.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    prog: &'a MachProgram,
    app: &'a Application,
    energy: EnergyTable,
    regs: [i64; Reg::COUNT as usize],
    data: Vec<i64>,
    slots: Vec<i64>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with zeroed memory, using the default
    /// SPARCLite/CMOS6 energy table.
    pub fn new(prog: &'a MachProgram, app: &'a Application) -> Self {
        Self::with_energy_table(prog, app, EnergyTable::default())
    }

    /// Creates a simulator with a custom energy table.
    pub fn with_energy_table(
        prog: &'a MachProgram,
        app: &'a Application,
        energy: EnergyTable,
    ) -> Self {
        let slot_words = prog
            .insts()
            .iter()
            .filter_map(|i| match i {
                MachInst::Ldw { offset, base, .. } | MachInst::Stw { offset, base, .. }
                    if *base == Reg::ZERO && *offset >= SLOT_BASE as i32 =>
                {
                    Some(((*offset as u32 - SLOT_BASE) / 4 + 1) as usize)
                }
                _ => None,
            })
            .max()
            .unwrap_or(0)
            // Slots can also be reached via non-zero bases in principle;
            // reserve one word per variable as the upper bound.
            .max(app.vars().len());
        Simulator {
            prog,
            app,
            energy,
            regs: [0; Reg::COUNT as usize],
            data: vec![0; app.memory_words() as usize],
            slots: vec![0; slot_words],
        }
    }

    /// Sets the contents of a named shared-memory array.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownArray`] or [`SimError::DataTooLong`].
    pub fn set_array(&mut self, name: &str, data: &[i64]) -> Result<(), SimError> {
        let info = self
            .app
            .arrays()
            .iter()
            .find(|a| a.name == name)
            .ok_or_else(|| SimError::UnknownArray { name: name.into() })?;
        if data.len() > info.len as usize {
            return Err(SimError::DataTooLong {
                name: name.into(),
                capacity: info.len,
                given: data.len(),
            });
        }
        let base = info.base_word as usize;
        self.data[base..base + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads the contents of a named array.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownArray`].
    pub fn array(&self, name: &str) -> Result<&[i64], SimError> {
        let info = self
            .app
            .arrays()
            .iter()
            .find(|a| a.name == name)
            .ok_or_else(|| SimError::UnknownArray { name: name.into() })?;
        let base = info.base_word as usize;
        Ok(&self.data[base..base + info.len as usize])
    }

    /// Reads the machine value of an IR variable after a run.
    pub fn var_value(&self, v: corepart_ir::op::VarId) -> i64 {
        match self.prog.var_loc(v) {
            VarLoc::Reg(r) => self.regs[r.0 as usize],
            VarLoc::Slot(addr) => self.slots[((addr - SLOT_BASE) / 4) as usize],
        }
    }

    fn reg(&self, r: Reg) -> i64 {
        self.regs[r.0 as usize]
    }

    fn set_reg(&mut self, r: Reg, v: i64) {
        if r != Reg::ZERO {
            self.regs[r.0 as usize] = v;
        }
    }

    fn rhs(&self, ri: RegImm) -> i64 {
        match ri {
            RegImm::Reg(r) => self.reg(r),
            RegImm::Imm(i) => i,
        }
    }

    fn mem_read(&mut self, addr: u32, pc: u32) -> Result<i64, SimError> {
        if !addr.is_multiple_of(4) {
            return Err(SimError::BadAccess { addr, pc });
        }
        if addr >= SLOT_BASE {
            let idx = ((addr - SLOT_BASE) / 4) as usize;
            self.slots
                .get(idx)
                .copied()
                .ok_or(SimError::BadAccess { addr, pc })
        } else if addr >= DATA_BASE {
            let idx = ((addr - DATA_BASE) / 4) as usize;
            self.data
                .get(idx)
                .copied()
                .ok_or(SimError::BadAccess { addr, pc })
        } else {
            Err(SimError::BadAccess { addr, pc })
        }
    }

    fn mem_write(&mut self, addr: u32, value: i64, pc: u32) -> Result<(), SimError> {
        if !addr.is_multiple_of(4) {
            return Err(SimError::BadAccess { addr, pc });
        }
        if addr >= SLOT_BASE {
            let idx = ((addr - SLOT_BASE) / 4) as usize;
            match self.slots.get_mut(idx) {
                Some(w) => {
                    *w = value;
                    Ok(())
                }
                None => Err(SimError::BadAccess { addr, pc }),
            }
        } else if addr >= DATA_BASE {
            let idx = ((addr - DATA_BASE) / 4) as usize;
            match self.data.get_mut(idx) {
                Some(w) => {
                    *w = value;
                    Ok(())
                }
                None => Err(SimError::BadAccess { addr, pc }),
            }
        } else {
            Err(SimError::BadAccess { addr, pc })
        }
    }

    /// Runs the program to `halt`, streaming µP-side references into
    /// `sink`.
    ///
    /// Registers are cleared; data memory is kept so inputs set via
    /// [`Simulator::set_array`] survive.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run<S: MemSink>(
        &mut self,
        config: &SimConfig,
        sink: &mut S,
    ) -> Result<RunStats, SimError> {
        self.run_recorded(config, sink, &mut NullRecorder)
    }

    /// [`Simulator::run`] with an [`ExecRecorder`] observing the
    /// executed pc stream and every load/store address — the capture
    /// half of the trace-replay verification engine
    /// ([`crate::trace`]). Recording never changes execution or
    /// accounting; `run` is exactly this with a [`NullRecorder`].
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run_recorded<S: MemSink, R: ExecRecorder>(
        &mut self,
        config: &SimConfig,
        sink: &mut S,
        recorder: &mut R,
    ) -> Result<RunStats, SimError> {
        self.regs = [0; Reg::COUNT as usize];

        let n_blocks = self.app.blocks().len();
        let mut stats = RunStats {
            cycles: Cycles::ZERO,
            energy: Energy::ZERO,
            inst_counts: InstClass::ALL.iter().map(|&c| (c, 0)).collect(),
            class_cycles: InstClass::ALL.iter().map(|&c| (c, 0)).collect(),
            block_class_cycles: vec![[0; 8]; n_blocks],
            class_switches: 0,
            block_counts: vec![0; n_blocks],
            block_cycles: vec![0; n_blocks],
            block_energy: vec![Energy::ZERO; n_blocks],
            hw_block_entries: HashMap::new(),
            hw_loads: 0,
            hw_stores: 0,
            sw_reads: 0,
            sw_writes: 0,
            sw_ifetches: 0,
            return_value: 0,
            trace: Vec::new(),
        };

        let insts = self.prog.insts();
        let mut pc: u32 = 0;
        let mut cycles: u64 = 0;
        let mut prev_class: Option<InstClass> = None;
        let mut prev_block: Option<BlockId> = None;
        let mut prev_was_hw = false;

        loop {
            let inst = *insts.get(pc as usize).ok_or(SimError::BadPc { pc })?;
            recorder.inst(pc);
            let block = self.prog.block_of(pc);
            let bi = block.0 as usize;
            let is_hw = config.hw_blocks.contains(&block);

            // Block-entry accounting.
            if prev_block != Some(block) && pc == self.prog.block_start(block) {
                stats.block_counts[bi] += 1;
                if is_hw && !prev_was_hw {
                    *stats.hw_block_entries.entry(block).or_insert(0) += 1;
                }
            }
            prev_block = Some(block);
            prev_was_hw = is_hw;

            let latency = inst.latency();
            let class = InstClass::of(&inst);
            if !is_hw {
                cycles += latency;
                if config.max_cycles > 0 && cycles > config.max_cycles {
                    return Err(SimError::CycleLimit {
                        limit: config.max_cycles,
                    });
                }
                let mut e = self.energy.base(class, latency);
                if let Some(p) = prev_class {
                    if p != class {
                        e += self.energy.inter_inst_overhead();
                        stats.class_switches += 1;
                    }
                }
                prev_class = Some(class);
                stats.energy += e;
                stats.block_cycles[bi] += latency;
                stats.block_energy[bi] += e;
                *stats.inst_counts.get_mut(&class).expect("class") += 1;
                *stats.class_cycles.get_mut(&class).expect("class") += latency;
                let ci = InstClass::ALL
                    .iter()
                    .position(|&c| c == class)
                    .expect("class in ALL");
                stats.block_class_cycles[bi][ci] += latency;
                stats.sw_ifetches += 1;
                sink.ifetch(self.prog.inst_addr(pc));
                if stats.trace.len() < config.trace_limit {
                    stats.trace.push(TraceEntry { pc, inst, cycles });
                }
            } else {
                // Leaving the µP's instruction stream resets the
                // circuit-state history.
                prev_class = None;
            }

            let mut next_pc = pc + 1;
            match inst {
                MachInst::Alu { op, rd, rs1, rhs } => {
                    let v = op.eval(self.reg(rs1), self.rhs(rhs));
                    self.set_reg(rd, v);
                }
                MachInst::Mul { rd, rs1, rhs } => {
                    let v = self.reg(rs1).wrapping_mul(self.rhs(rhs));
                    self.set_reg(rd, v);
                }
                MachInst::Div { rd, rs1, rhs } => {
                    let b = self.rhs(rhs);
                    let v = if b == 0 {
                        0
                    } else {
                        self.reg(rs1).wrapping_div(b)
                    };
                    self.set_reg(rd, v);
                }
                MachInst::Rem { rd, rs1, rhs } => {
                    let b = self.rhs(rhs);
                    let v = if b == 0 {
                        0
                    } else {
                        self.reg(rs1).wrapping_rem(b)
                    };
                    self.set_reg(rd, v);
                }
                MachInst::Movi { rd, imm } => self.set_reg(rd, imm),
                MachInst::Ldw { rd, base, offset } => {
                    let addr = (self.reg(base) + i64::from(offset)) as u32;
                    let v = self.mem_read(addr, pc)?;
                    recorder.data(addr);
                    self.set_reg(rd, v);
                    if is_hw {
                        if addr < SLOT_BASE {
                            stats.hw_loads += 1;
                        }
                    } else {
                        stats.sw_reads += 1;
                        sink.read(addr);
                    }
                }
                MachInst::Stw { rs, base, offset } => {
                    let addr = (self.reg(base) + i64::from(offset)) as u32;
                    let v = self.reg(rs);
                    self.mem_write(addr, v, pc)?;
                    recorder.data(addr);
                    if is_hw {
                        if addr < SLOT_BASE {
                            stats.hw_stores += 1;
                        }
                    } else {
                        stats.sw_writes += 1;
                        sink.write(addr);
                    }
                }
                MachInst::Beqz { rs, target } => {
                    if self.reg(rs) == 0 {
                        next_pc = target;
                    }
                }
                MachInst::Bnez { rs, target } => {
                    if self.reg(rs) != 0 {
                        next_pc = target;
                    }
                }
                MachInst::Jmp { target } => next_pc = target,
                MachInst::Halt => {
                    stats.cycles = Cycles::new(cycles);
                    stats.return_value = self.reg(Reg(1));
                    return Ok(stats);
                }
                MachInst::Nop => {}
            }
            pc = next_pc;
        }
    }

    /// The energy table in use.
    pub fn energy_table(&self) -> &EnergyTable {
        &self.energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::compile;
    use corepart_ir::lower::lower;
    use corepart_ir::parser::parse;

    fn setup(src: &str) -> (Application, MachProgram) {
        let app = lower(&parse(src).unwrap()).unwrap();
        let prog = compile(&app);
        (app, prog)
    }

    #[test]
    fn computes_return_value() {
        let (app, prog) = setup("app t; func main() { var x = 6; var y = 7; return x * y; }");
        let mut sim = Simulator::new(&prog, &app);
        let stats = sim
            .run(&SimConfig::initial(100_000), &mut NullSink)
            .unwrap();
        assert_eq!(stats.return_value, 42);
        assert!(stats.cycles.count() > 0);
        assert!(stats.energy.joules() > 0.0);
    }

    #[test]
    fn matches_ir_interpreter_semantics() {
        use corepart_ir::interp::Interpreter;
        let src = r#"app t; var x[16]; var y[16];
            func clamp(v, hi) { if (v > hi) { return hi; } return v; }
            func main() {
                for (var i = 0; i < 16; i = i + 1) {
                    y[i] = clamp(x[i] * 3 - 5, 20);
                }
                return y[7];
            }"#;
        let (app, prog) = setup(src);
        let input: Vec<i64> = (0..16).map(|i| (i * 7 % 13) - 3).collect();

        let mut interp = Interpreter::new(&app);
        interp.set_array("x", &input).unwrap();
        let ip = interp.run(1_000_000).unwrap();

        let mut sim = Simulator::new(&prog, &app);
        sim.set_array("x", &input).unwrap();
        let stats = sim
            .run(&SimConfig::initial(1_000_000), &mut NullSink)
            .unwrap();

        assert_eq!(Some(stats.return_value), ip.return_value);
        assert_eq!(sim.array("y").unwrap(), interp.array("y").unwrap());
    }

    #[test]
    fn loop_cycles_scale_with_trip_count() {
        let src_of = |n: u32| {
            format!(
                "app t; var acc = 0; func main() {{ for (var i = 0; i < {n}; i = i + 1) {{ acc = acc + i; }} return acc; }}"
            )
        };
        let (app_s, prog_s) = setup(&src_of(10));
        let (app_l, prog_l) = setup(&src_of(100));
        let small = Simulator::new(&prog_s, &app_s)
            .run(&SimConfig::initial(10_000_000), &mut NullSink)
            .unwrap();
        let large = Simulator::new(&prog_l, &app_l)
            .run(&SimConfig::initial(10_000_000), &mut NullSink)
            .unwrap();
        let ratio = large.cycles.count() as f64 / small.cycles.count() as f64;
        assert!((5.0..15.0).contains(&ratio), "ratio = {ratio}");
        assert!(large.energy > small.energy);
    }

    #[test]
    fn hw_blocks_are_free_but_functional() {
        let src = r#"app t; var a[32]; var acc = 0;
            func main() {
                for (var i = 0; i < 32; i = i + 1) { a[i] = a[i] * 3 + 1; }
                for (var j = 0; j < 32; j = j + 1) { acc = acc + a[j]; }
                return acc;
            }"#;
        let (app, prog) = setup(src);
        // Find the first loop's blocks via structure.
        let first_loop = app.structure().iter().find(|n| n.is_loop()).expect("loop");
        let hw: HashSet<BlockId> = first_loop.blocks().iter().copied().collect();

        let input: Vec<i64> = (0..32).map(|i| i % 5).collect();
        let mut full = Simulator::new(&prog, &app);
        full.set_array("a", &input).unwrap();
        let base = full
            .run(&SimConfig::initial(10_000_000), &mut NullSink)
            .unwrap();

        let mut part = Simulator::new(&prog, &app);
        part.set_array("a", &input).unwrap();
        let cut = part
            .run(
                &SimConfig::partitioned(10_000_000, hw.clone()),
                &mut NullSink,
            )
            .unwrap();

        // Same results, fewer µP cycles and energy.
        assert_eq!(base.return_value, cut.return_value);
        assert!(cut.cycles < base.cycles);
        assert!(cut.energy < base.energy);
        // The hardware region performed the array traffic.
        assert_eq!(cut.hw_loads, 32);
        assert_eq!(cut.hw_stores, 32);
        // It was entered once.
        let entries: u64 = cut.hw_block_entries.values().sum();
        assert_eq!(entries, 1);
        // Block counts identical (functional behaviour unchanged).
        assert_eq!(base.block_counts, cut.block_counts);
    }

    #[test]
    fn sink_sees_reference_stream() {
        #[derive(Default)]
        struct Counter {
            ifetch: u64,
            read: u64,
            write: u64,
        }
        impl MemSink for Counter {
            fn ifetch(&mut self, _a: u32) {
                self.ifetch += 1;
            }
            fn read(&mut self, _a: u32) {
                self.read += 1;
            }
            fn write(&mut self, _a: u32) {
                self.write += 1;
            }
        }
        let (app, prog) =
            setup("app t; var a[4]; func main() { a[0] = 3; var x = a[0]; return x; }");
        let mut sim = Simulator::new(&prog, &app);
        let mut sink = Counter::default();
        let stats = sim.run(&SimConfig::initial(100_000), &mut sink).unwrap();
        assert_eq!(sink.ifetch, stats.sw_ifetches);
        assert_eq!(sink.read, stats.sw_reads);
        assert_eq!(sink.write, stats.sw_writes);
        assert!(sink.read >= 1);
        assert!(sink.write >= 1);
    }

    #[test]
    fn cycle_limit_enforced() {
        let (app, prog) = setup("app t; var g = 1; func main() { while (g > 0) { g = 1; } }");
        let mut sim = Simulator::new(&prog, &app);
        let err = sim
            .run(&SimConfig::initial(1_000), &mut NullSink)
            .unwrap_err();
        assert!(matches!(err, SimError::CycleLimit { limit: 1_000 }));
    }

    #[test]
    fn mul_div_latencies_counted() {
        let (app_a, prog_a) = setup("app t; var g = 7; func main() { g = g + 3; return g; }");
        let (app_m, prog_m) = setup("app t; var g = 7; func main() { g = g * 3; return g; }");
        let a = Simulator::new(&prog_a, &app_a)
            .run(&SimConfig::initial(100_000), &mut NullSink)
            .unwrap();
        let m = Simulator::new(&prog_m, &app_m)
            .run(&SimConfig::initial(100_000), &mut NullSink)
            .unwrap();
        assert_eq!(
            m.cycles.count() - a.cycles.count(),
            4,
            "mul is 4 cycles longer than add"
        );
        assert_eq!(m.inst_counts[&InstClass::Mul], 1);
    }

    #[test]
    fn block_attribution_sums_to_totals() {
        let (app, prog) = setup(
            "app t; var acc = 0; func main() { for (var i = 0; i < 20; i = i + 1) { acc = acc + i * i; } return acc; }",
        );
        let stats = Simulator::new(&prog, &app)
            .run(&SimConfig::initial(1_000_000), &mut NullSink)
            .unwrap();
        let sum_cycles: u64 = stats.block_cycles.iter().sum();
        assert_eq!(sum_cycles, stats.cycles.count());
        let sum_energy: Energy = stats.block_energy.iter().copied().sum();
        assert!((sum_energy.joules() - stats.energy.joules()).abs() < 1e-15);
    }

    #[test]
    fn set_array_errors() {
        let (app, prog) = setup("app t; var a[2]; func main() { }");
        let mut sim = Simulator::new(&prog, &app);
        assert!(matches!(
            sim.set_array("b", &[1]),
            Err(SimError::UnknownArray { .. })
        ));
        assert!(matches!(
            sim.set_array("a", &[1, 2, 3]),
            Err(SimError::DataTooLong { .. })
        ));
    }

    #[test]
    fn trace_captures_executed_instructions() {
        let (app, prog) = setup("app t; func main() { var x = 2; var y = 3; return x + y; }");
        let mut sim = Simulator::new(&prog, &app);
        let stats = sim
            .run(&SimConfig::initial(100_000).with_trace(64), &mut NullSink)
            .unwrap();
        assert!(!stats.trace.is_empty());
        assert_eq!(stats.trace.len() as u64, stats.sw_ifetches.min(64));
        // Trace entries appear in cycle order and end at a halt.
        for w in stats.trace.windows(2) {
            assert!(w[0].cycles <= w[1].cycles);
        }
        assert!(matches!(
            stats.trace.last().expect("non-empty").inst,
            MachInst::Halt
        ));
    }

    #[test]
    fn trace_limit_caps_capture() {
        let (app, prog) = setup(
            "app t; var g = 0; func main() { for (var i = 0; i < 100; i = i + 1) { g = g + i; } }",
        );
        let stats = Simulator::new(&prog, &app)
            .run(&SimConfig::initial(1_000_000).with_trace(10), &mut NullSink)
            .unwrap();
        assert_eq!(stats.trace.len(), 10);
    }

    #[test]
    fn tracing_off_by_default() {
        let (app, prog) = setup("app t; func main() { return 1; }");
        let stats = Simulator::new(&prog, &app)
            .run(&SimConfig::initial(1000), &mut NullSink)
            .unwrap();
        assert!(stats.trace.is_empty());
    }

    #[test]
    fn class_switch_overhead_charged() {
        // Alternating classes -> switches close to instruction count.
        let (app, prog) = setup(
            "app t; var a[8]; var g = 1; func main() { for (var i = 0; i < 8; i = i + 1) { a[i] = g * i; g = g + a[i]; } }",
        );
        let stats = Simulator::new(&prog, &app)
            .run(&SimConfig::initial(1_000_000), &mut NullSink)
            .unwrap();
        assert!(stats.class_switches > 0);
    }
}
