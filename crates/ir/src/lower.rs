//! Lowering from the behavioral AST to the [`Application`] CDFG.
//!
//! All function calls are inlined (the partitioner and the downstream
//! compilers operate on a single whole-program graph), so recursion is
//! rejected. While lowering, a structure tree is recorded: which basic
//! blocks belong to which source loop / branch / inlined call — the
//! structural information the cluster decomposition of Fig. 1 step 2
//! consumes.
//!
//! ```
//! use corepart_ir::parser::parse;
//! use corepart_ir::lower::lower;
//!
//! let prog = parse("app t; var a[4]; func main() { a[0] = 1; }")?;
//! let app = lower(&prog)?;
//! assert_eq!(app.name(), "t");
//! assert!(app.inst_count() >= 1);
//! # Ok::<(), corepart_ir::error::IrError>(())
//! ```

use std::collections::HashMap;

use crate::ast::{Expr, FuncDecl, LValue, Program, Span, Stmt};
use crate::cdfg::{Application, ArrayInfo, Block, StructNode, VarInfo};
use crate::error::IrError;
use crate::op::{ArrayId, BlockId, Inst, Operand, Terminator, VarId};

/// Lowers a parsed program into a fully inlined [`Application`].
///
/// # Errors
///
/// Returns [`IrError::Lower`] on undefined names, arity mismatches,
/// assignment to constants, recursion, or a missing `main`.
pub fn lower(prog: &Program) -> Result<Application, IrError> {
    let main = prog.func("main").ok_or_else(|| IrError::Lower {
        span: Span::default(),
        message: "program has no `main` function".into(),
    })?;
    if !main.params.is_empty() {
        return Err(IrError::Lower {
            span: main.span,
            message: "`main` must not take parameters".into(),
        });
    }

    let mut lw = Lowerer::new(prog)?;
    let mut frame = Frame {
        locals: HashMap::new(),
        ret_var: None,
        pending_returns: Vec::new(),
    };
    // Entry block.
    let entry = lw.new_block();
    lw.cur = entry;
    lw.call_stack.push("main".to_owned());
    let structure = lw.lower_stmts(&main.body, &mut frame)?;
    lw.call_stack.pop();
    // The last open block keeps its placeholder `ret`.

    Ok(Application::from_parts(
        prog.name.clone(),
        lw.vars,
        lw.arrays,
        lw.blocks,
        entry,
        lw.globals_init,
        structure,
    ))
}

struct Frame {
    locals: HashMap<String, VarId>,
    /// Destination of `return e` when inlined (None in `main`).
    ret_var: Option<VarId>,
    /// Blocks whose terminator must be patched to jump to the inline
    /// continuation.
    pending_returns: Vec<BlockId>,
}

struct Lowerer<'a> {
    prog: &'a Program,
    vars: Vec<VarInfo>,
    arrays: Vec<ArrayInfo>,
    array_ids: HashMap<String, ArrayId>,
    consts: HashMap<String, i64>,
    globals: HashMap<String, VarId>,
    globals_init: Vec<(VarId, i64)>,
    blocks: Vec<Block>,
    cur: BlockId,
    call_stack: Vec<String>,
}

impl<'a> Lowerer<'a> {
    fn new(prog: &'a Program) -> Result<Self, IrError> {
        let mut consts = HashMap::new();
        for c in &prog.consts {
            if consts.insert(c.name.clone(), c.value).is_some() {
                return Err(IrError::Lower {
                    span: c.span,
                    message: format!("constant `{}` declared twice", c.name),
                });
            }
        }
        let mut arrays = Vec::new();
        let mut array_ids = HashMap::new();
        let mut base = 0u32;
        for a in &prog.arrays {
            if array_ids
                .insert(a.name.clone(), ArrayId(arrays.len() as u32))
                .is_some()
            {
                return Err(IrError::Lower {
                    span: a.span,
                    message: format!("array `{}` declared twice", a.name),
                });
            }
            arrays.push(ArrayInfo {
                name: a.name.clone(),
                len: a.len,
                base_word: base,
            });
            base = base.checked_add(a.len).ok_or(IrError::Lower {
                span: a.span,
                message: "total array size overflows the address space".into(),
            })?;
        }
        let mut lw = Lowerer {
            prog,
            vars: Vec::new(),
            arrays,
            array_ids,
            consts,
            globals: HashMap::new(),
            globals_init: Vec::new(),
            blocks: Vec::new(),
            cur: BlockId(0),
            call_stack: Vec::new(),
        };
        for g in &prog.globals {
            if lw.globals.contains_key(&g.name) {
                return Err(IrError::Lower {
                    span: g.span,
                    message: format!("global `{}` declared twice", g.name),
                });
            }
            let v = lw.fresh_var(Some(g.name.clone()));
            lw.globals.insert(g.name.clone(), v);
            lw.globals_init.push((v, g.init));
        }
        Ok(lw)
    }

    fn fresh_var(&mut self, name: Option<String>) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo { name });
        id
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            insts: Vec::new(),
            term: Terminator::Return(None),
        });
        id
    }

    fn emit(&mut self, inst: Inst) {
        self.blocks[self.cur.0 as usize].insts.push(inst);
    }

    fn seal(&mut self, block: BlockId, term: Terminator) {
        self.blocks[block.0 as usize].term = term;
    }

    fn err<T>(&self, span: Span, message: impl Into<String>) -> Result<T, IrError> {
        Err(IrError::Lower {
            span,
            message: message.into(),
        })
    }

    /// Lowers a statement list, returning its structure nodes.
    ///
    /// Invariant: on entry `self.cur` is the most recently created
    /// block; on exit `self.cur` is again the most recently created
    /// block and still open (placeholder terminator).
    fn lower_stmts(
        &mut self,
        stmts: &[Stmt],
        frame: &mut Frame,
    ) -> Result<Vec<StructNode>, IrError> {
        let mut nodes: Vec<StructNode> = Vec::new();
        let mut run_start = self.cur.0;
        let mut run_mark = self.blocks.len() as u32;

        macro_rules! close_run {
            () => {{
                let end = self.blocks.len() as u32;
                let mut blocks: Vec<BlockId> = vec![BlockId(run_start)];
                blocks.extend((run_mark..end).map(BlockId).filter(|b| b.0 != run_start));
                let has_insts = blocks
                    .iter()
                    .any(|b| !self.blocks[b.0 as usize].insts.is_empty());
                if has_insts {
                    nodes.push(StructNode::Straight { blocks });
                }
            }};
        }
        macro_rules! open_run {
            () => {{
                run_start = self.cur.0;
                run_mark = self.blocks.len() as u32;
            }};
        }

        for stmt in stmts {
            match stmt {
                Stmt::VarDecl { name, init, span } => {
                    let val = self.lower_expr(init, frame)?;
                    let v = self.fresh_var(Some(name.clone()));
                    frame.locals.insert(name.clone(), v);
                    self.emit(copy_inst(v, val));
                    let _ = span;
                }
                Stmt::Assign {
                    target,
                    value,
                    span,
                } => {
                    self.lower_assign(target, value, *span, frame)?;
                }
                Stmt::Return { value, span } => {
                    let op = match value {
                        Some(e) => Some(self.lower_expr(e, frame)?),
                        None => None,
                    };
                    if let Some(ret) = frame.ret_var {
                        if let Some(op) = op {
                            self.emit(copy_inst(ret, op));
                        }
                        frame.pending_returns.push(self.cur);
                    } else {
                        self.seal(self.cur, Terminator::Return(op));
                    }
                    let _ = span;
                    // Continue into an unreachable block so later
                    // statements still lower.
                    self.cur = self.new_block();
                }
                Stmt::Expr { expr, span } => {
                    if let Expr::Call(name, args, cspan) = expr {
                        // Statement-level call: becomes an `Inlined`
                        // structure node (functions are clusters, §3.2).
                        let mut arg_vals = Vec::with_capacity(args.len());
                        for a in args {
                            arg_vals.push(self.lower_expr(a, frame)?);
                        }
                        close_run!();
                        let region_start = self.blocks.len() as u32;
                        let entry = self.new_block();
                        self.seal(self.cur, Terminator::Jump(entry));
                        self.cur = entry;
                        let (body_nodes, _ret) = self.inline_call(name, &arg_vals, *cspan)?;
                        let region_end = self.blocks.len() as u32;
                        let cont = self.new_block();
                        self.seal(self.cur, Terminator::Jump(cont));
                        self.cur = cont;
                        nodes.push(StructNode::Inlined {
                            label: name.clone(),
                            body: body_nodes,
                            all_blocks: (region_start..region_end).map(BlockId).collect(),
                        });
                        open_run!();
                    } else {
                        // Pure expression statement: evaluate for effect
                        // (there are none, but keep semantics simple).
                        let _ = self.lower_expr(expr, frame)?;
                        let _ = span;
                    }
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    span,
                } => {
                    close_run!();
                    let region_start = self.blocks.len() as u32;
                    let cond_entry = self.new_block();
                    self.seal(self.cur, Terminator::Jump(cond_entry));
                    self.cur = cond_entry;
                    let cv = self.lower_expr(cond, frame)?;
                    let cond_exit = self.cur;
                    let cond_end = self.blocks.len() as u32;

                    let then_start = self.new_block();
                    self.cur = then_start;
                    let then_nodes = self.lower_stmts(then_body, frame)?;
                    let then_exit = self.cur;

                    let (else_target, else_nodes, else_exit) = if else_body.is_empty() {
                        (None, Vec::new(), None)
                    } else {
                        let else_start = self.new_block();
                        self.cur = else_start;
                        let en = self.lower_stmts(else_body, frame)?;
                        (Some(else_start), en, Some(self.cur))
                    };

                    let region_end = self.blocks.len() as u32;
                    let join = self.new_block();
                    self.seal(
                        cond_exit,
                        Terminator::Branch {
                            cond: cv,
                            then_block: then_start,
                            else_block: else_target.unwrap_or(join),
                        },
                    );
                    self.seal(then_exit, Terminator::Jump(join));
                    if let Some(ee) = else_exit {
                        self.seal(ee, Terminator::Jump(join));
                    }
                    self.cur = join;
                    nodes.push(StructNode::Branch {
                        label: format!("if@{span}"),
                        cond_blocks: (region_start..cond_end).map(BlockId).collect(),
                        then_body: then_nodes,
                        else_body: else_nodes,
                        all_blocks: (region_start..region_end).map(BlockId).collect(),
                    });
                    open_run!();
                }
                Stmt::While { cond, body, span } => {
                    close_run!();
                    let node = self.lower_loop(None, cond, None, body, *span, frame)?;
                    nodes.push(node);
                    open_run!();
                }
                Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    span,
                } => {
                    // The init runs once in the enclosing run.
                    self.lower_simple(init, frame)?;
                    close_run!();
                    let node = self.lower_loop(None, cond, Some(step), body, *span, frame)?;
                    nodes.push(node);
                    open_run!();
                }
            }
        }
        close_run!();
        Ok(nodes)
    }

    /// Lowers a loop (while, or for when `step` is given).
    fn lower_loop(
        &mut self,
        _label: Option<String>,
        cond: &Expr,
        step: Option<&Stmt>,
        body: &[Stmt],
        span: Span,
        frame: &mut Frame,
    ) -> Result<StructNode, IrError> {
        let region_start = self.blocks.len() as u32;
        let header = self.new_block();
        self.seal(self.cur, Terminator::Jump(header));
        self.cur = header;
        let cv = self.lower_expr(cond, frame)?;
        let cond_exit = self.cur;
        let header_end = self.blocks.len() as u32;

        let body_start = self.new_block();
        self.cur = body_start;
        let body_nodes = self.lower_stmts(body, frame)?;
        if let Some(step) = step {
            self.lower_simple(step, frame)?;
        }
        self.seal(self.cur, Terminator::Jump(header));

        let region_end = self.blocks.len() as u32;
        let exit = self.new_block();
        self.seal(
            cond_exit,
            Terminator::Branch {
                cond: cv,
                then_block: body_start,
                else_block: exit,
            },
        );
        self.cur = exit;
        Ok(StructNode::Loop {
            label: format!("loop@{span}"),
            header_blocks: (region_start..header_end).map(BlockId).collect(),
            body: body_nodes,
            all_blocks: (region_start..region_end).map(BlockId).collect(),
        })
    }

    /// Lowers a simple statement (declaration, assignment or expression)
    /// straight into the current block — used for `for` init/step
    /// headers, which belong to no structure run of their own.
    ///
    /// Compound statements are rejected by the grammar in these
    /// positions, but handle them defensively.
    fn lower_simple(&mut self, stmt: &Stmt, frame: &mut Frame) -> Result<(), IrError> {
        match stmt {
            Stmt::VarDecl { name, init, .. } => {
                let val = self.lower_expr(init, frame)?;
                let v = self.fresh_var(Some(name.clone()));
                frame.locals.insert(name.clone(), v);
                self.emit(copy_inst(v, val));
                Ok(())
            }
            Stmt::Assign {
                target,
                value,
                span,
            } => self.lower_assign(target, value, *span, frame),
            Stmt::Expr { expr, .. } => {
                let _ = self.lower_expr(expr, frame)?;
                Ok(())
            }
            other => self.err(
                other.span(),
                "only simple statements are allowed in `for` headers",
            ),
        }
    }

    fn lower_assign(
        &mut self,
        target: &LValue,
        value: &Expr,
        span: Span,
        frame: &mut Frame,
    ) -> Result<(), IrError> {
        match target {
            LValue::Var(name) => {
                let val = self.lower_expr(value, frame)?;
                if let Some(&v) = frame.locals.get(name) {
                    self.emit(copy_inst(v, val));
                } else if let Some(&v) = self.globals.get(name) {
                    self.emit(copy_inst(v, val));
                } else if self.consts.contains_key(name) {
                    return self.err(span, format!("cannot assign to constant `{name}`"));
                } else {
                    return self.err(span, format!("assignment to undefined variable `{name}`"));
                }
                Ok(())
            }
            LValue::Index(name, idx) => {
                let &array = self.array_ids.get(name).ok_or_else(|| IrError::Lower {
                    span,
                    message: format!("store to undefined array `{name}`"),
                })?;
                let iv = self.lower_expr(idx, frame)?;
                let vv = self.lower_expr(value, frame)?;
                self.emit(Inst::Store {
                    array,
                    index: iv,
                    value: vv,
                });
                Ok(())
            }
        }
    }

    fn lower_expr(&mut self, expr: &Expr, frame: &mut Frame) -> Result<Operand, IrError> {
        match expr {
            Expr::Int(v, _) => Ok(Operand::Const(*v)),
            Expr::Var(name, span) => {
                if let Some(&v) = frame.locals.get(name) {
                    Ok(Operand::Var(v))
                } else if let Some(&v) = self.globals.get(name) {
                    Ok(Operand::Var(v))
                } else if let Some(&c) = self.consts.get(name) {
                    Ok(Operand::Const(c))
                } else {
                    self.err(*span, format!("undefined variable `{name}`"))
                }
            }
            Expr::Index(name, idx, span) => {
                let &array = self.array_ids.get(name).ok_or_else(|| IrError::Lower {
                    span: *span,
                    message: format!("read of undefined array `{name}`"),
                })?;
                let iv = self.lower_expr(idx, frame)?;
                let dst = self.fresh_var(None);
                self.emit(Inst::Load {
                    dst,
                    array,
                    index: iv,
                });
                Ok(Operand::Var(dst))
            }
            Expr::Unary(op, e, _) => {
                let v = self.lower_expr(e, frame)?;
                if let Operand::Const(c) = v {
                    return Ok(Operand::Const(op.eval(c)));
                }
                let dst = self.fresh_var(None);
                self.emit(Inst::Unary {
                    dst,
                    op: *op,
                    src: v,
                });
                Ok(Operand::Var(dst))
            }
            Expr::Binary(op, l, r, _) => {
                let lv = self.lower_expr(l, frame)?;
                let rv = self.lower_expr(r, frame)?;
                if let (Operand::Const(a), Operand::Const(b)) = (lv, rv) {
                    return Ok(Operand::Const(op.eval(a, b)));
                }
                let dst = self.fresh_var(None);
                self.emit(Inst::Binary {
                    dst,
                    op: *op,
                    lhs: lv,
                    rhs: rv,
                });
                Ok(Operand::Var(dst))
            }
            Expr::Call(name, args, span) => {
                let mut arg_vals = Vec::with_capacity(args.len());
                for a in args {
                    arg_vals.push(self.lower_expr(a, frame)?);
                }
                let (_nodes, ret) = self.inline_call(name, &arg_vals, *span)?;
                Ok(ret)
            }
        }
    }

    /// Inlines a call to `name` with pre-lowered argument operands.
    ///
    /// Returns the callee's structure nodes and the return-value
    /// operand. On return, `self.cur` is the inline continuation point
    /// (open block).
    fn inline_call(
        &mut self,
        name: &str,
        args: &[Operand],
        span: Span,
    ) -> Result<(Vec<StructNode>, Operand), IrError> {
        let func: &FuncDecl = self.prog.func(name).ok_or_else(|| IrError::Lower {
            span,
            message: format!("call to undefined function `{name}`"),
        })?;
        if func.params.len() != args.len() {
            return self.err(
                span,
                format!(
                    "function `{name}` takes {} argument(s), {} given",
                    func.params.len(),
                    args.len()
                ),
            );
        }
        if self.call_stack.iter().any(|f| f == name) {
            return self.err(
                span,
                format!(
                    "recursion detected: {} -> {name} (the language is fully inlined)",
                    self.call_stack.join(" -> ")
                ),
            );
        }

        let ret_var = self.fresh_var(Some(format!("{name}.ret")));
        self.emit(Inst::Const {
            dst: ret_var,
            value: 0,
        });
        let mut locals = HashMap::new();
        for (p, &a) in func.params.iter().zip(args) {
            let pv = self.fresh_var(Some(format!("{name}.{p}")));
            self.emit(copy_inst(pv, a));
            locals.insert(p.clone(), pv);
        }
        let mut callee_frame = Frame {
            locals,
            ret_var: Some(ret_var),
            pending_returns: Vec::new(),
        };
        self.call_stack.push(name.to_owned());
        let nodes = self.lower_stmts(&func.body, &mut callee_frame)?;
        self.call_stack.pop();

        // The fall-through end of the body plus all return sites
        // continue at a fresh block.
        let cont = self.new_block();
        self.seal(self.cur, Terminator::Jump(cont));
        for b in callee_frame.pending_returns {
            self.seal(b, Terminator::Jump(cont));
        }
        self.cur = cont;
        Ok((nodes, Operand::Var(ret_var)))
    }
}

fn copy_inst(dst: VarId, src: Operand) -> Inst {
    match src {
        Operand::Const(c) => Inst::Const { dst, value: c },
        v => Inst::Copy { dst, src: v },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::BinOp;
    use crate::parser::parse;

    fn app(src: &str) -> Application {
        lower(&parse(src).unwrap()).unwrap()
    }

    fn lower_err(src: &str) -> IrError {
        lower(&parse(src).unwrap()).unwrap_err()
    }

    #[test]
    fn lowers_straight_line() {
        let a = app("app t; var g = 2; func main() { var x = g + 3; g = x * 2; }");
        assert_eq!(a.globals_init().len(), 1);
        assert!(a.inst_count() >= 2);
        // One straight structure node.
        assert_eq!(a.structure().len(), 1);
        assert!(matches!(a.structure()[0], StructNode::Straight { .. }));
    }

    #[test]
    fn const_folding_in_expressions() {
        let a = app("app t; const K = 6; func main() { var x = 2 * K + 1; }");
        // 2*6+1 folds to 13 -> single Const into x.
        let entry = a.block(a.entry());
        assert!(entry
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Const { value: 13, .. })));
    }

    #[test]
    fn lowers_if_structure() {
        let a = app(
            "app t; var g = 0; func main() { var x = 1; if (x > 0) { g = 1; } else { g = 2; } g = 3; }",
        );
        let kinds: Vec<_> = a.structure().iter().map(|n| n.label()).collect();
        assert_eq!(a.structure().len(), 3, "{kinds:?}");
        assert!(matches!(a.structure()[1], StructNode::Branch { .. }));
    }

    #[test]
    fn lowers_while_loop_with_backedge() {
        let a = app("app t; var g = 10; func main() { while (g > 0) { g = g - 1; } }");
        assert!(a.structure().iter().any(|n| n.is_loop()));
        // There must be a back edge: some block jumps to a lower-id block.
        let mut has_backedge = false;
        for (bi, b) in a.blocks().iter().enumerate() {
            for s in b.term.successors() {
                if (s.0 as usize) <= bi {
                    has_backedge = true;
                }
            }
        }
        assert!(has_backedge);
    }

    #[test]
    fn for_loop_desugars() {
        let a = app(
            "app t; var acc = 0; func main() { for (var i = 0; i < 8; i = i + 1) { acc = acc + i; } }",
        );
        let loops: Vec<_> = a.structure().iter().filter(|n| n.is_loop()).collect();
        assert_eq!(loops.len(), 1);
        if let StructNode::Loop {
            header_blocks,
            all_blocks,
            ..
        } = loops[0]
        {
            assert!(!header_blocks.is_empty());
            assert!(all_blocks.len() >= header_blocks.len());
        }
    }

    #[test]
    fn nested_loops_nest_in_structure() {
        let a = app(r#"app t; var acc = 0;
            func main() {
                for (var i = 0; i < 4; i = i + 1) {
                    for (var j = 0; j < 4; j = j + 1) {
                        acc = acc + i * j;
                    }
                }
            }"#);
        let outer = a.structure().iter().find(|n| n.is_loop()).unwrap();
        let inner_loops = outer.children().iter().filter(|n| n.is_loop()).count();
        assert_eq!(inner_loops, 1);
    }

    #[test]
    fn statement_call_becomes_inlined_node() {
        let a = app(r#"app t; var g = 0;
            func inc() { g = g + 1; }
            func main() { inc(); inc(); }"#);
        let inlined: Vec<_> = a
            .structure()
            .iter()
            .filter(|n| matches!(n, StructNode::Inlined { .. }))
            .collect();
        assert_eq!(inlined.len(), 2);
        assert_eq!(inlined[0].label(), "inc");
    }

    #[test]
    fn expression_call_inlines_without_node() {
        let a = app(r#"app t; var g = 0;
            func add(x, y) { return x + y; }
            func main() { g = add(1, g); }"#);
        assert!(a
            .structure()
            .iter()
            .all(|n| !matches!(n, StructNode::Inlined { .. })));
        // But the add happened: a Binary Add exists.
        let has_add = a.blocks().iter().any(|b| {
            b.insts
                .iter()
                .any(|i| matches!(i, Inst::Binary { op: BinOp::Add, .. }))
        });
        assert!(has_add);
    }

    #[test]
    fn return_value_plumbed_through_ret_var() {
        let a = app(r#"app t; var g = 0;
            func f(x) { if (x > 0) { return 10; } return 20; }
            func main() { g = f(1); }"#);
        // Both return sites must copy into the same ret var; the
        // function must have produced at least two constant stores 10/20.
        let consts: Vec<i64> = a
            .blocks()
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter_map(|i| match i {
                Inst::Const { value, .. } => Some(*value),
                _ => None,
            })
            .collect();
        assert!(consts.contains(&10) && consts.contains(&20));
    }

    #[test]
    fn array_load_store() {
        let a = app("app t; var buf[8]; func main() { buf[1] = buf[0] + 1; }");
        let entry = a.block(a.entry());
        assert!(entry.insts.iter().any(|i| matches!(i, Inst::Load { .. })));
        assert!(entry.insts.iter().any(|i| matches!(i, Inst::Store { .. })));
        assert_eq!(a.memory_words(), 8);
        assert_eq!(a.array(ArrayId(0)).base_word, 0);
    }

    #[test]
    fn arrays_get_consecutive_bases() {
        let a = app("app t; var x[8]; var y[4]; var z[2]; func main() { }");
        assert_eq!(a.arrays()[0].base_word, 0);
        assert_eq!(a.arrays()[1].base_word, 8);
        assert_eq!(a.arrays()[2].base_word, 12);
        assert_eq!(a.memory_words(), 14);
    }

    #[test]
    fn error_no_main() {
        let e = lower_err("app t; func helper() { }");
        assert!(e.to_string().contains("no `main`"));
    }

    #[test]
    fn error_undefined_var() {
        let e = lower_err("app t; func main() { var x = y; }");
        assert!(e.to_string().contains("undefined variable `y`"));
    }

    #[test]
    fn error_undefined_function() {
        let e = lower_err("app t; func main() { nope(); }");
        assert!(e.to_string().contains("undefined function"));
    }

    #[test]
    fn error_arity_mismatch() {
        let e = lower_err("app t; func f(a, b) { } func main() { f(1); }");
        assert!(e.to_string().contains("takes 2 argument(s)"));
    }

    #[test]
    fn error_recursion() {
        let e = lower_err("app t; func f(x) { return f(x); } func main() { f(1); }");
        assert!(e.to_string().contains("recursion"));
    }

    #[test]
    fn error_mutual_recursion() {
        let e = lower_err(
            "app t; func f(x) { return g(x); } func g(x) { return f(x); } func main() { f(1); }",
        );
        assert!(e.to_string().contains("recursion"));
    }

    #[test]
    fn error_assign_to_const() {
        let e = lower_err("app t; const K = 1; func main() { K = 2; }");
        assert!(e.to_string().contains("cannot assign to constant"));
    }

    #[test]
    fn error_duplicate_declarations() {
        assert!(lower(&parse("app t; const A = 1; const A = 2; func main() {}").unwrap()).is_err());
        assert!(lower(&parse("app t; var g = 1; var g = 2; func main() {}").unwrap()).is_err());
        assert!(lower(&parse("app t; var a[2]; var a[3]; func main() {}").unwrap()).is_err());
    }

    #[test]
    fn code_after_return_is_unreachable_but_lowers() {
        let a = app("app t; var g = 0; func main() { return; g = 1; }");
        // Lowered fine; entry's terminator is a return.
        assert!(matches!(a.block(a.entry()).term, Terminator::Return(None)));
    }

    #[test]
    fn structure_blocks_are_disjoint() {
        let a = app(r#"app t; var acc = 0; var buf[16];
            func main() {
                acc = 1;
                for (var i = 0; i < 16; i = i + 1) { buf[i] = i; }
                if (acc > 0) { acc = 2; } else { acc = 3; }
                while (acc > 0) { acc = acc - 1; }
                acc = 9;
            }"#);
        fn collect(nodes: &[StructNode], out: &mut Vec<BlockId>) {
            for n in nodes {
                match n {
                    StructNode::Straight { blocks } => out.extend(blocks),
                    _ => out.extend(n.blocks()),
                }
            }
        }
        let mut all = Vec::new();
        collect(a.structure(), &mut all);
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len(), "structure nodes share blocks");
    }
}
