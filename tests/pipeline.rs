//! Cross-crate pipeline consistency: the profiling interpreter, the
//! compiled ISS and the cache hierarchy must agree with each other on
//! every bundled paper workload.

use std::collections::HashSet;

use corepart::system::SystemConfig;
use corepart_ir::cluster::{cluster_invocations, decompose};
use corepart_ir::interp::Interpreter;
use corepart_isa::codegen::compile_with_profile;
use corepart_isa::simulator::{NullSink, SimConfig, Simulator};
use corepart_workloads::all;

const BUDGET: u64 = 400_000_000;

#[test]
fn iss_matches_interpreter_on_all_paper_workloads() {
    for w in all() {
        let app = w.app().expect("lowers");
        let mut interp = Interpreter::new(&app);
        for (name, data) in w.arrays(3) {
            interp.set_array(&name, &data).expect("arrays");
        }
        let profile = interp.run(BUDGET).expect("interpreter run");

        let prog = compile_with_profile(&app, Some(&profile));
        let mut sim = Simulator::new(&prog, &app);
        for (name, data) in w.arrays(3) {
            sim.set_array(&name, &data).expect("arrays");
        }
        let stats = sim
            .run(&SimConfig::initial(BUDGET), &mut NullSink)
            .expect("ISS run");

        assert_eq!(
            Some(stats.return_value),
            profile.return_value,
            "{}: return value mismatch",
            w.name
        );
        // Every array's final contents must agree.
        for info in app.arrays() {
            assert_eq!(
                sim.array(&info.name).expect("exists"),
                interp.array(&info.name).expect("exists"),
                "{}: array `{}` diverged",
                w.name,
                info.name
            );
        }
    }
}

#[test]
fn hw_marking_never_changes_semantics() {
    // Marking any single cluster as hardware must leave all results
    // identical (the ISS executes it functionally either way).
    for w in all() {
        let app = w.app().expect("lowers");
        let mut interp = Interpreter::new(&app);
        for (name, data) in w.arrays(3) {
            interp.set_array(&name, &data).expect("arrays");
        }
        let profile = interp.run(BUDGET).expect("interpreter run");
        let prog = compile_with_profile(&app, Some(&profile));
        let chain = decompose(&app);

        let Some(hot) = chain.iter().find(|c| c.is_loop()) else {
            continue;
        };
        let hw: HashSet<_> = hot.blocks.iter().copied().collect();

        let mut sim = Simulator::new(&prog, &app);
        for (name, data) in w.arrays(3) {
            sim.set_array(&name, &data).expect("arrays");
        }
        let cut = sim
            .run(&SimConfig::partitioned(BUDGET, hw), &mut NullSink)
            .expect("partitioned ISS run");
        assert_eq!(
            Some(cut.return_value),
            profile.return_value,
            "{}: partitioned run changed the result",
            w.name
        );
        // And it must be strictly cheaper for the µP.
        let mut sim2 = Simulator::new(&prog, &app);
        for (name, data) in w.arrays(3) {
            sim2.set_array(&name, &data).expect("arrays");
        }
        let full = sim2
            .run(&SimConfig::initial(BUDGET), &mut NullSink)
            .expect("full ISS run");
        assert!(cut.cycles < full.cycles, "{}", w.name);
        assert!(cut.energy < full.energy, "{}", w.name);
    }
}

#[test]
fn block_attribution_identities_hold() {
    for w in all() {
        let app = w.app().expect("lowers");
        let mut interp = Interpreter::new(&app);
        for (name, data) in w.arrays(3) {
            interp.set_array(&name, &data).expect("arrays");
        }
        let profile = interp.run(BUDGET).expect("interpreter run");
        let prog = compile_with_profile(&app, Some(&profile));
        let mut sim = Simulator::new(&prog, &app);
        for (name, data) in w.arrays(3) {
            sim.set_array(&name, &data).expect("arrays");
        }
        let stats = sim
            .run(&SimConfig::initial(BUDGET), &mut NullSink)
            .expect("ISS run");

        let cycle_sum: u64 = stats.block_cycles.iter().sum();
        assert_eq!(cycle_sum, stats.cycles.count(), "{}", w.name);
        let energy_sum: f64 = stats.block_energy.iter().map(|e| e.joules()).sum();
        // Different accumulation order => bounded float drift.
        assert!(
            (energy_sum - stats.energy.joules()).abs() <= 1e-9 * energy_sum.max(1e-30),
            "{}: block energies don't sum to the total",
            w.name
        );
    }
}

#[test]
fn cluster_invocations_bounded_by_block_counts() {
    for w in all() {
        let app = w.app().expect("lowers");
        let mut interp = Interpreter::new(&app);
        for (name, data) in w.arrays(3) {
            interp.set_array(&name, &data).expect("arrays");
        }
        let profile = interp.run(BUDGET).expect("interpreter run");
        let chain = decompose(&app);
        for c in chain.iter() {
            let inv = cluster_invocations(&app, &profile, c);
            assert!(
                inv <= profile.count(c.entry),
                "{}: {} invocations exceed entry count",
                w.name,
                c.label
            );
            // A cluster that executed must have been invoked.
            if profile.count(c.entry) > 0 {
                assert!(
                    inv > 0,
                    "{}: {} executed but 0 invocations",
                    w.name,
                    c.label
                );
            }
        }
    }
}

#[test]
fn paper_workloads_structurally_verified() {
    // The lowering-recorded structure tree (which cluster decomposition
    // trusts) must agree with dominator facts on every real workload.
    for w in all() {
        let app = w.app().expect("lowers");
        let violations = corepart_ir::domtree::verify_structure(&app);
        assert!(violations.is_empty(), "{}: {violations:?}", w.name);
    }
}

#[test]
fn initial_evaluation_is_deterministic() {
    use corepart::evaluate::evaluate_initial;
    use corepart::prepare::{prepare, Workload};
    let w = corepart_workloads::by_name("engine").expect("engine");
    let config = SystemConfig::new();
    let run = || {
        let prepared = prepare(
            w.app().expect("lowers"),
            Workload::from_arrays(w.arrays(3)),
            &config,
        )
        .expect("prepares");
        let (m, _) = evaluate_initial(&prepared, &config).expect("evaluates");
        (m.total_energy().joules(), m.total_cycles().count())
    };
    assert_eq!(run(), run());
}
