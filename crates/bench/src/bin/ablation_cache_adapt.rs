//! Ablation **A4** — cache adaptation after partitioning.
//!
//! §1 (footnote 2): "those other cores have to be adapted efficiently
//! (e.g. size of memory, size of caches, cache policy etc.) according
//! to the particular hw/sw partitioning chosen. This is because … the
//! access pattern may change when a different hw/sw partition is used."
//!
//! This experiment partitions each application once, then sweeps the
//! cache capacity of the *partitioned* system: after the hot kernel
//! leaves the µP core, a far smaller instruction/data cache often
//! suffices — shrinking it recovers further cache energy without
//! hurting the (already reduced) miss ratios much.
//!
//! ```text
//! cargo run --release -p corepart-bench --bin ablation_cache_adapt
//! ```

use corepart::engine::Engine;
use corepart::partition::Partitioner;
use corepart::prepare::Workload;
use corepart::system::SystemConfig;
use corepart_bench::SEED;
use corepart_workloads::all;

fn main() {
    println!("A4: cache-size adaptation of the partitioned design\n");
    println!(
        "{:<8} {:>7} {:>14} {:>10} {:>10}",
        "app", "cache", "total energy", "i$ miss%", "d$ miss%"
    );
    for w in all() {
        let base_config = SystemConfig::new();
        let app = w.app().expect("bundled workload lowers");
        let workload = Workload::from_arrays(w.arrays(SEED));
        // One engine per application: every cache geometry below shares
        // the prepared app and the schedule cache; only the baseline
        // simulation splits per cache configuration.
        let engine = Engine::new(base_config.clone()).expect("engine");
        let session = engine.session(&app, &workload);
        let partitioner = Partitioner::new(&session).expect("initial run");
        let outcome = partitioner.run().expect("search");
        let Some((partition, _)) = outcome.best else {
            println!("{:<8} (no partition found — skipped)\n", w.name);
            continue;
        };

        for kb in [1usize, 2, 4, 8] {
            let icache = base_config
                .icache
                .with_size(kb * 1024)
                .expect("power-of-two cache size");
            let dcache = base_config
                .dcache
                .with_size(kb * 1024)
                .expect("power-of-two cache size");
            let config = base_config.clone().with_caches(icache, dcache);
            // Re-evaluate the same partition under the adapted caches.
            let adapted = engine
                .session_with_config(&app, &workload, config)
                .expect("valid config");
            let p2 = Partitioner::new(&adapted).expect("initial");
            match p2.evaluate(&partition) {
                Ok(detail) => println!(
                    "{:<8} {:>5}kB {:>14} {:>10.2} {:>10.2}",
                    w.name,
                    kb,
                    format!("{}", detail.metrics.total_energy()),
                    detail.metrics.icache_miss_ratio * 100.0,
                    detail.metrics.dcache_miss_ratio * 100.0,
                ),
                Err(e) => println!("{:<8} {:>5}kB evaluation failed: {e}", w.name, kb),
            }
        }
        println!();
    }
}
