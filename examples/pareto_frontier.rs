//! Pareto-frontier extraction with the [`corepart::explore`] API — the
//! automated version of §3.5's designer-interaction loop, applied to a
//! generated micro-kernel.
//!
//! ```text
//! cargo run --release -p corepart --example pareto_frontier
//! ```

use corepart::error::CorepartError;
use corepart::explore::{explore, hardware_weight_sweep};
use corepart::prepare::Workload;
use corepart::system::SystemConfig;
use corepart_ir::lower::lower;
use corepart_ir::parser::parse;
use corepart_workloads::kernels::fir;

fn main() -> Result<(), CorepartError> {
    // A 12-tap FIR at seed 7 — any kernel from the suite works.
    let kernel = fir(192, 12, 7);
    let workload = Workload::from_arrays(kernel.arrays.clone());

    // Sweep the objective's hardware weight, plus two cache variants.
    let mut configs = hardware_weight_sweep(&[0.0, 0.2, 1.0, 4.0], &SystemConfig::new());
    for kb in [2usize, 4] {
        let base = SystemConfig::new();
        let icache = base.icache.with_size(kb * 1024).expect("power of two");
        let dcache = base.dcache.with_size(kb * 1024).expect("power of two");
        configs.push((
            format!("G = 0.2, {kb}kB caches"),
            base.with_caches(icache, dcache),
        ));
    }

    let app = lower(&parse(&kernel.source)?)?;
    let exploration = explore(&app, &workload, &configs)?;

    println!(
        "explored {} design points for `{}`\n",
        exploration.points.len(),
        kernel.name
    );
    println!("Pareto frontier (energy / cycles / hardware):\n");
    print!("{}", exploration.render_frontier());

    let best_e = exploration.min_energy().expect("non-empty");
    let best_t = exploration.min_cycles().expect("non-empty");
    println!(
        "\nminimum-energy point: {} ({})",
        best_e.label, best_e.energy
    );
    println!(
        "minimum-cycles point: {} ({} cycles)",
        best_t.label, best_t.cycles
    );
    Ok(())
}
