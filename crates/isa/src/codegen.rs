//! Compiler from the [`Application`] CDFG to the SPARC-like machine
//! code of the µP core.
//!
//! The generated code is what the "software part" of a partition
//! executes on the µP core. Register allocation is frequency-based:
//! the hottest scalars (optionally weighted by a profiling run) are kept
//! in registers, the rest live in memory *slots* accessed through
//! scratch registers — producing the instruction and data-reference
//! streams the instruction-set and cache simulators consume.
//!
//! ## Memory map (byte addresses)
//!
//! | region            | base          |
//! |-------------------|---------------|
//! | shared arrays     | `0x0000_1000` |
//! | scalar slots      | `0x0008_0000` |
//! | code (word/inst)  | `0x0010_0000` |

use std::collections::HashMap;

use corepart_ir::cdfg::Application;
use corepart_ir::interp::ExecProfile;
use corepart_ir::op::{BinOp, BlockId, Inst, Operand, Terminator, UnOp, VarId};

use crate::isa::{AluOp, MachInst, Reg, RegImm};

/// Base byte address of the shared-memory arrays.
pub const DATA_BASE: u32 = 0x0000_1000;
/// Base byte address of spilled scalar slots.
pub const SLOT_BASE: u32 = 0x0008_0000;
/// Base byte address of the code region (for i-fetch addresses).
pub const CODE_BASE: u32 = 0x0010_0000;

/// Where a scalar variable lives at machine level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarLoc {
    /// Pinned in a register.
    Reg(Reg),
    /// Spilled to the slot at this byte address.
    Slot(u32),
}

/// A compiled program plus the IR↔machine mapping the evaluators need.
#[derive(Debug, Clone, PartialEq)]
pub struct MachProgram {
    insts: Vec<MachInst>,
    /// First instruction index of each block.
    block_start: Vec<u32>,
    /// Owning block of each instruction.
    pc_block: Vec<BlockId>,
    /// Location of every IR variable.
    var_loc: Vec<VarLoc>,
}

impl MachProgram {
    /// The machine instructions.
    pub fn insts(&self) -> &[MachInst] {
        &self.insts
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when the program is empty (never produced by `compile`).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The block owning instruction `pc`.
    pub fn block_of(&self, pc: u32) -> BlockId {
        self.pc_block[pc as usize]
    }

    /// First instruction index of `block`.
    pub fn block_start(&self, block: BlockId) -> u32 {
        self.block_start[block.0 as usize]
    }

    /// Where variable `v` lives.
    pub fn var_loc(&self, v: VarId) -> VarLoc {
        self.var_loc[v.0 as usize]
    }

    /// Locations of all variables, indexed by [`VarId`].
    pub fn var_locs(&self) -> &[VarLoc] {
        &self.var_loc
    }

    /// Byte address of instruction `pc` (for i-cache simulation).
    pub fn inst_addr(&self, pc: u32) -> u32 {
        CODE_BASE + pc * 4
    }

    /// Disassembles the program.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (pc, inst) in self.insts.iter().enumerate() {
            out.push_str(&format!("{pc:5}  {inst}\n"));
        }
        out
    }
}

/// Compiles an application with static frequency estimates.
///
/// Equivalent to [`compile_with_profile`] with no profile.
pub fn compile(app: &Application) -> MachProgram {
    compile_with_profile(app, None)
}

/// Compiles an application, using a profiling run (if given) to decide
/// which scalars deserve registers.
pub fn compile_with_profile(app: &Application, profile: Option<&ExecProfile>) -> MachProgram {
    let var_loc = allocate_vars(app, profile);
    let mut cg = Codegen {
        app,
        var_loc,
        insts: Vec::new(),
        pc_block: Vec::new(),
        block_start: vec![0; app.blocks().len()],
        fixups: Vec::new(),
    };
    cg.run();
    MachProgram {
        insts: cg.insts,
        block_start: cg.block_start,
        pc_block: cg.pc_block,
        var_loc: cg.var_loc,
    }
}

/// Registers available for pinning variables.
const HOT_REGS: std::ops::Range<u8> = 8..28;
/// Scratch registers used by the code generator.
const S1: Reg = Reg(1);
const S2: Reg = Reg(2);
const S3: Reg = Reg(3);
/// Address-computation scratch.
const SA: Reg = Reg(4);

fn allocate_vars(app: &Application, profile: Option<&ExecProfile>) -> Vec<VarLoc> {
    // Score every variable by (weighted) occurrence count.
    let mut score: HashMap<VarId, u64> = HashMap::new();
    for (bi, block) in app.blocks().iter().enumerate() {
        let weight = profile.map(|p| p.block_counts[bi].max(1)).unwrap_or(1);
        for inst in &block.insts {
            if let Some(d) = inst.def() {
                *score.entry(d).or_insert(0) += weight;
            }
            for u in inst.uses() {
                *score.entry(u).or_insert(0) += weight;
            }
        }
        if let Some(u) = block.term.use_var() {
            *score.entry(u).or_insert(0) += weight;
        }
    }
    let mut ranked: Vec<(VarId, u64)> = score.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut loc = vec![VarLoc::Slot(0); app.vars().len()];
    let mut next_reg = HOT_REGS.start;
    let mut pinned: Vec<VarId> = Vec::new();
    for (v, _) in ranked {
        if next_reg < HOT_REGS.end {
            loc[v.0 as usize] = VarLoc::Reg(Reg(next_reg));
            pinned.push(v);
            next_reg += 1;
        }
    }
    // Everything else gets a slot.
    let mut next_slot = SLOT_BASE;
    for (i, l) in loc.iter_mut().enumerate() {
        if matches!(l, VarLoc::Slot(_)) {
            *l = VarLoc::Slot(next_slot);
            next_slot += 4;
            let _ = i;
        }
    }
    loc
}

struct Codegen<'a> {
    app: &'a Application,
    var_loc: Vec<VarLoc>,
    insts: Vec<MachInst>,
    pc_block: Vec<BlockId>,
    block_start: Vec<u32>,
    /// (pc, target block) pairs to patch once layout is known.
    fixups: Vec<(u32, BlockId)>,
}

impl Codegen<'_> {
    fn emit(&mut self, block: BlockId, inst: MachInst) -> u32 {
        let pc = self.insts.len() as u32;
        self.insts.push(inst);
        self.pc_block.push(block);
        pc
    }

    fn run(&mut self) {
        let entry = self.app.entry();
        // Prologue: initialize global scalars (attributed to the entry
        // block, like crt0 would be).
        for &(v, init) in self.app.globals_init() {
            match self.var_loc[v.0 as usize] {
                VarLoc::Reg(r) => {
                    self.emit(entry, MachInst::Movi { rd: r, imm: init });
                }
                VarLoc::Slot(addr) => {
                    self.emit(entry, MachInst::Movi { rd: S1, imm: init });
                    self.emit(
                        entry,
                        MachInst::Stw {
                            rs: S1,
                            base: Reg::ZERO,
                            offset: addr as i32,
                        },
                    );
                }
            }
        }
        if entry.0 != 0 {
            let pc = self.emit(entry, MachInst::Jmp { target: 0 });
            self.fixups.push((pc, entry));
        }

        // Lay blocks out in id order; fall through where possible.
        for (bi, block) in self.app.blocks().iter().enumerate() {
            let bid = BlockId(bi as u32);
            self.block_start[bi] = self.insts.len() as u32;
            for inst in block.insts.clone() {
                self.lower_inst(bid, &inst);
            }
            match block.term.clone() {
                Terminator::Jump(t) => {
                    if t.0 as usize != bi + 1 {
                        let pc = self.emit(bid, MachInst::Jmp { target: 0 });
                        self.fixups.push((pc, t));
                    }
                }
                Terminator::Branch {
                    cond,
                    then_block,
                    else_block,
                } => {
                    let rc = self.operand_reg(bid, cond, S1);
                    let pc = self.emit(bid, MachInst::Bnez { rs: rc, target: 0 });
                    self.fixups.push((pc, then_block));
                    if else_block.0 as usize != bi + 1 {
                        let pc = self.emit(bid, MachInst::Jmp { target: 0 });
                        self.fixups.push((pc, else_block));
                    }
                }
                Terminator::Return(op) => {
                    if let Some(op) = op {
                        // Return value lands in r1 by convention.
                        let r = self.operand_reg(bid, op, S1);
                        if r != S1 {
                            self.emit(
                                bid,
                                MachInst::Alu {
                                    op: AluOp::Or,
                                    rd: S1,
                                    rs1: r,
                                    rhs: RegImm::Reg(Reg::ZERO),
                                },
                            );
                        }
                    }
                    self.emit(bid, MachInst::Halt);
                }
            }
        }
        // Patch branch targets.
        for &(pc, target) in &self.fixups {
            let t = self.block_start[target.0 as usize];
            match &mut self.insts[pc as usize] {
                MachInst::Jmp { target }
                | MachInst::Beqz { target, .. }
                | MachInst::Bnez { target, .. } => *target = t,
                other => unreachable!("fixup on non-branch {other}"),
            }
        }
    }

    /// Materializes an operand into a register (possibly `scratch`).
    fn operand_reg(&mut self, block: BlockId, op: Operand, scratch: Reg) -> Reg {
        match op {
            Operand::Const(0) => Reg::ZERO,
            Operand::Const(c) => {
                self.emit(
                    block,
                    MachInst::Movi {
                        rd: scratch,
                        imm: c,
                    },
                );
                scratch
            }
            Operand::Var(v) => match self.var_loc[v.0 as usize] {
                VarLoc::Reg(r) => r,
                VarLoc::Slot(addr) => {
                    self.emit(
                        block,
                        MachInst::Ldw {
                            rd: scratch,
                            base: Reg::ZERO,
                            offset: addr as i32,
                        },
                    );
                    scratch
                }
            },
        }
    }

    /// The register results for `v` should be computed into; spilled
    /// variables use `scratch` and get a store afterwards.
    fn dest_reg(&self, v: VarId, scratch: Reg) -> Reg {
        match self.var_loc[v.0 as usize] {
            VarLoc::Reg(r) => r,
            VarLoc::Slot(_) => scratch,
        }
    }

    fn finish_def(&mut self, block: BlockId, v: VarId, computed_in: Reg) {
        if let VarLoc::Slot(addr) = self.var_loc[v.0 as usize] {
            self.emit(
                block,
                MachInst::Stw {
                    rs: computed_in,
                    base: Reg::ZERO,
                    offset: addr as i32,
                },
            );
        }
    }

    /// Second-source operand: immediate stays immediate (SPARC
    /// reg-or-imm), register/slot is materialized.
    fn operand_rhs(&mut self, block: BlockId, op: Operand, scratch: Reg) -> RegImm {
        match op {
            Operand::Const(c) => RegImm::Imm(c),
            Operand::Var(v) => match self.var_loc[v.0 as usize] {
                VarLoc::Reg(r) => RegImm::Reg(r),
                VarLoc::Slot(addr) => {
                    self.emit(
                        block,
                        MachInst::Ldw {
                            rd: scratch,
                            base: Reg::ZERO,
                            offset: addr as i32,
                        },
                    );
                    RegImm::Reg(scratch)
                }
            },
        }
    }

    fn lower_inst(&mut self, block: BlockId, inst: &Inst) {
        match inst {
            Inst::Const { dst, value } => {
                let rd = self.dest_reg(*dst, S1);
                self.emit(block, MachInst::Movi { rd, imm: *value });
                self.finish_def(block, *dst, rd);
            }
            Inst::Copy { dst, src } => {
                let rs = self.operand_reg(block, *src, S1);
                let rd = self.dest_reg(*dst, S1);
                if rd != rs {
                    self.emit(
                        block,
                        MachInst::Alu {
                            op: AluOp::Or,
                            rd,
                            rs1: rs,
                            rhs: RegImm::Reg(Reg::ZERO),
                        },
                    );
                }
                self.finish_def(block, *dst, rd);
            }
            Inst::Unary { dst, op, src } => {
                let rd = self.dest_reg(*dst, S1);
                match op {
                    UnOp::Neg => {
                        let rhs = self.operand_rhs(block, *src, S2);
                        self.emit(
                            block,
                            MachInst::Alu {
                                op: AluOp::Sub,
                                rd,
                                rs1: Reg::ZERO,
                                rhs,
                            },
                        );
                    }
                    UnOp::Not => {
                        let rs = self.operand_reg(block, *src, S2);
                        self.emit(
                            block,
                            MachInst::Alu {
                                op: AluOp::Seq,
                                rd,
                                rs1: rs,
                                rhs: RegImm::Reg(Reg::ZERO),
                            },
                        );
                    }
                    UnOp::BitNot => {
                        let rs = self.operand_reg(block, *src, S2);
                        self.emit(
                            block,
                            MachInst::Alu {
                                op: AluOp::Xor,
                                rd,
                                rs1: rs,
                                rhs: RegImm::Imm(-1),
                            },
                        );
                    }
                }
                self.finish_def(block, *dst, rd);
            }
            Inst::Binary { dst, op, lhs, rhs } => {
                let rs1 = self.operand_reg(block, *lhs, S2);
                let rhs = self.operand_rhs(block, *rhs, S3);
                let rd = self.dest_reg(*dst, S1);
                let mi = match op {
                    BinOp::Add => alu(AluOp::Add, rd, rs1, rhs),
                    BinOp::Sub => alu(AluOp::Sub, rd, rs1, rhs),
                    BinOp::And => alu(AluOp::And, rd, rs1, rhs),
                    BinOp::Or => alu(AluOp::Or, rd, rs1, rhs),
                    BinOp::Xor => alu(AluOp::Xor, rd, rs1, rhs),
                    BinOp::Shl => alu(AluOp::Sll, rd, rs1, rhs),
                    BinOp::Shr => alu(AluOp::Sra, rd, rs1, rhs),
                    BinOp::Eq => alu(AluOp::Seq, rd, rs1, rhs),
                    BinOp::Ne => alu(AluOp::Sne, rd, rs1, rhs),
                    BinOp::Lt => alu(AluOp::Slt, rd, rs1, rhs),
                    BinOp::Le => alu(AluOp::Sle, rd, rs1, rhs),
                    BinOp::Gt => alu(AluOp::Sgt, rd, rs1, rhs),
                    BinOp::Ge => alu(AluOp::Sge, rd, rs1, rhs),
                    BinOp::Mul => MachInst::Mul { rd, rs1, rhs },
                    BinOp::Div => MachInst::Div { rd, rs1, rhs },
                    BinOp::Rem => MachInst::Rem { rd, rs1, rhs },
                };
                self.emit(block, mi);
                self.finish_def(block, *dst, rd);
            }
            Inst::Load { dst, array, index } => {
                let info = self.app.array(*array);
                let base_addr = DATA_BASE + info.base_word * 4;
                let rd = self.dest_reg(*dst, S1);
                match index {
                    Operand::Const(c) => {
                        self.emit(
                            block,
                            MachInst::Ldw {
                                rd,
                                base: Reg::ZERO,
                                offset: base_addr as i32 + (*c as i32) * 4,
                            },
                        );
                    }
                    Operand::Var(_) => {
                        let ri = self.operand_reg(block, *index, SA);
                        self.emit(
                            block,
                            MachInst::Alu {
                                op: AluOp::Sll,
                                rd: SA,
                                rs1: ri,
                                rhs: RegImm::Imm(2),
                            },
                        );
                        self.emit(
                            block,
                            MachInst::Ldw {
                                rd,
                                base: SA,
                                offset: base_addr as i32,
                            },
                        );
                    }
                }
                self.finish_def(block, *dst, rd);
            }
            Inst::Store {
                array,
                index,
                value,
            } => {
                let info = self.app.array(*array);
                let base_addr = DATA_BASE + info.base_word * 4;
                match index {
                    Operand::Const(c) => {
                        let rv = self.operand_reg(block, *value, S1);
                        self.emit(
                            block,
                            MachInst::Stw {
                                rs: rv,
                                base: Reg::ZERO,
                                offset: base_addr as i32 + (*c as i32) * 4,
                            },
                        );
                    }
                    Operand::Var(_) => {
                        let ri = self.operand_reg(block, *index, SA);
                        self.emit(
                            block,
                            MachInst::Alu {
                                op: AluOp::Sll,
                                rd: SA,
                                rs1: ri,
                                rhs: RegImm::Imm(2),
                            },
                        );
                        let rv = self.operand_reg(block, *value, S1);
                        self.emit(
                            block,
                            MachInst::Stw {
                                rs: rv,
                                base: SA,
                                offset: base_addr as i32,
                            },
                        );
                    }
                }
            }
            Inst::Call { .. } => {
                unreachable!("Call instructions are inlined before codegen")
            }
        }
    }
}

fn alu(op: AluOp, rd: Reg, rs1: Reg, rhs: RegImm) -> MachInst {
    MachInst::Alu { op, rd, rs1, rhs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corepart_ir::lower::lower;
    use corepart_ir::parser::parse;

    fn compile_src(src: &str) -> MachProgram {
        let app = lower(&parse(src).unwrap()).unwrap();
        compile(&app)
    }

    #[test]
    fn compiles_straight_line() {
        let p = compile_src("app t; var g = 2; func main() { g = g * 3 + 1; }");
        assert!(!p.is_empty());
        assert!(p.insts().iter().any(|i| matches!(i, MachInst::Mul { .. })));
        assert!(p.insts().iter().any(|i| matches!(i, MachInst::Halt)));
    }

    #[test]
    fn branch_targets_resolve() {
        let p =
            compile_src("app t; var g = 1; func main() { if (g > 0) { g = 2; } else { g = 3; } }");
        for inst in p.insts() {
            match inst {
                MachInst::Jmp { target }
                | MachInst::Beqz { target, .. }
                | MachInst::Bnez { target, .. } => {
                    assert!((*target as usize) < p.len(), "target {target} out of range");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn loop_has_backward_branch() {
        let p = compile_src("app t; var g = 10; func main() { while (g > 0) { g = g - 1; } }");
        let backward = p.insts().iter().enumerate().any(|(pc, i)| match i {
            MachInst::Jmp { target }
            | MachInst::Beqz { target, .. }
            | MachInst::Bnez { target, .. } => (*target as usize) <= pc,
            _ => false,
        });
        assert!(backward);
    }

    #[test]
    fn hot_var_gets_register() {
        // `g` appears many times -> should be pinned.
        let p = compile_src(
            "app t; var g = 0; func main() { g = g + 1; g = g + 2; g = g + 3; g = g * g; }",
        );
        let g = VarId(0);
        assert!(matches!(p.var_loc(g), VarLoc::Reg(_)));
    }

    #[test]
    fn spilled_vars_get_distinct_slots() {
        // Force >20 variables so some spill.
        let mut body = String::new();
        for i in 0..30 {
            body.push_str(&format!("var x{i} = {i};\n"));
        }
        body.push_str("x0 = x29;");
        let p = compile_src(&format!("app t; func main() {{ {body} }}"));
        let mut slots = std::collections::HashSet::new();
        let mut spilled = 0;
        for loc in p.var_locs() {
            if let VarLoc::Slot(addr) = loc {
                assert!(slots.insert(*addr), "slot reused");
                assert!(*addr >= SLOT_BASE);
                spilled += 1;
            }
        }
        assert!(spilled > 0, "expected spills with 30 variables");
    }

    #[test]
    fn array_access_uses_data_base() {
        let p = compile_src("app t; var a[8]; func main() { a[2] = 7; }");
        let has_store_at = p.insts().iter().any(|i| match i {
            MachInst::Stw { base, offset, .. } => {
                *base == Reg::ZERO && *offset == (DATA_BASE + 8) as i32
            }
            _ => false,
        });
        assert!(has_store_at, "{}", p.disassemble());
    }

    #[test]
    fn dynamic_index_shifts_by_two() {
        let p = compile_src("app t; var a[8]; var g = 3; func main() { a[g] = 1; }");
        let has_sll2 = p.insts().iter().any(|i| {
            matches!(
                i,
                MachInst::Alu {
                    op: AluOp::Sll,
                    rhs: RegImm::Imm(2),
                    ..
                }
            )
        });
        assert!(has_sll2);
    }

    #[test]
    fn block_mapping_covers_all_pcs() {
        let p = compile_src("app t; var g = 5; func main() { while (g > 0) { g = g - 1; } }");
        for pc in 0..p.len() as u32 {
            let b = p.block_of(pc);
            // Block ids must be valid (small).
            assert!(b.0 < 64);
            let _ = p.inst_addr(pc);
        }
        assert_eq!(p.inst_addr(0), CODE_BASE);
        assert_eq!(p.inst_addr(2), CODE_BASE + 8);
    }

    #[test]
    fn profile_guided_allocation_prefers_hot_blocks() {
        use corepart_ir::interp::Interpreter;
        let src = r#"app t; var cold = 0; var a[64];
            func main() {
                cold = 7;
                for (var i = 0; i < 64; i = i + 1) { a[i] = a[i] + i; }
            }"#;
        let app = lower(&parse(src).unwrap()).unwrap();
        let profile = Interpreter::new(&app).run(1_000_000).unwrap();
        let p = compile_with_profile(&app, Some(&profile));
        // The loop counter must be in a register.
        let i_var = VarId(
            app.vars()
                .iter()
                .position(|v| v.name.as_deref() == Some("i"))
                .unwrap() as u32,
        );
        assert!(matches!(p.var_loc(i_var), VarLoc::Reg(_)));
    }
}
