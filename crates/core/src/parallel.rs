//! Deterministic fork-join helpers for the search engine.
//!
//! The partitioner's hot loops — the candidate × resource-set estimate
//! grid, the greedy-growth rounds, and the configuration sweep of
//! [`crate::explore`](mod@crate::explore) — are embarrassingly parallel maps whose results
//! must nevertheless be folded *in input order* so that ties break
//! identically on every thread count. [`par_map`] provides exactly
//! that: an order-preserving parallel map over a slice built on
//! [`std::thread::scope`], with work handed out through an atomic
//! cursor and results re-assembled by index. The output is the same
//! `Vec` the sequential `iter().map()` would produce, for any thread
//! count and any scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Resolves a worker-thread count: an explicit request wins, then the
/// `COREPART_THREADS` environment variable, then `RAYON_NUM_THREADS`
/// (honoured for familiarity even though the engine does not use
/// rayon), then the machine's available parallelism.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    for var in ["COREPART_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(value) = std::env::var(var) {
            if let Ok(n) = value.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// How [`par_map_with`] hands items to its workers. The output is the
/// input-order `Vec` either way — assignment affects load balance and
/// wall time, never results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Assignment {
    /// An atomic cursor: each worker grabs the next unclaimed index.
    /// Self-balancing for uniform items, but a worker that grabs a
    /// cluster of adjacent heavy items keeps them all.
    #[default]
    Dynamic,
    /// Static round-robin: worker `w` of `W` takes items `w`,
    /// `w + W`, `w + 2W`, …. Adjacent items land on *different*
    /// workers, so cost that clusters by position — stretch lists
    /// skewed by loop nests, candidate grids sorted by size — is
    /// spread instead of inherited whole by one thread.
    Interleaved,
}

/// Maps `f` over `items` on up to `threads` workers, returning the
/// results in input order.
///
/// `f` receives `(index, &items[index])`. With `threads <= 1` (or one
/// item) this degenerates to a plain sequential map on the calling
/// thread — the parallel path produces the identical `Vec`, so callers
/// may fold the output positionally without thinking about threading.
///
/// The item reference carries the slice's own lifetime, so `f` may
/// return values that borrow from the items (the exploration sweep
/// returns searchers borrowing their sessions).
///
/// # Panics
///
/// Re-raises a panic from `f` (workers are joined by the scope).
pub fn par_map<'a, T, U, F>(items: &'a [T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &'a T) -> U + Sync,
{
    par_map_with(items, threads, Assignment::Dynamic, f)
}

/// [`par_map`] with an explicit work-[`Assignment`] policy. Results
/// are re-assembled by index, so every policy and thread count yields
/// the same `Vec` a sequential `iter().map()` would.
pub fn par_map_with<'a, T, U, F>(
    items: &'a [T],
    threads: usize,
    assignment: Assignment,
    f: F,
) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &'a T) -> U + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, U)>();
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || match assignment {
                Assignment::Dynamic => loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    if tx.send((i, f(i, item))).is_err() {
                        break;
                    }
                },
                Assignment::Interleaved => {
                    let mut i = worker;
                    while let Some(item) = items.get(i) {
                        if tx.send((i, f(i, item))).is_err() {
                            break;
                        }
                        i += threads;
                    }
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
        for (i, u) in rx {
            out[i] = Some(u);
        }
        out.into_iter()
            .map(|slot| slot.expect("worker produced every index"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_on_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = par_map(&items, threads, |i, &x| {
                // Skew per-item latency so completion order scrambles.
                if i % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                x * x + 1
            });
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn interleaved_assignment_pins_output_order() {
        // Skewed per-item cost (heavy items cluster at the front, the
        // loop-nest shape of a stretch list): both policies, every
        // thread count, must return exactly the sequential Vec.
        let items: Vec<u64> = (0..193).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * 3 + 7).collect();
        for threads in [1, 2, 3, 8, 64] {
            for assignment in [Assignment::Dynamic, Assignment::Interleaved] {
                let got = par_map_with(&items, threads, assignment, |i, &x| {
                    if i < 20 {
                        std::thread::sleep(std::time::Duration::from_micros(300));
                    }
                    x * 3 + 7
                });
                assert_eq!(got, expected, "threads = {threads}, {assignment:?}");
            }
        }
    }

    #[test]
    fn interleaved_covers_every_index_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let items: Vec<usize> = (0..101).collect();
        let hits: Vec<AtomicU32> = (0..items.len()).map(|_| AtomicU32::new(0)).collect();
        par_map_with(&items, 7, Assignment::Interleaved, |i, _| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let empty: Vec<i32> = vec![];
        assert!(par_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(par_map(&[41], 4, |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn index_argument_matches_position() {
        let items = ["a", "b", "c", "d"];
        let got = par_map(&items, 2, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d"]);
    }

    #[test]
    fn explicit_request_wins_thread_resolution() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }
}
