//! Cache geometry and policy configuration.
//!
//! The paper stresses that cache cores "have to be adapted efficiently
//! (e.g. size of memory, size of caches, cache policy etc.) according to
//! the particular hw/sw partitioning chosen" (§1 footnote); this module
//! exposes exactly those knobs.

use std::error::Error;
use std::fmt;

/// Replacement policy of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Replacement {
    /// Least-recently-used.
    Lru,
    /// First-in-first-out.
    Fifo,
    /// Pseudo-random (deterministic xorshift, seeded per cache).
    Random,
}

impl fmt::Display for Replacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Replacement::Lru => "lru",
            Replacement::Fifo => "fifo",
            Replacement::Random => "random",
        };
        f.write_str(s)
    }
}

/// Write policy of a data cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WritePolicy {
    /// Write-back with write-allocate.
    WriteBack,
    /// Write-through, no write-allocate.
    WriteThrough,
}

impl fmt::Display for WritePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WritePolicy::WriteBack => "write-back",
            WritePolicy::WriteThrough => "write-through",
        };
        f.write_str(s)
    }
}

/// Invalid cache geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigCacheError {
    message: String,
}

impl fmt::Display for ConfigCacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cache configuration: {}", self.message)
    }
}

impl Error for ConfigCacheError {}

/// Full configuration of one cache core.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    size_bytes: usize,
    line_bytes: usize,
    associativity: usize,
    replacement: Replacement,
    write_policy: WritePolicy,
    /// Extra µP stall cycles per line fill.
    miss_penalty: u64,
    /// Next-line prefetch on read misses (tagged prefetch, typical for
    /// instruction caches of the era).
    prefetch: bool,
}

impl CacheConfig {
    /// Creates a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigCacheError`] unless sizes are powers of two,
    /// non-zero, and `line * associativity` divides `size`.
    pub fn new(
        size_bytes: usize,
        line_bytes: usize,
        associativity: usize,
        replacement: Replacement,
        write_policy: WritePolicy,
        miss_penalty: u64,
    ) -> Result<Self, ConfigCacheError> {
        let err = |m: &str| {
            Err(ConfigCacheError {
                message: m.to_owned(),
            })
        };
        if size_bytes == 0 || line_bytes == 0 || associativity == 0 {
            return err("sizes must be non-zero");
        }
        if !size_bytes.is_power_of_two() || !line_bytes.is_power_of_two() {
            return err("size and line must be powers of two");
        }
        if line_bytes < 4 {
            return err("line must hold at least one word");
        }
        if !size_bytes.is_multiple_of(line_bytes * associativity) {
            return err("line * associativity must divide size");
        }
        Ok(CacheConfig {
            size_bytes,
            line_bytes,
            associativity,
            replacement,
            write_policy,
            miss_penalty,
            prefetch: false,
        })
    }

    /// The paper-era default instruction cache: 8 kB, 16 B lines,
    /// direct-mapped, 8-cycle fill penalty.
    pub fn default_icache() -> Self {
        CacheConfig::new(
            8 * 1024,
            16,
            1,
            Replacement::Lru,
            WritePolicy::WriteThrough,
            8,
        )
        .expect("default icache geometry is valid")
    }

    /// The paper-era default data cache: 8 kB, 16 B lines,
    /// direct-mapped, write-back, 8-cycle fill penalty.
    pub fn default_dcache() -> Self {
        CacheConfig::new(8 * 1024, 16, 1, Replacement::Lru, WritePolicy::WriteBack, 8)
            .expect("default dcache geometry is valid")
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Ways per set.
    pub fn associativity(&self) -> usize {
        self.associativity
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.associativity)
    }

    /// Words per line.
    pub fn line_words(&self) -> usize {
        self.line_bytes / 4
    }

    /// Replacement policy.
    pub fn replacement(&self) -> Replacement {
        self.replacement
    }

    /// Write policy.
    pub fn write_policy(&self) -> WritePolicy {
        self.write_policy
    }

    /// µP stall cycles per line fill.
    pub fn miss_penalty(&self) -> u64 {
        self.miss_penalty
    }

    /// Whether next-line prefetch on read misses is enabled.
    pub fn prefetch(&self) -> bool {
        self.prefetch
    }

    /// Returns a copy with next-line prefetching enabled or disabled.
    pub fn with_prefetch(mut self, prefetch: bool) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Returns a copy with a different capacity.
    ///
    /// # Errors
    ///
    /// Same validation as [`CacheConfig::new`].
    pub fn with_size(&self, size_bytes: usize) -> Result<Self, ConfigCacheError> {
        CacheConfig::new(
            size_bytes,
            self.line_bytes,
            self.associativity,
            self.replacement,
            self.write_policy,
            self.miss_penalty,
        )
    }

    /// Returns a copy with a different associativity.
    ///
    /// # Errors
    ///
    /// Same validation as [`CacheConfig::new`].
    pub fn with_associativity(&self, associativity: usize) -> Result<Self, ConfigCacheError> {
        CacheConfig::new(
            self.size_bytes,
            self.line_bytes,
            associativity,
            self.replacement,
            self.write_policy,
            self.miss_penalty,
        )
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}kB/{}B/{}-way {} {}",
            self.size_bytes / 1024,
            self.line_bytes,
            self.associativity,
            self.replacement,
            self.write_policy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_valid() {
        let i = CacheConfig::default_icache();
        assert_eq!(i.sets(), 512);
        assert_eq!(i.line_words(), 4);
        let d = CacheConfig::default_dcache();
        assert_eq!(d.write_policy(), WritePolicy::WriteBack);
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(CacheConfig::new(0, 16, 1, Replacement::Lru, WritePolicy::WriteBack, 8).is_err());
        assert!(
            CacheConfig::new(1000, 16, 1, Replacement::Lru, WritePolicy::WriteBack, 8).is_err()
        );
        assert!(CacheConfig::new(1024, 2, 1, Replacement::Lru, WritePolicy::WriteBack, 8).is_err());
        assert!(
            CacheConfig::new(1024, 16, 3, Replacement::Lru, WritePolicy::WriteBack, 8).is_err()
        );
    }

    #[test]
    fn with_size_and_associativity() {
        let c = CacheConfig::default_dcache();
        let big = c.with_size(32 * 1024).unwrap();
        assert_eq!(big.sets(), 2048);
        let assoc = c.with_associativity(4).unwrap();
        assert_eq!(assoc.sets(), 128);
        assert!(c.with_size(1000).is_err());
    }

    #[test]
    fn display() {
        let c = CacheConfig::default_dcache();
        assert_eq!(format!("{c}"), "8kB/16B/1-way lru write-back");
    }
}
