//! The trace-replay verification engine.
//!
//! Verification (Fig. 1 lines 14–15) is the expensive end of the
//! search: a full instruction-set simulation plus the cache hierarchy
//! per candidate. But [`SimConfig::hw_blocks`] changes *accounting*
//! only — every candidate executes the identical instruction stream —
//! so the engine simulates **once** per prepared application/workload
//! (capturing the reference trace during the initial-design
//! evaluation, [`crate::evaluate::evaluate_initial_captured`]) and
//! verifies each candidate by *replaying* that capture with the
//! candidate's hardware-block set applied at replay time: no
//! re-interpretation, no re-decoding, no `set_array`
//! re-initialization.
//!
//! Replay reproduces [`RunStats`] and [`HierarchyReport`] **bit for
//! bit** (the same `f64` operations in the same order as the direct
//! simulation), and results are memoized per (trace fingerprint,
//! hardware-block set) in the same compute-once [`MemoCache`] the
//! schedule trio uses — distinct candidates that induce the same
//! hardware-block set (e.g. the same clusters under different resource
//! sets) share one replay.
//!
//! When the capture was discarded (byte cap exceeded, or capture
//! disabled), there is no engine and callers fall back to direct
//! simulation — see [`SystemConfig::trace_cap_bytes`].

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use corepart_cache::hierarchy::{Hierarchy, HierarchySnapshot};
use corepart_cache::HierarchyReport;
use corepart_ir::op::BlockId;
use corepart_isa::simulator::{RunStats, SimConfig, SimError};
use corepart_isa::trace::{BatchLanes, DecodedTrace, ReferenceTrace, TraceReplayer};
use corepart_sched::cache::MemoCache;

use crate::evaluate::HierarchySink;
use crate::parallel::{par_map_with, Assignment};
use crate::prepare::PreparedApp;
use crate::system::SystemConfig;

/// Execution knobs of a batched replay walk.
///
/// `threads` bounds the worker count of the stretch-sharded walk: the
/// K lanes are split into up to `threads` contiguous lane groups that
/// replay each stretch shard concurrently. Grouping changes
/// *scheduling only* — every lane still performs exactly its
/// sequential operation sequence, with its hierarchy state carried
/// across shard boundaries as [`HierarchySnapshot`]s — so results are
/// bit-identical for every `threads` value.
///
/// `shard_events` sets the shard granularity in trace events (`0`
/// picks a default of about an eighth of the trace); shards are the
/// rendezvous points at which lane groups re-synchronize so the
/// shared decoded stream stays hot across workers, and the boundaries
/// at which hierarchy state is snapshotted and resumed.
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Worker threads (lane groups) for the batched walk; `<= 1`
    /// replays single-threaded with no snapshot traffic.
    pub threads: usize,
    /// Target executed instructions per stretch shard; `0` = auto.
    pub shard_events: u64,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            threads: 1,
            shard_events: 0,
        }
    }
}

impl BatchOptions {
    /// Options for a given thread count, default shard granularity.
    pub fn threaded(threads: usize) -> Self {
        BatchOptions {
            threads,
            ..BatchOptions::default()
        }
    }
}

/// The product of one verified partitioned run — the µP-side
/// statistics plus the cache-hierarchy report, whether obtained by
/// direct simulation or by trace replay (bit-identical by
/// construction, pinned by `tests/determinism.rs`).
#[derive(Debug, Clone, PartialEq)]
pub struct VerifiedRun {
    /// µP-core run statistics.
    pub stats: RunStats,
    /// I-cache/D-cache/memory report.
    pub report: HierarchyReport,
}

/// Replays `trace` once under `hw_blocks`, uncached: builds the per-pc
/// replay table, streams the µP-side references through a fresh cache
/// hierarchy, and returns the verified run.
///
/// This is the one-shot path ([`ReplayEngine`] memoizes it); it is
/// also what benchmarks and equivalence tests call directly.
///
/// # Errors
///
/// [`SimError::CycleLimit`] exactly when the equivalent direct
/// simulation would hit it; [`SimError::TraceCorrupt`] when the trace
/// fails its fingerprint validation or decodes to fewer events than
/// it recorded (damaged or truncated capture); other [`SimError`]s
/// only on a trace that does not belong to `prepared`.
pub fn replay_run(
    prepared: &PreparedApp,
    config: &SystemConfig,
    trace: &ReferenceTrace,
    hw_blocks: &HashSet<BlockId>,
) -> Result<VerifiedRun, SimError> {
    trace.validate()?;
    let replayer = TraceReplayer::new(&prepared.prog, &prepared.app, &config.energy_table);
    replay_with(&replayer, trace, config, hw_blocks)
}

fn replay_with(
    replayer: &TraceReplayer,
    trace: &ReferenceTrace,
    config: &SystemConfig,
    hw_blocks: &HashSet<BlockId>,
) -> Result<VerifiedRun, SimError> {
    let mut hierarchy = Hierarchy::new(
        config.icache.clone(),
        config.dcache.clone(),
        &config.process,
        config.memory_bytes,
    );
    let sim_config = SimConfig::partitioned(config.max_cycles, hw_blocks.clone());
    let stats = replayer.replay(trace, &sim_config, &mut HierarchySink(&mut hierarchy))?;
    Ok(VerifiedRun {
        stats,
        report: hierarchy.report(),
    })
}

/// The product of one batched walk: per-candidate results plus the
/// mechanism counters of the walk itself.
struct BatchRun {
    /// Per-candidate outcomes, in candidate order.
    results: Vec<Result<VerifiedRun, SimError>>,
    /// Stretch shards walked (rendezvous rounds of the lane groups).
    shards: u64,
    /// Wall time inside the sharded replay rounds proper (excludes
    /// decode, lane-group setup, and the final fold).
    shard_nanos: u64,
}

/// One lane group's carried state between shard rounds: its slice of
/// the batch accumulators plus one [`HierarchySnapshot`] per lane.
/// The hierarchy itself is rebuilt fresh each round and restored from
/// the snapshot — the analytical models are pure functions of the
/// construction parameters, so rebuild + restore continues the cache
/// state bit for bit (pinned in `corepart-cache`).
struct GroupCarry<'c> {
    configs: &'c [SimConfig],
    lanes: BatchLanes,
    snaps: Vec<HierarchySnapshot>,
}

/// Verifies `candidates` in one walk of the *already decoded* trace:
/// one cache [`Hierarchy`] and one accumulator per candidate, shared
/// stretch/address decode. Per-candidate results come back in candidate
/// order; a trace-level failure is the top-level `Err`.
///
/// With `opts.threads > 1` the lanes are split into contiguous
/// balanced lane groups and the stretch list into event-balanced
/// shards; each shard is a rendezvous round in which the groups replay
/// the same stretch range concurrently ([`Assignment::Interleaved`]
/// keeps group *g* on worker *g* across rounds). Each lane's full
/// state — accumulators and cache hierarchy — is carried across the
/// round barrier, so every lane performs exactly its sequential
/// operation sequence and the output is bit-identical for every
/// `(threads, shard_events)` choice.
fn batch_with(
    replayer: &TraceReplayer,
    decoded: &DecodedTrace,
    config: &SystemConfig,
    candidates: &[&HashSet<BlockId>],
    opts: BatchOptions,
) -> Result<BatchRun, SimError> {
    let k = candidates.len();
    let fresh_hierarchy = || {
        Hierarchy::new(
            config.icache.clone(),
            config.dcache.clone(),
            &config.process,
            config.memory_bytes,
        )
    };
    let sim_configs: Vec<SimConfig> = candidates
        .iter()
        .map(|hw| SimConfig::partitioned(config.max_cycles, (*hw).clone()))
        .collect();

    let groups = opts.threads.max(1).min(k.max(1));
    if groups <= 1 && opts.shard_events == 0 {
        // Single-group, single-shard fast path: no snapshot traffic.
        let started = Instant::now();
        let mut hierarchies: Vec<Hierarchy> = (0..k).map(|_| fresh_hierarchy()).collect();
        let mut sinks: Vec<HierarchySink<'_>> = hierarchies.iter_mut().map(HierarchySink).collect();
        let lanes = replayer.replay_batch(decoded, &sim_configs, &mut sinks)?;
        drop(sinks);
        return Ok(BatchRun {
            results: lanes
                .into_iter()
                .zip(&hierarchies)
                .map(|(lane, hierarchy)| {
                    lane.map(|stats| VerifiedRun {
                        stats,
                        report: hierarchy.report(),
                    })
                })
                .collect(),
            shards: 1,
            shard_nanos: started.elapsed().as_nanos() as u64,
        });
    }

    let target = if opts.shard_events > 0 {
        opts.shard_events
    } else {
        (decoded.events() / 8).max(4096)
    };
    let shards = decoded.shard_by_events(target);

    // Contiguous balanced lane groups: group g owns lanes
    // [bounds[g], bounds[g + 1]), so concatenating group outputs in
    // group order is candidate order.
    let base = k / groups;
    let extra = k % groups;
    let mut bounds = Vec::with_capacity(groups + 1);
    bounds.push(0usize);
    for g in 0..groups {
        bounds.push(bounds[g] + base + usize::from(g < extra));
    }
    let carries: Vec<Mutex<GroupCarry<'_>>> = (0..groups)
        .map(|g| {
            let configs = &sim_configs[bounds[g]..bounds[g + 1]];
            let snaps = configs
                .iter()
                .map(|_| fresh_hierarchy().snapshot())
                .collect();
            Mutex::new(GroupCarry {
                configs,
                lanes: replayer.batch_lanes(configs),
                snaps,
            })
        })
        .collect();

    let mut rounds = 0u64;
    let mut shard_nanos = 0u64;
    for shard in &shards {
        let started = Instant::now();
        let round: Vec<Result<(), SimError>> =
            par_map_with(&carries, groups, Assignment::Interleaved, |_, cell| {
                let mut carry = cell.lock().expect("group worker never panics");
                let GroupCarry {
                    configs,
                    lanes,
                    snaps,
                } = &mut *carry;
                if lanes.live() == 0 {
                    // Every lane of this group already failed on its
                    // own; nothing left to replay (matches the
                    // all-dead early exit of the unsharded walk).
                    return Ok(());
                }
                let mut hierarchies: Vec<Hierarchy> = snaps
                    .iter()
                    .map(|snap| {
                        let mut hierarchy = fresh_hierarchy();
                        hierarchy.restore(snap);
                        hierarchy
                    })
                    .collect();
                let mut sinks: Vec<HierarchySink<'_>> =
                    hierarchies.iter_mut().map(HierarchySink).collect();
                replayer.replay_stretches(decoded, shard.clone(), configs, lanes, &mut sinks)?;
                drop(sinks);
                *snaps = hierarchies.iter().map(Hierarchy::snapshot).collect();
                Ok(())
            });
        rounds += 1;
        shard_nanos += started.elapsed().as_nanos() as u64;
        // Trace-level errors are lane-independent, so every live group
        // hits the identical one; propagating the lowest group index
        // keeps the `Err` deterministic across thread counts.
        for outcome in round {
            outcome?;
        }
    }

    let mut results = Vec::with_capacity(k);
    for cell in carries {
        let GroupCarry { lanes, snaps, .. } = cell.into_inner().expect("group worker never panics");
        let finished = replayer.finish_batch(decoded, lanes)?;
        for (lane, snap) in finished.into_iter().zip(&snaps) {
            results.push(lane.map(|stats| {
                let mut hierarchy = fresh_hierarchy();
                hierarchy.restore(snap);
                VerifiedRun {
                    stats,
                    report: hierarchy.report(),
                }
            }));
        }
    }
    Ok(BatchRun {
        results,
        shards: rounds,
        shard_nanos,
    })
}

/// Replays `trace` once for K candidate hardware-block sets, uncached:
/// validates and decodes the capture, then verifies every candidate in
/// a single batched walk — the K-candidate generalization of
/// [`replay_run`], bit-identical to K independent `replay_run` calls
/// (pinned by `tests/determinism.rs` and the conform differential).
///
/// # Errors
///
/// All-or-nothing: the first failing candidate's [`SimError`] (in
/// candidate order) fails the whole batch — a batch never returns
/// partial results. Trace-level damage ([`SimError::TraceCorrupt`])
/// poisons every candidate alike.
pub fn replay_batch(
    prepared: &PreparedApp,
    config: &SystemConfig,
    trace: &ReferenceTrace,
    candidates: &[HashSet<BlockId>],
) -> Result<Vec<VerifiedRun>, SimError> {
    replay_batch_with(prepared, config, trace, candidates, BatchOptions::default())
}

/// [`replay_batch`] with explicit [`BatchOptions`]: the same walk,
/// spread over `opts.threads` lane groups that rendezvous at stretch
/// shards of about `opts.shard_events` events. Bit-identical to the
/// default options (and to K independent [`replay_run`] calls) for
/// every option choice — threading changes scheduling, never results.
pub fn replay_batch_with(
    prepared: &PreparedApp,
    config: &SystemConfig,
    trace: &ReferenceTrace,
    candidates: &[HashSet<BlockId>],
    opts: BatchOptions,
) -> Result<Vec<VerifiedRun>, SimError> {
    trace.validate()?;
    let replayer = TraceReplayer::new(&prepared.prog, &prepared.app, &config.energy_table);
    let decoded = DecodedTrace::decode(trace);
    let refs: Vec<&HashSet<BlockId>> = candidates.iter().collect();
    batch_with(&replayer, &decoded, config, &refs, opts)?
        .results
        .into_iter()
        .collect()
}

/// A memoizing replay engine bound to one captured reference trace.
///
/// The engine owns the capture, the precomputed per-pc replay table,
/// and a compute-once cache keyed by the sorted hardware-block set
/// (the trace fingerprint is fixed per engine, so the pair uniquely
/// identifies a verified run). Like the schedule cache, one engine
/// must only be shared across configurations with equal baseline
/// parameters (caches, process, memory, energy table, cycle guard) —
/// [`crate::engine`] guarantees this by pooling replay engines inside
/// the baseline artifact, keyed on the baseline fingerprint.
#[derive(Debug)]
pub struct ReplayEngine {
    trace: Arc<ReferenceTrace>,
    replayer: TraceReplayer,
    cache: MemoCache<Vec<BlockId>, VerifiedRun, SimError>,
    /// The trace decoded into flat event form, built lazily on the
    /// first [`ReplayEngine::verify_batch`] and reused by every batch
    /// after it (single-set [`ReplayEngine::verify`] streams straight
    /// from the encoded capture and never needs it).
    decoded: OnceLock<DecodedTrace>,
    /// Batched walks executed.
    batches: AtomicU64,
    /// Trace events whose decode was *shared* instead of repeated:
    /// `events × (lanes − 1)`, summed over batches.
    batch_events_shared: AtomicU64,
    /// Wall time spent inside batched walks (decode + K-lane replay).
    batch_nanos: AtomicU64,
    /// Stretch shards walked across all batches (rendezvous rounds of
    /// the lane groups; 1 per batch on the unsharded fast path).
    batch_shards: AtomicU64,
    /// Wall time inside the sharded replay rounds proper, summed over
    /// batches (excludes decode, group setup, and memo publication).
    batch_shard_nanos: AtomicU64,
    /// Fingerprint validation of the capture, run once at
    /// construction; every [`ReplayEngine::verify`] refuses a trace
    /// that failed it.
    validated: Result<(), SimError>,
}

impl corepart_sched::cache::HeapBytes for VerifiedRun {
    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.stats.heap_bytes()
    }
}

impl ReplayEngine {
    /// Owned heap footprint in bytes: the encoded trace, the per-pc
    /// replay tables, the lazy SoA decode (when built) and the
    /// verified-run memo. Grows as verifications are memoized, so the
    /// store re-measures the owning baseline after every request.
    pub fn heap_bytes(&self) -> usize {
        self.trace.heap_bytes()
            + self.replayer.heap_bytes()
            + self.decoded.get().map_or(0, |d| d.heap_bytes())
            + self.cache.bytes() as usize
    }

    /// Builds the engine (precomputes the per-pc replay table) for a
    /// trace captured from `prepared` under `config`. The trace's
    /// fingerprint is validated here, once; a damaged capture turns
    /// every later [`ReplayEngine::verify`] into
    /// [`SimError::TraceCorrupt`].
    pub fn new(prepared: &PreparedApp, config: &SystemConfig, trace: ReferenceTrace) -> Self {
        ReplayEngine {
            replayer: TraceReplayer::new(&prepared.prog, &prepared.app, &config.energy_table),
            validated: trace.validate(),
            trace: Arc::new(trace),
            cache: MemoCache::new(),
            decoded: OnceLock::new(),
            batches: AtomicU64::new(0),
            batch_events_shared: AtomicU64::new(0),
            batch_nanos: AtomicU64::new(0),
            batch_shards: AtomicU64::new(0),
            batch_shard_nanos: AtomicU64::new(0),
        }
    }

    /// The capture this engine replays.
    pub fn trace(&self) -> &ReferenceTrace {
        &self.trace
    }

    /// Verifies the hardware-block set `hw_blocks`: replays the capture
    /// on first request, serves the shared result afterwards.
    ///
    /// # Errors
    ///
    /// The (cached) [`SimError`] when the replay fails — exactly when
    /// the equivalent direct simulation would.
    pub fn verify(
        &self,
        config: &SystemConfig,
        hw_blocks: &HashSet<BlockId>,
    ) -> Result<Arc<VerifiedRun>, SimError> {
        self.validated.clone()?;
        let mut key: Vec<BlockId> = hw_blocks.iter().copied().collect();
        key.sort_unstable();
        self.cache.get_or_compute(key, || {
            replay_with(&self.replayer, &self.trace, config, hw_blocks)
        })
    }

    /// Verifies K candidate hardware-block sets with at most **one**
    /// walk of the trace, memo-integrated: candidates whose sorted set
    /// is already memoized (and duplicates within `candidates`) are
    /// served from the cache as ordinary hits; only the remaining
    /// first-occurrence sets enter the batched walk, whose per-lane
    /// results are then published through the memo (each charged as
    /// one miss — the counters read exactly as if the candidates had
    /// been verified sequentially).
    ///
    /// Results come back in candidate order and are bit-identical to
    /// K separate [`ReplayEngine::verify`] calls.
    ///
    /// # Errors
    ///
    /// All-or-nothing, like the sequential path would fail: the first
    /// failing candidate's [`SimError`] (in candidate order) fails the
    /// whole call. A trace-level failure (damaged capture) fails the
    /// batch before anything is memoized; a per-candidate failure
    /// ([`SimError::CycleLimit`]) is memoized for its set, exactly as
    /// [`ReplayEngine::verify`] caches it.
    pub fn verify_batch(
        &self,
        config: &SystemConfig,
        candidates: &[HashSet<BlockId>],
    ) -> Result<Vec<Arc<VerifiedRun>>, SimError> {
        self.verify_batch_with(config, candidates, BatchOptions::default())
    }

    /// [`ReplayEngine::verify_batch`] with explicit [`BatchOptions`]:
    /// the fresh-lane walk runs on `opts.threads` lane groups that
    /// rendezvous at stretch-shard boundaries. Results — and the memo
    /// contents published from them — are bit-identical for every
    /// option choice; only the mechanism counters
    /// ([`ReplayEngine::batch_shards`],
    /// [`ReplayEngine::batch_shard_nanos`]) and wall time differ.
    pub fn verify_batch_with(
        &self,
        config: &SystemConfig,
        candidates: &[HashSet<BlockId>],
        opts: BatchOptions,
    ) -> Result<Vec<Arc<VerifiedRun>>, SimError> {
        self.validated.clone()?;
        let keys: Vec<Vec<BlockId>> = candidates
            .iter()
            .map(|hw| {
                let mut key: Vec<BlockId> = hw.iter().copied().collect();
                key.sort_unstable();
                key
            })
            .collect();

        // Plan: only the first occurrence of each not-yet-memoized set
        // earns a batch lane. `peek` charges no counters — the
        // `get_or_compute` below does the hit/miss accounting.
        let mut seen: HashSet<&[BlockId]> = HashSet::new();
        let fresh: Vec<usize> = keys
            .iter()
            .enumerate()
            .filter(|(_, key)| seen.insert(key.as_slice()) && self.cache.peek(key).is_none())
            .map(|(i, _)| i)
            .collect();

        let mut lane_results: Vec<Option<Result<VerifiedRun, SimError>>> =
            candidates.iter().map(|_| None).collect();
        if !fresh.is_empty() {
            let started = Instant::now();
            let decoded = self
                .decoded
                .get_or_init(|| DecodedTrace::decode(&self.trace));
            let sets: Vec<&HashSet<BlockId>> = fresh.iter().map(|&i| &candidates[i]).collect();
            // A trace-level `Err` here aborts before anything is
            // memoized: the damage poisons every candidate alike.
            let run = batch_with(&self.replayer, decoded, config, &sets, opts)?;
            self.batches.fetch_add(1, Ordering::Relaxed);
            self.batch_events_shared.fetch_add(
                decoded.events() * (sets.len() as u64 - 1),
                Ordering::Relaxed,
            );
            self.batch_nanos
                .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
            self.batch_shards.fetch_add(run.shards, Ordering::Relaxed);
            self.batch_shard_nanos
                .fetch_add(run.shard_nanos, Ordering::Relaxed);
            for (&i, lane) in fresh.iter().zip(run.results) {
                lane_results[i] = Some(lane);
            }
        }

        let mut out = Vec::with_capacity(candidates.len());
        for ((i, key), lane) in keys.into_iter().enumerate().zip(&mut lane_results) {
            let entry = match lane.take() {
                // A batch lane publishes its result as this key's one
                // miss; under a racing sequential verify the memo's
                // first writer wins and this lane is a hit — either
                // way the value is bit-identical.
                Some(result) => self.cache.get_or_compute(key, || result),
                // Memoized (or duplicate-in-batch) set: an ordinary
                // hit. Recompute sequentially only if it raced away
                // (conform's evict hook can do that).
                None => self.cache.get_or_compute(key, || {
                    replay_with(&self.replayer, &self.trace, config, &candidates[i])
                }),
            };
            out.push(entry?);
        }
        Ok(out)
    }

    /// Replays actually executed (= distinct hardware-block sets seen).
    pub fn replays(&self) -> u64 {
        self.cache.misses()
    }

    /// Verifications served from the memo without replaying.
    pub fn hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Batched walks executed by [`ReplayEngine::verify_batch`].
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Trace events whose decode was shared instead of repeated,
    /// summed over batches: `events × (lanes − 1)` per batch.
    pub fn batch_events_shared(&self) -> u64 {
        self.batch_events_shared.load(Ordering::Relaxed)
    }

    /// Wall time spent inside batched walks.
    pub fn batch_nanos(&self) -> u64 {
        self.batch_nanos.load(Ordering::Relaxed)
    }

    /// Stretch shards walked across all batched walks — the rendezvous
    /// rounds of the lane groups (`1` per batch on the unsharded
    /// single-thread fast path, so any executed batch makes this
    /// nonzero).
    pub fn batch_shards(&self) -> u64 {
        self.batch_shards.load(Ordering::Relaxed)
    }

    /// Wall time inside the sharded replay rounds proper, summed over
    /// batched walks.
    pub fn batch_shard_nanos(&self) -> u64 {
        self.batch_shard_nanos.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::evaluate::{evaluate_initial_captured, evaluate_partition, Partition};
    use crate::prepare::Workload;
    use corepart_ir::lower::lower;
    use corepart_ir::parser::parse;

    const DSP: &str = r#"app dsp; var x[128]; var y[128]; var s = 0;
        func main() {
            for (var i = 1; i < 127; i = i + 1) {
                y[i] = (x[i - 1] + 2 * x[i] + x[i + 1]) >> 2;
            }
            for (var j = 0; j < 128; j = j + 1) { s = s + y[j]; }
            return s;
        }"#;

    fn setup() -> (Engine, corepart_ir::cdfg::Application, Workload) {
        let app = lower(&parse(DSP).unwrap()).unwrap();
        let workload =
            Workload::from_arrays([("x", (0..128).map(|i| (i * 13) % 97).collect::<Vec<i64>>())]);
        (Engine::new(SystemConfig::new()).unwrap(), app, workload)
    }

    #[test]
    fn replayed_verification_equals_direct_simulation() {
        let (factory, app, workload) = setup();
        let session = factory.session(&app, &workload);
        let prepared = session.prepared().unwrap();
        let config = session.config();
        let baseline = session.baseline().unwrap();
        let stats = &baseline.stats;
        let engine = baseline
            .replay
            .as_ref()
            .expect("small workload fits any sane cap");

        let hot = prepared.chain.iter().find(|c| c.is_loop()).unwrap().id;
        let partition = Partition::single(hot, config.resource_set(2).unwrap().clone());
        let hw_blocks: HashSet<BlockId> =
            prepared.chain.cluster(hot).blocks.iter().copied().collect();

        // Direct path (no caches, no replay).
        let direct = evaluate_partition(prepared, &partition, stats, config).unwrap();
        // Replay path, twice: second verify must be served from memo.
        let first = engine.verify(config, &hw_blocks).unwrap();
        let again = engine.verify(config, &hw_blocks).unwrap();
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!((engine.replays(), engine.hits()), (1, 1));

        // The replayed µP+cache side is bit-identical to what the
        // direct evaluation measured (miss ratios pin the hierarchy,
        // up_core pins the RunStats energy path).
        let via_engine = crate::evaluate::evaluate_partition_with(
            prepared,
            &partition,
            stats,
            config,
            None,
            Some(engine),
        )
        .unwrap();
        assert_eq!(direct, via_engine);
    }

    #[test]
    fn one_shot_replay_matches_engine() {
        let (factory, app, workload) = setup();
        let session = factory.session(&app, &workload);
        let prepared = session.prepared().unwrap();
        let config = session.config();
        let engine = session
            .replay_engine()
            .unwrap()
            .expect("capture fits")
            .clone();
        let hot = prepared.chain.iter().find(|c| c.is_loop()).unwrap().id;
        let hw_blocks: HashSet<BlockId> =
            prepared.chain.cluster(hot).blocks.iter().copied().collect();

        let one_shot = replay_run(prepared, config, engine.trace(), &hw_blocks).unwrap();
        let memoized = engine.verify(config, &hw_blocks).unwrap();
        assert_eq!(one_shot, *memoized);
        assert!(engine.trace().events() > 0);
    }

    #[test]
    fn threaded_sharded_batch_is_bit_identical() {
        let (factory, app, workload) = setup();
        let session = factory.session(&app, &workload);
        let prepared = session.prepared().unwrap();
        let config = session.config();
        let engine = session
            .replay_engine()
            .unwrap()
            .expect("capture fits")
            .clone();

        // Candidates: all software, each cluster alone, everything.
        let mut sets: Vec<HashSet<BlockId>> = vec![HashSet::new()];
        for cluster in prepared.chain.iter() {
            sets.push(cluster.blocks.iter().copied().collect());
        }
        sets.push(sets.iter().flatten().copied().collect());

        let sequential: Vec<VerifiedRun> = sets
            .iter()
            .map(|hw| replay_run(prepared, config, engine.trace(), hw).unwrap())
            .collect();
        for threads in [1usize, 2, 3, 8] {
            for shard_events in [0u64, 1, 64] {
                let opts = BatchOptions {
                    threads,
                    shard_events,
                };
                let got = replay_batch_with(prepared, config, engine.trace(), &sets, opts).unwrap();
                assert_eq!(got, sequential, "threads={threads} shard={shard_events}");
            }
        }
    }

    #[test]
    fn engine_counts_shard_rounds() {
        let (factory, app, workload) = setup();
        let session = factory.session(&app, &workload);
        let prepared = session.prepared().unwrap();
        let config = session.config();
        let engine = session
            .replay_engine()
            .unwrap()
            .expect("capture fits")
            .clone();
        let sets: Vec<HashSet<BlockId>> = prepared
            .chain
            .iter()
            .map(|c| c.blocks.iter().copied().collect())
            .collect();
        assert_eq!(engine.batch_shards(), 0);
        let opts = BatchOptions {
            threads: 2,
            shard_events: 32,
        };
        let runs = engine.verify_batch_with(config, &sets, opts).unwrap();
        assert_eq!(runs.len(), sets.len());
        assert!(engine.batch_shards() > 1, "forced shards must be counted");
        // Memoized re-batch replays nothing, so no new shard rounds.
        let before = engine.batch_shards();
        engine.verify_batch_with(config, &sets, opts).unwrap();
        assert_eq!(engine.batch_shards(), before);
    }

    #[test]
    fn zero_cap_yields_no_trace() {
        let (factory, app, workload) = setup();
        let session = factory.session(&app, &workload);
        let prepared = session.prepared().unwrap();
        let config = session.config();
        let (metrics_off, stats_off, trace) =
            evaluate_initial_captured(prepared, config, 0).unwrap();
        assert!(trace.is_none());
        // And the capture never perturbs the evaluation itself.
        let (metrics_on, stats_on, trace_on) =
            evaluate_initial_captured(prepared, config, usize::MAX).unwrap();
        assert!(trace_on.is_some());
        assert_eq!(metrics_off, metrics_on);
        assert_eq!(stats_off, stats_on);
    }
}
