//! Ablation **A6** — list scheduling (the paper's choice) vs
//! force-directed scheduling.
//!
//! §3.2 uses "a simple list schedule" (Fig. 1 line 8). This experiment
//! swaps in a time-constrained force-directed scheduler (Paulin &
//! Knight) and compares, for every application's chosen hot cluster on
//! the m-dsp set: static schedule length, bound instance count, the
//! utilization rate `U_R`, and the quick energy estimate — quantifying
//! how much (or little) the partition decision depends on the scheduler.
//!
//! ```text
//! cargo run --release -p corepart-bench --bin ablation_scheduler
//! ```

use corepart::engine::Engine;
use corepart::partition::Partitioner;
use corepart::prepare::Workload;
use corepart::system::SystemConfig;
use corepart_bench::SEED;
use corepart_sched::binding::{bind, schedule_cluster, utilization};
use corepart_sched::energy::estimate_energy;
use corepart_sched::force::force_schedule_cluster;
use corepart_workloads::all;

fn main() {
    let config = SystemConfig::new();
    println!("A6: list vs force-directed scheduling (hot cluster, m-dsp set)\n");
    println!(
        "{:<8} {:<6} {:>8} {:>10} {:>8} {:>14}",
        "app", "sched", "length", "instances", "U_R", "E_R estimate"
    );
    for w in all() {
        let app = w.app().expect("bundled workload lowers");
        let workload = Workload::from_arrays(w.arrays(SEED));
        let engine = Engine::new(config.clone()).expect("engine");
        let session = engine.session(&app, &workload);
        let prepared = session.prepared().expect("bundled workload prepares");
        let partitioner = Partitioner::new(&session).expect("initial run");
        let Some(top) = partitioner.candidates().into_iter().next() else {
            println!("{:<8} (no candidates)\n", w.name);
            continue;
        };
        let blocks = prepared.chain.cluster(top.cluster).blocks.clone();
        let set = &config.resource_sets[2];

        for (name, result) in [
            (
                "list",
                schedule_cluster(&prepared.app, &blocks, set, &config.library),
            ),
            (
                "fds",
                force_schedule_cluster(&prepared.app, &blocks, set, &config.library),
            ),
        ] {
            match result {
                Ok(sched) => {
                    let binding = bind(&sched, &config.library);
                    let util = utilization(&sched, &binding, &prepared.profile, &config.library);
                    let e = estimate_energy(&util, &binding, &config.library);
                    println!(
                        "{:<8} {:<6} {:>8} {:>10} {:>8.3} {:>14}",
                        w.name,
                        name,
                        sched.static_length(),
                        binding.total_instances(),
                        util.u_r,
                        format!("{e}"),
                    );
                }
                Err(e) => println!("{:<8} {:<6} infeasible: {e}", w.name, name),
            }
        }
        println!();
    }
    println!(
        "Expected shape: FDS trades a slightly longer static schedule for\n\
         equal-or-fewer instances; U_R and the energy estimate move little —\n\
         supporting the paper's use of the simple list scheduler."
    );
}
