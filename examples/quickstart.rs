//! Quickstart: partition a small FIR-like kernel and print the
//! whole-system result.
//!
//! ```text
//! cargo run --release -p corepart --example quickstart
//! ```

use corepart::error::CorepartError;
use corepart::flow::DesignFlow;
use corepart::prepare::Workload;
use corepart::report::{Table1, Table1Entry};

const SOURCE: &str = r#"
app fir;

const N = 128;

var x[128];
var y[128];

func main() {
    // A 4-tap FIR filter: the hot, regular cluster.
    for (var i = 3; i < N; i = i + 1) {
        y[i] = (x[i] * 5 + x[i - 1] * 11 + x[i - 2] * 11 + x[i - 3] * 5) >> 5;
    }
    // Peak detection stays irregular and branchy.
    var peak = 0;
    for (var j = 0; j < N; j = j + 1) {
        if (y[j] > peak) {
            peak = y[j];
        }
    }
    return peak;
}
"#;

fn main() -> Result<(), CorepartError> {
    // 1. Run the whole Fig.-5 design flow with the paper-default
    //    system (CMOS6 process, 8 kB caches, SPARCLite-class core).
    let flow = DesignFlow::new();
    let input: Vec<i64> = (0..128).map(|i| (i * 37 + 11) % 255 - 128).collect();
    let result = flow.run_source(SOURCE, Workload::from_arrays([("x", input)]))?;

    // 2. Inspect the outcome.
    let mut table = Table1::new();
    table.push(Table1Entry::from_outcome(&result.app_name, &result.outcome));
    println!("{table}");

    match &result.outcome.best {
        Some((partition, detail)) => {
            println!(
                "Chosen: {} cluster(s) on `{}` — U_R {:.3} vs U_uP {:.3}, {} of hardware",
                partition.clusters.len(),
                partition.set.name(),
                detail.u_r,
                detail.u_up,
                detail.metrics.geq,
            );
            println!(
                "Energy saving: {:.1} %, execution-time change: {:+.1} %",
                result.outcome.energy_saving_percent().unwrap_or(0.0),
                result.outcome.time_change_percent().unwrap_or(0.0),
            );
        }
        None => println!("No partition beat the all-software design."),
    }
    Ok(())
}
