//! Bus-transfer estimation for cluster pre-selection — the Fig. 3
//! algorithm ("Computing the energy related to additional bus
//! transfers").
//!
//! When a cluster `c_i` moves to the ASIC core, the µP must deposit the
//! data `c_i` consumes into the shared memory
//! (`N = |gen[C_pred] ∩ use[c_i]|`, step 1) and later read back what
//! `c_i` produced for downstream clusters
//! (`N = |gen[c_i] ∩ use[C_succ]|`, step 3). If the neighbouring
//! cluster is *also* on the ASIC core, the values never cross the
//! bus — the synergy discounts of steps 2 and 4.

use std::collections::HashSet;

use corepart_ir::cluster::{ClusterChain, ClusterId};
use corepart_tech::energy::BusEnergyModel;
use corepart_tech::units::Energy;

/// Word counts of the additional µP↔ASIC traffic of one cluster, per
/// invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransferCounts {
    /// Words the µP deposits for the ASIC (`N_Trans,µP→mem`).
    pub words_in: u64,
    /// Words the ASIC deposits for the µP (`N_Trans,ASIC→mem`).
    pub words_out: u64,
}

impl TransferCounts {
    /// Total transferred words.
    pub fn total(&self) -> u64 {
        self.words_in + self.words_out
    }
}

/// Computes the Fig. 3 transfer counts for `cluster`, given the set of
/// clusters already mapped to the ASIC core (for the synergy discounts
/// of steps 2 and 4).
pub fn transfer_counts(
    chain: &ClusterChain,
    cluster: ClusterId,
    on_asic: &HashSet<ClusterId>,
) -> TransferCounts {
    let c = chain.cluster(cluster);

    // Step 1: |gen[C_pred] ∩ use[c_i]|
    let preds = chain.preds_gen_use(cluster);
    let mut words_in = preds.transfers_to(&c.gen_use);

    // Step 2: synergy with an ASIC-resident predecessor c_{i-1}.
    if let Some(prev) = chain.prev(cluster) {
        if on_asic.contains(&prev.id) {
            words_in = words_in.saturating_sub(prev.gen_use.transfers_to(&c.gen_use));
        }
    }

    // Step 3: |gen[c_i] ∩ use[C_succ]|
    let succs = chain.succs_gen_use(cluster);
    let mut words_out = c.gen_use.transfers_to(&succs);

    // Step 4: synergy with an ASIC-resident successor c_{i+1}.
    if let Some(next) = chain.next(cluster) {
        if on_asic.contains(&next.id) {
            words_out = words_out.saturating_sub(c.gen_use.transfers_to(&next.gen_use));
        }
    }

    TransferCounts {
        words_in,
        words_out,
    }
}

/// Step 5 of Fig. 3: the transfer energy of one invocation,
/// `(N_in + N_out) × E_bus read/write`.
pub fn transfer_energy(counts: TransferCounts, bus: &BusEnergyModel) -> Energy {
    bus.read_write_avg() * counts.total()
}

/// The full pre-selection estimate `E_Trans^{c_i}` of Fig. 1 line 4:
/// per-invocation transfer energy times how often the cluster is
/// entered.
pub fn cluster_transfer_energy(
    chain: &ClusterChain,
    cluster: ClusterId,
    on_asic: &HashSet<ClusterId>,
    invocations: u64,
    bus: &BusEnergyModel,
) -> Energy {
    transfer_energy(transfer_counts(chain, cluster, on_asic), bus) * invocations
}

#[cfg(test)]
mod tests {
    use super::*;
    use corepart_ir::cluster::decompose;
    use corepart_ir::lower::lower;
    use corepart_ir::parser::parse;
    use corepart_tech::process::CmosProcess;

    fn chain_of(src: &str) -> ClusterChain {
        decompose(&lower(&parse(src).unwrap()).unwrap())
    }

    /// x produced before the loop, y consumed after it: the loop
    /// cluster must transfer both ways.
    const PIPE: &str = r#"app t; var x = 0; var y = 0;
        func main() {
            x = 5;
            for (var i = 0; i < 4; i = i + 1) { y = y + x; }
            x = y * 2;
        }"#;

    fn loop_cluster(chain: &ClusterChain) -> ClusterId {
        chain.iter().find(|c| c.is_loop()).expect("loop").id
    }

    #[test]
    fn counts_inbound_and_outbound() {
        let chain = chain_of(PIPE);
        let id = loop_cluster(&chain);
        let t = transfer_counts(&chain, id, &HashSet::new());
        // Inbound: x and i (init before the loop region) -> >= 2 words.
        assert!(t.words_in >= 2, "words_in = {}", t.words_in);
        // Outbound: y used afterwards.
        assert!(t.words_out >= 1, "words_out = {}", t.words_out);
    }

    #[test]
    fn synergy_discount_with_neighbour_on_asic() {
        let chain = chain_of(PIPE);
        let id = loop_cluster(&chain);
        let baseline = transfer_counts(&chain, id, &HashSet::new());
        // Put the predecessor cluster (straight run producing x) on the
        // ASIC too: inbound shrinks.
        let mut on_asic = HashSet::new();
        if let Some(prev) = chain.prev(id) {
            on_asic.insert(prev.id);
        }
        let with_syn = transfer_counts(&chain, id, &on_asic);
        assert!(with_syn.words_in < baseline.words_in);
        assert_eq!(with_syn.words_out, baseline.words_out);

        // And the successor discount symmetrically.
        let mut on_asic2 = HashSet::new();
        if let Some(next) = chain.next(id) {
            on_asic2.insert(next.id);
        }
        let with_syn2 = transfer_counts(&chain, id, &on_asic2);
        assert!(with_syn2.words_out < baseline.words_out);
    }

    #[test]
    fn arrays_transfer_as_single_references() {
        // Whole arrays live in shared memory; only the reference (1
        // word) counts.
        let chain = chain_of(
            r#"app t; var big[1024]; var s = 0;
            func main() {
                for (var i = 0; i < 1024; i = i + 1) { big[i] = i; }
                for (var j = 0; j < 1024; j = j + 1) { s = s + big[j]; }
            }"#,
        );
        let first = chain.iter().find(|c| c.is_loop()).unwrap().id;
        let t = transfer_counts(&chain, first, &HashSet::new());
        // Inbound: loop counter init; outbound: the array reference +
        // nothing else large.
        assert!(t.words_out <= 4, "array must not transfer element-wise");
    }

    #[test]
    fn energy_proportional_to_words_and_invocations() {
        let bus = BusEnergyModel::analytical(&CmosProcess::cmos6(), 8.0);
        let t = TransferCounts {
            words_in: 3,
            words_out: 2,
        };
        let e1 = transfer_energy(t, &bus);
        assert!((e1.joules() - bus.read_write_avg().joules() * 5.0).abs() < 1e-18);
        let chain = chain_of(PIPE);
        let id = loop_cluster(&chain);
        let e10 = cluster_transfer_energy(&chain, id, &HashSet::new(), 10, &bus);
        let e20 = cluster_transfer_energy(&chain, id, &HashSet::new(), 20, &bus);
        assert!((e20.joules() / e10.joules() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn isolated_cluster_transfers_nothing() {
        // A cluster with no dataflow to its neighbours.
        let chain = chain_of(
            r#"app t; var a = 0; var b = 0;
            func main() {
                a = 1;
                while (b > 0) { b = b - 1; }
                a = 2;
            }"#,
        );
        let id = loop_cluster(&chain);
        let t = transfer_counts(&chain, id, &HashSet::new());
        // b is never generated by predecessors (global init is not a
        // cluster), and nothing downstream uses b.
        assert_eq!(t.words_out, 0);
    }
}
