//! System configuration and whole-system design metrics.
//!
//! The target architecture (Fig. 2 a) is a µP core, an I-cache, a
//! D-cache, a main-memory core and (after partitioning) an ASIC core,
//! all on a shared bus. [`SystemConfig`] bundles every model parameter;
//! [`DesignMetrics`] is one row of the paper's Table 1: the per-core
//! energy breakdown plus execution time of a design point.

use corepart_cache::config::CacheConfig;
use corepart_isa::energy::EnergyTable;
use corepart_tech::energy::BusEnergyModel;
use corepart_tech::process::CmosProcess;
use corepart_tech::resource::{ResourceLibrary, ResourceSet};
use corepart_tech::scaling::{NodeScalingTable, OperatingPoint, PointWeights};
use corepart_tech::units::{Cycles, Energy, GateEq, Seconds};

use crate::error::CorepartError;

/// Full configuration of the modelled system and the partitioning
/// algorithm's designer knobs (§3.5: "the designer does have manifold
/// possibilities of interaction").
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Fabrication process (default: CMOS6 0.8µ).
    pub process: CmosProcess,
    /// Datapath resource library (default: CMOS6 library).
    pub library: ResourceLibrary,
    /// Designer-supplied candidate resource sets (3–5, §3.2).
    pub resource_sets: Vec<ResourceSet>,
    /// Instruction-cache geometry.
    pub icache: CacheConfig,
    /// Data-cache geometry.
    pub dcache: CacheConfig,
    /// Main-memory core capacity in bytes.
    pub memory_bytes: usize,
    /// Shared-bus energy model.
    pub bus: BusEnergyModel,
    /// µP instruction-level energy table.
    pub energy_table: EnergyTable,
    /// Simulation cycle guard (0 = unlimited).
    pub max_cycles: u64,
    /// Pre-selection budget `N_max^c` (Fig. 1 line 5).
    pub n_max: usize,
    /// Objective-function energy weight `F` (Fig. 1 line 13).
    pub factor_f: f64,
    /// Objective-function hardware weight (the "…" of line 13).
    pub factor_g: f64,
    /// Hardware-effort normalization `GEQ_0`.
    pub geq_norm: GateEq,
    /// µP cycles per transferred word during µP↔ASIC communication.
    pub comm_cycles_per_word: u64,
    /// Fixed µP handshake cycles per ASIC invocation.
    pub comm_handshake_cycles: u64,
    /// Margin of the Fig.-1-line-9 utilization gate: a candidate passes
    /// when `U_R > gate_margin · U_µP`. The default 0.9 accounts for
    /// the ASIC datapath having no fetch/decode/control overhead in its
    /// utilization denominator — at *equal* rates the ASIC already
    /// dissipates less — while still screening clearly-worse clusters.
    pub gate_margin: f64,
    /// Run the IR optimizer (constant/copy propagation, DCE) before
    /// profiling and codegen. Off by default: the paper's era-typical
    /// embedded compiler produced naive code, and the calibration
    /// assumes it. Turning it on makes the software baseline stronger
    /// (experiment E5).
    pub optimize_ir: bool,
    /// Worker threads for the parallel estimate grid and the
    /// exploration sweep. `0` (the default) resolves automatically:
    /// `COREPART_THREADS`, then `RAYON_NUM_THREADS`, then the machine's
    /// available parallelism. Results are bit-identical for every
    /// value — the knob only trades wall time.
    pub threads: usize,
    /// Byte cap of the reference-trace capture backing the replay
    /// verification engine ([`crate::verify`]). The initial simulation
    /// records its executed pc stream and load/store addresses
    /// (delta-encoded varints in 256 KiB segments, roughly one byte per
    /// executed instruction) so every candidate verification replays
    /// the capture instead of re-simulating. When the encoded trace
    /// would exceed this cap, the capture is discarded mid-run and
    /// verification transparently falls back to direct simulation —
    /// results are bit-identical either way, only wall time changes.
    /// `0` disables capture entirely. Default: 128 MiB, comfortably
    /// above the ~6 MiB the longest paper workload (`ckey`, 5.2 M
    /// cycles) needs.
    pub trace_cap_bytes: usize,
    /// Technology-node scaling table resolving [`SystemConfig::operating_point`]
    /// into pure energy/time/area weights (default: the CMOS6-anchored
    /// family).
    pub scaling: NodeScalingTable,
    /// Optional operating point `(node, vdd)` the design is *reported*
    /// at. Simulation and replay always run at the base [`SystemConfig::process`]
    /// — the executed event stream is node-invariant — and the point
    /// enters only as a final weighting pass over the resulting counts
    /// ([`ResolvedPoint::weigh`]). `None` (the default) reports at the
    /// base process's native point, which weighs by exactly 1.
    pub operating_point: Option<OperatingPoint>,
}

impl SystemConfig {
    /// The paper-era default system: CMOS6 process, 8 kB caches, 1 MB
    /// memory, 8 mm bus, the default resource-set family, `F = 1`,
    /// hardware weight 0.2 against a 16 k-cell normalization.
    pub fn new() -> Self {
        let process = CmosProcess::cmos6();
        let library = ResourceLibrary::for_process(&process);
        let bus = BusEnergyModel::analytical(&process, 8.0);
        let energy_table = EnergyTable::for_process(&process);
        SystemConfig {
            process,
            library,
            resource_sets: ResourceSet::default_family(),
            icache: CacheConfig::default_icache(),
            dcache: CacheConfig::default_dcache(),
            memory_bytes: 1 << 20,
            bus,
            energy_table,
            max_cycles: 2_000_000_000,
            n_max: 8,
            factor_f: 1.0,
            factor_g: 0.2,
            geq_norm: GateEq::new(16_000),
            comm_cycles_per_word: 2,
            comm_handshake_cycles: 4,
            gate_margin: 0.9,
            optimize_ir: false,
            threads: 0,
            trace_cap_bytes: 128 << 20,
            scaling: NodeScalingTable::cmos6_family(),
            operating_point: None,
        }
    }

    /// Validates designer knobs.
    ///
    /// # Errors
    ///
    /// [`CorepartError::Config`] on nonsensical values (no resource
    /// sets, zero `n_max`, non-positive factors, zero `GEQ_0`).
    pub fn validate(&self) -> Result<(), CorepartError> {
        let err = |m: &str| {
            Err(CorepartError::Config {
                message: m.to_owned(),
            })
        };
        if self.resource_sets.is_empty() {
            return err("at least one resource set is required");
        }
        if self.n_max == 0 {
            return err("n_max must be positive");
        }
        if self.factor_f <= 0.0 || self.factor_f.is_nan() {
            return err("factor F must be positive");
        }
        if self.factor_g < 0.0 {
            return err("hardware factor must be non-negative");
        }
        if self.geq_norm == GateEq::ZERO {
            return err("GEQ normalization must be non-zero");
        }
        if self.gate_margin <= 0.0 || self.gate_margin.is_nan() {
            return err("utilization gate margin must be positive");
        }
        // An unresolvable operating point (unknown node, vdd outside the
        // DVFS range) is a configuration error, not a panic.
        self.point_weights()?;
        Ok(())
    }

    /// The pure weights of the configured operating point, or the
    /// identity weights when none is set.
    ///
    /// # Errors
    ///
    /// [`CorepartError::Config`] when the point names a node absent from
    /// [`SystemConfig::scaling`] or a supply outside that node's DVFS
    /// range.
    pub fn point_weights(&self) -> Result<PointWeights, CorepartError> {
        match &self.operating_point {
            None => Ok(PointWeights::identity()),
            Some(point) => {
                self.scaling
                    .weights(&self.process, point)
                    .map_err(|e| CorepartError::Config {
                        message: e.to_string(),
                    })
            }
        }
    }

    /// Resolves [`SystemConfig::operating_point`] into a weighting pass,
    /// or `None` when the config reports at the native point.
    ///
    /// # Errors
    ///
    /// Same as [`SystemConfig::point_weights`].
    pub fn resolved_point(&self) -> Result<Option<ResolvedPoint>, CorepartError> {
        match self.operating_point {
            None => Ok(None),
            Some(point) => {
                let weights = self.point_weights()?;
                Ok(Some(ResolvedPoint {
                    point,
                    weights,
                    base_period: self.process.clock_period(),
                }))
            }
        }
    }

    /// Returns a copy with different cache geometries (the §1-footnote
    /// adaptation knob).
    pub fn with_caches(mut self, icache: CacheConfig, dcache: CacheConfig) -> Self {
        self.icache = icache;
        self.dcache = dcache;
        self
    }

    /// Returns a copy with a different objective-function balance.
    pub fn with_factors(mut self, f: f64, g: f64) -> Self {
        self.factor_f = f;
        self.factor_g = g;
        self
    }

    /// Returns a copy with a different pre-selection budget.
    pub fn with_n_max(mut self, n_max: usize) -> Self {
        self.n_max = n_max;
        self
    }

    /// Returns a copy with different candidate resource sets.
    pub fn with_resource_sets(mut self, sets: Vec<ResourceSet>) -> Self {
        self.resource_sets = sets;
        self
    }

    /// The designer resource set at `index` — the checked replacement
    /// for indexing `resource_sets` directly (the CLI's `--set-index`
    /// feeds user input straight into this).
    ///
    /// # Errors
    ///
    /// [`CorepartError::Config`] naming the index and the available
    /// range when `index` is out of bounds.
    pub fn resource_set(&self, index: usize) -> Result<&ResourceSet, CorepartError> {
        self.resource_sets
            .get(index)
            .ok_or_else(|| CorepartError::Config {
                message: format!(
                    "no resource set at index {index}: {} sets are configured (0..={})",
                    self.resource_sets.len(),
                    self.resource_sets.len().saturating_sub(1)
                ),
            })
    }

    /// Returns a copy with an explicit worker-thread count (`0` =
    /// automatic). `1` forces the fully sequential engine; any other
    /// value produces bit-identical results in less wall time.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns a copy with a different reference-trace byte cap (`0`
    /// disables capture; verification then always simulates directly).
    pub fn with_trace_cap(mut self, cap_bytes: usize) -> Self {
        self.trace_cap_bytes = cap_bytes;
        self
    }

    /// Returns a copy reporting at the given operating point.
    pub fn with_operating_point(mut self, point: OperatingPoint) -> Self {
        self.operating_point = Some(point);
        self
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::new()
    }
}

/// An operating point resolved against a config: the point, its three
/// pure weights, and the base clock period that turns cycle counts into
/// seconds. This is the *entire* interface between an operating point
/// and the rest of the stack — simulation, replay and search never see
/// it; it re-weighs their node-invariant counts after the fact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolvedPoint {
    /// The `(node, vdd)` pair.
    pub point: OperatingPoint,
    /// Energy/time/area multipliers over base-process metrics.
    pub weights: PointWeights,
    /// Clock period of the *base* process the counts were produced at.
    pub base_period: Seconds,
}

impl ResolvedPoint {
    /// Weighs base-process design metrics into this point's
    /// energy/time/area tuple.
    ///
    /// Deterministic pure arithmetic: identical inputs give bit-identical
    /// outputs, which is what lets a node×vdd sweep re-weigh one set of
    /// memoized counts instead of re-simulating, with "re-weighted ==
    /// from-scratch" holding byte-exactly.
    pub fn weigh(&self, metrics: &DesignMetrics) -> WeightedMetrics {
        self.weigh_raw(metrics.total_energy(), metrics.total_cycles(), metrics.geq)
    }

    /// Weighs a raw `(energy, cycles, geq)` triple measured at the base
    /// process.
    pub fn weigh_raw(&self, energy: Energy, cycles: Cycles, geq: GateEq) -> WeightedMetrics {
        WeightedMetrics {
            energy: Energy::from_joules(energy.joules() * self.weights.energy),
            time: Seconds::from_secs(
                cycles.count() as f64 * self.base_period.secs() * self.weights.time,
            ),
            area_cells: geq.cells() as f64 * self.weights.area,
        }
    }
}

/// A design point's totals re-weighed to an operating point. Time is in
/// seconds (not cycles) because different nodes clock differently; area
/// is fractional cells because area factors are real-valued.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedMetrics {
    /// Total system energy at the operating point.
    pub energy: Energy,
    /// Total execution wall time at the operating point.
    pub time: Seconds,
    /// ASIC hardware effort in (fractional) gate-equivalent cells.
    pub area_cells: f64,
}

/// One design point's whole-system measurements — a Table 1 row.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignMetrics {
    /// Instruction-cache energy.
    pub icache: Energy,
    /// Data-cache energy.
    pub dcache: Energy,
    /// Main-memory energy.
    pub mem: Energy,
    /// Shared-bus energy (µP↔ASIC communication + ASIC memory
    /// traffic); folded into the `mem` column when printing Table 1.
    pub bus: Energy,
    /// µP core energy (instruction-level + stalls).
    pub up_core: Energy,
    /// ASIC core energy (`None` for the initial design).
    pub asic_core: Option<Energy>,
    /// µP core execution cycles (including miss stalls and
    /// communication).
    pub up_cycles: Cycles,
    /// ASIC core execution cycles.
    pub asic_cycles: Cycles,
    /// Additional hardware effort of the ASIC core.
    pub geq: GateEq,
    /// I-cache miss ratio (for cache-adaptation studies).
    pub icache_miss_ratio: f64,
    /// D-cache miss ratio.
    pub dcache_miss_ratio: f64,
}

impl DesignMetrics {
    /// Total system energy (all cores + bus).
    pub fn total_energy(&self) -> Energy {
        self.icache
            + self.dcache
            + self.mem
            + self.bus
            + self.up_core
            + self.asic_core.unwrap_or(Energy::ZERO)
    }

    /// Total execution time in cycles (µP and ASIC run mutually
    /// exclusively — "whenever one of the cores is performing, all the
    /// other cores are shut down", §3.1).
    pub fn total_cycles(&self) -> Cycles {
        self.up_cycles + self.asic_cycles
    }

    /// Energy saving versus a baseline, in percent (positive = saved).
    pub fn energy_saving_vs(&self, baseline: &DesignMetrics) -> Option<f64> {
        self.total_energy().percent_saving(baseline.total_energy())
    }

    /// Execution-time change versus a baseline in percent (negative =
    /// faster), the paper's "Chg%" column.
    pub fn time_change_vs(&self, baseline: &DesignMetrics) -> Option<f64> {
        self.total_cycles().percent_change(baseline.total_cycles())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(SystemConfig::new().validate().is_ok());
    }

    #[test]
    fn resource_set_rejects_out_of_range_index() {
        let config = SystemConfig::new();
        let n = config.resource_sets.len();
        assert!(config.resource_set(n.saturating_sub(1)).is_ok());
        let err = config.resource_set(99).unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains("no resource set at index 99"),
            "unexpected message: {message}"
        );
        assert!(message.contains(&format!("{n} sets")), "{message}");
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(SystemConfig::new()
            .with_resource_sets(vec![])
            .validate()
            .is_err());
        assert!(SystemConfig::new().with_n_max(0).validate().is_err());
        assert!(SystemConfig::new()
            .with_factors(0.0, 0.2)
            .validate()
            .is_err());
        assert!(SystemConfig::new()
            .with_factors(1.0, -0.1)
            .validate()
            .is_err());
        let mut c = SystemConfig::new();
        c.geq_norm = GateEq::ZERO;
        assert!(c.validate().is_err());
    }

    fn metrics(up: f64, asic: Option<f64>, upc: u64, ac: u64) -> DesignMetrics {
        DesignMetrics {
            icache: Energy::from_microjoules(10.0),
            dcache: Energy::from_microjoules(5.0),
            mem: Energy::from_microjoules(3.0),
            bus: Energy::from_microjoules(1.0),
            up_core: Energy::from_microjoules(up),
            asic_core: asic.map(Energy::from_microjoules),
            up_cycles: Cycles::new(upc),
            asic_cycles: Cycles::new(ac),
            geq: GateEq::ZERO,
            icache_miss_ratio: 0.0,
            dcache_miss_ratio: 0.0,
        }
    }

    #[test]
    fn native_point_weighs_by_exactly_one() {
        let config = SystemConfig::new().with_operating_point(OperatingPoint {
            node_nm: 800,
            vdd: 5.0,
        });
        let resolved = config.resolved_point().unwrap().unwrap();
        let m = metrics(81.0, None, 1000, 0);
        let w = resolved.weigh(&m);
        assert_eq!(
            w.energy.joules().to_bits(),
            m.total_energy().joules().to_bits()
        );
        let native_secs = m.total_cycles().count() as f64 * config.process.clock_period().secs();
        assert_eq!(w.time.secs().to_bits(), native_secs.to_bits());
        assert_eq!(w.area_cells.to_bits(), (m.geq.cells() as f64).to_bits());
    }

    #[test]
    fn unset_point_resolves_to_identity_weights() {
        let config = SystemConfig::new();
        assert!(config.resolved_point().unwrap().is_none());
        let w = config.point_weights().unwrap();
        assert_eq!((w.energy, w.time, w.area), (1.0, 1.0, 1.0));
    }

    #[test]
    fn bad_operating_points_are_config_errors() {
        let unknown = SystemConfig::new().with_operating_point(OperatingPoint {
            node_nm: 123,
            vdd: 1.0,
        });
        let err = unknown.validate().unwrap_err();
        assert!(err.to_string().contains("unknown technology node"));
        let low_vdd = SystemConfig::new().with_operating_point(OperatingPoint {
            node_nm: 800,
            vdd: 0.5,
        });
        let err = low_vdd.validate().unwrap_err();
        assert!(err.to_string().contains("outside"), "{err}");
    }

    #[test]
    fn totals_and_savings() {
        let initial = metrics(81.0, None, 1000, 0);
        let part = metrics(20.0, Some(11.0), 500, 200);
        assert!((initial.total_energy().microjoules() - 100.0).abs() < 1e-9);
        assert!((part.total_energy().microjoules() - 50.0).abs() < 1e-9);
        assert!((part.energy_saving_vs(&initial).unwrap() - 50.0).abs() < 1e-9);
        assert!((part.time_change_vs(&initial).unwrap() + 30.0).abs() < 1e-9);
        assert_eq!(part.total_cycles(), Cycles::new(700));
    }
}
