//! A trace-driven set-associative cache simulator.
//!
//! Functional-only (no data storage): the simulator tracks tags,
//! validity and dirtiness to classify each reference as hit/miss and to
//! count fills and write-backs — all the events the analytical energy
//! model of `corepart-tech` charges.

use std::fmt;

use crate::config::{CacheConfig, Replacement, WritePolicy};

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// True when the reference hit.
    pub hit: bool,
    /// True when a line was filled from the next level.
    pub filled: bool,
    /// True when a dirty line was written back.
    pub wrote_back: bool,
    /// True when the reference went through to the next level (miss
    /// fill words, or a write-through write).
    pub next_level_write: bool,
    /// True when a next-line prefetch fill was issued alongside.
    pub prefetched: bool,
    /// True when the prefetch victimized a dirty line.
    pub prefetch_wrote_back: bool,
}

/// Aggregate statistics of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Read (or fetch) references.
    pub reads: u64,
    /// Write references.
    pub writes: u64,
    /// Read hits.
    pub read_hits: u64,
    /// Write hits.
    pub write_hits: u64,
    /// Lines filled from the next level.
    pub fills: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
    /// Words written through to the next level (write-through only).
    pub write_throughs: u64,
    /// Lines brought in by next-line prefetching.
    pub prefetch_fills: u64,
}

impl CacheStats {
    /// Total references.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.accesses() - self.read_hits - self.write_hits
    }

    /// Miss ratio in [0, 1]; 0 for an untouched cache.
    pub fn miss_ratio(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses() as f64 / a as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {:.2}% miss, {} fills, {} writebacks",
            self.accesses(),
            self.miss_ratio() * 100.0,
            self.fills,
            self.writebacks
        )
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    /// LRU timestamp or FIFO insertion order.
    stamp: u64,
}

/// The cache simulator.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `sets * ways` lines, way-major within a set.
    lines: Vec<Line>,
    stats: CacheStats,
    tick: u64,
    rng: u64,
    /// `log2(line_bytes)` — geometry is validated power-of-two, so the
    /// per-access set/tag split is a shift/mask, not three divisions.
    line_shift: u32,
    /// `sets - 1`.
    set_mask: u64,
    /// `log2(sets)`.
    sets_shift: u32,
    /// One-entry MRU filter: `(line_number, line_index)` of the last
    /// read-touched line. A repeat read of the same line is a
    /// guaranteed hit and short-circuits the way probe with state
    /// updates identical to the full path; every install overwrites or
    /// clears it, so the memo can never go stale.
    last_read: Option<(u64, usize)>,
}

/// A self-contained copy of one cache's *mutable* state — lines, LRU
/// clock, replacement RNG, MRU read memo and statistics — detached
/// from the (immutable) geometry. Restoring it into a cache built with
/// the same [`CacheConfig`] resumes the simulation exactly where the
/// snapshot was taken: every subsequent access classifies and charges
/// identically to an uninterrupted run. This is the shard-boundary
/// carry of the stretch-sharded batched replay — each shard round
/// forks its hierarchy state from the previous round's snapshot.
#[derive(Debug, Clone)]
pub struct CacheSnapshot {
    lines: Vec<Line>,
    stats: CacheStats,
    tick: u64,
    rng: u64,
    last_read: Option<(u64, usize)>,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Self {
        let lines = vec![Line::default(); config.sets() * config.associativity()];
        let line_shift = config.line_bytes().trailing_zeros();
        let sets = config.sets() as u64;
        Cache {
            line_shift,
            set_mask: sets - 1,
            sets_shift: sets.trailing_zeros(),
            config,
            lines,
            stats: CacheStats::default(),
            tick: 0,
            rng: 0x9E37_79B9_7F4A_7C15,
            last_read: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Invalidates all lines and clears statistics.
    pub fn reset(&mut self) {
        self.lines.iter_mut().for_each(|l| *l = Line::default());
        self.stats = CacheStats::default();
        self.tick = 0;
        self.last_read = None;
    }

    /// Captures the mutable state (see [`CacheSnapshot`]).
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            lines: self.lines.clone(),
            stats: self.stats,
            tick: self.tick,
            rng: self.rng,
            last_read: self.last_read,
        }
    }

    /// Resumes from a snapshot taken on a cache of the same geometry.
    ///
    /// # Panics
    ///
    /// When the snapshot's line count does not match this cache's —
    /// the snapshot belongs to a different [`CacheConfig`].
    pub fn restore(&mut self, snapshot: &CacheSnapshot) {
        assert_eq!(
            self.lines.len(),
            snapshot.lines.len(),
            "snapshot geometry must match the cache it restores into"
        );
        self.lines.clone_from(&snapshot.lines);
        self.stats = snapshot.stats;
        self.tick = snapshot.tick;
        self.rng = snapshot.rng;
        self.last_read = snapshot.last_read;
    }

    #[inline]
    fn set_and_tag(&self, addr: u32) -> (usize, u64) {
        let line = (addr as u64) >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.sets_shift;
        (set, tag)
    }

    fn xorshift(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Performs a read (or instruction-fetch) reference.
    #[inline]
    pub fn read(&mut self, addr: u32) -> AccessOutcome {
        self.stats.reads += 1;
        let line_no = (addr as u64) >> self.line_shift;
        if let Some((memo, idx)) = self.last_read {
            if memo == line_no {
                // Repeat read of the last-touched line: a guaranteed
                // hit (nothing installed since, or the memo would have
                // been overwritten), with exactly the state updates of
                // the full probe below.
                self.tick += 1;
                if self.config.replacement() == Replacement::Lru {
                    self.lines[idx].stamp = self.tick;
                }
                self.stats.read_hits += 1;
                return AccessOutcome {
                    hit: true,
                    filled: false,
                    wrote_back: false,
                    next_level_write: false,
                    prefetched: false,
                    prefetch_wrote_back: false,
                };
            }
        }
        self.access(addr, false)
    }

    /// Performs a write reference.
    #[inline]
    pub fn write(&mut self, addr: u32) -> AccessOutcome {
        self.stats.writes += 1;
        self.access(addr, true)
    }

    fn access(&mut self, addr: u32, is_write: bool) -> AccessOutcome {
        self.tick += 1;
        let (set, tag) = self.set_and_tag(addr);
        let ways = self.config.associativity();
        let base = set * ways;
        let line_no = (addr as u64) >> self.line_shift;

        // Hit?
        for w in 0..ways {
            let line = &mut self.lines[base + w];
            if line.valid && line.tag == tag {
                if self.config.replacement() == Replacement::Lru {
                    line.stamp = self.tick;
                }
                let mut next_level_write = false;
                if is_write {
                    self.stats.write_hits += 1;
                    match self.config.write_policy() {
                        WritePolicy::WriteBack => line.dirty = true,
                        WritePolicy::WriteThrough => {
                            self.stats.write_throughs += 1;
                            next_level_write = true;
                        }
                    }
                } else {
                    self.stats.read_hits += 1;
                    // A write hit moves no line, so an existing memo
                    // stays valid; a read hit becomes the new memo.
                    self.last_read = Some((line_no, base + w));
                }
                return AccessOutcome {
                    hit: true,
                    filled: false,
                    wrote_back: false,
                    next_level_write,
                    prefetched: false,
                    prefetch_wrote_back: false,
                };
            }
        }

        // Miss.
        if is_write && self.config.write_policy() == WritePolicy::WriteThrough {
            // No write-allocate: the word goes straight to memory and
            // no line moves, so the read memo stays valid.
            self.stats.write_throughs += 1;
            return AccessOutcome {
                hit: false,
                filled: false,
                wrote_back: false,
                next_level_write: true,
                prefetched: false,
                prefetch_wrote_back: false,
            };
        }

        let dirty = is_write && self.config.write_policy() == WritePolicy::WriteBack;
        let (victim, wrote_back) = self.install_line(set, tag, dirty);
        self.stats.fills += 1;

        // Next-line prefetch on read misses.
        let (mut prefetched, mut prefetch_wrote_back) = (false, false);
        if !is_write && self.config.prefetch() {
            let next_addr = addr.wrapping_add(self.config.line_bytes() as u32);
            let (nset, ntag) = self.set_and_tag(next_addr);
            if !self.present(nset, ntag) {
                prefetch_wrote_back = self.install_line(nset, ntag, false).1;
                self.stats.prefetch_fills += 1;
                prefetched = true;
            }
        }

        // Any install may have victimized the memoized line; point the
        // memo at the freshly filled demand line, or drop it when a
        // prefetch install (which can land anywhere) followed.
        self.last_read = if is_write || prefetched {
            None
        } else {
            Some((line_no, base + victim))
        };

        AccessOutcome {
            hit: false,
            filled: true,
            wrote_back,
            next_level_write: wrote_back,
            prefetched,
            prefetch_wrote_back,
        }
    }

    /// Whether the line containing `addr` is resident (a read of it
    /// would hit). Pure query — no state or statistics change.
    #[inline]
    pub fn line_resident(&self, addr: u32) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.present(set, tag)
    }

    /// Applies `count` consecutive read hits to the (resident) line
    /// containing `addr` in one step: the final cache state and
    /// statistics are exactly those of `count` [`Cache::read`] calls —
    /// each would hit, bump the tick and restamp the same line, so only
    /// the last stamp survives.
    ///
    /// # Panics
    ///
    /// When the line is not resident (the caller must have checked
    /// [`Cache::line_resident`]).
    #[inline]
    pub fn read_hits_same_line(&mut self, addr: u32, count: u64) {
        let (set, tag) = self.set_and_tag(addr);
        let ways = self.config.associativity();
        let base = set * ways;
        let way = (0..ways)
            .find(|&w| {
                let l = &self.lines[base + w];
                l.valid && l.tag == tag
            })
            .expect("read_hits_same_line on a non-resident line");
        self.stats.reads += count;
        self.stats.read_hits += count;
        self.tick += count;
        if self.config.replacement() == Replacement::Lru {
            self.lines[base + way].stamp = self.tick;
        }
        self.last_read = Some(((addr as u64) >> self.line_shift, base + way));
    }

    fn present(&self, set: usize, tag: u64) -> bool {
        let ways = self.config.associativity();
        let base = set * ways;
        (0..ways).any(|w| {
            let l = &self.lines[base + w];
            l.valid && l.tag == tag
        })
    }

    /// Victimizes a way in `set` and installs `(tag, dirty)`. Returns
    /// the victim way and whether a dirty line was written back.
    fn install_line(&mut self, set: usize, tag: u64, dirty: bool) -> (usize, bool) {
        let ways = self.config.associativity();
        let base = set * ways;
        let victim = (0..ways)
            .find(|&w| !self.lines[base + w].valid)
            .unwrap_or_else(|| match self.config.replacement() {
                Replacement::Lru | Replacement::Fifo => (0..ways)
                    .min_by_key(|&w| self.lines[base + w].stamp)
                    .expect("non-zero ways"),
                Replacement::Random => (self.xorshift() % ways as u64) as usize,
            });
        let line = &mut self.lines[base + victim];
        let wrote_back = line.valid && line.dirty;
        if wrote_back {
            self.stats.writebacks += 1;
        }
        line.valid = true;
        line.tag = tag;
        line.dirty = dirty;
        line.stamp = self.tick;
        (victim, wrote_back)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(assoc: usize, policy: Replacement, wp: WritePolicy) -> Cache {
        // 4 lines of 16 B total -> 64 B cache.
        Cache::new(CacheConfig::new(64, 16, assoc, policy, wp, 8).expect("valid"))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny(1, Replacement::Lru, WritePolicy::WriteBack);
        let first = c.read(0x100);
        assert!(!first.hit && first.filled);
        let second = c.read(0x104); // same 16B line
        assert!(second.hit);
        assert_eq!(c.stats().read_hits, 1);
        assert_eq!(c.stats().fills, 1);
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = tiny(1, Replacement::Lru, WritePolicy::WriteBack);
        // 4 sets * 16B lines: addresses 0x0 and 0x40 conflict (set 0).
        c.read(0x0);
        c.read(0x40);
        let again = c.read(0x0);
        assert!(!again.hit, "conflict should have evicted");
        assert_eq!(c.stats().fills, 3);
    }

    #[test]
    fn two_way_avoids_that_conflict() {
        let mut c = tiny(2, Replacement::Lru, WritePolicy::WriteBack);
        c.read(0x0);
        c.read(0x40);
        let again = c.read(0x0);
        assert!(again.hit, "2-way should keep both");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2, Replacement::Lru, WritePolicy::WriteBack);
        // set 0 gets lines A(0x0), B(0x20... wait 2 sets now: 64/16/2 = 2 sets.
        // set-conflicting addresses for set 0: 0x0, 0x40, 0x80 (line/sets).
        c.read(0x0); // A
        c.read(0x40); // B
        c.read(0x0); // touch A -> B is LRU
        c.read(0x80); // C evicts B
        assert!(c.read(0x0).hit, "A must survive");
        assert!(!c.read(0x40).hit, "B was evicted");
    }

    #[test]
    fn fifo_evicts_first_in() {
        let mut c = tiny(2, Replacement::Fifo, WritePolicy::WriteBack);
        c.read(0x0); // A in first
        c.read(0x40); // B
        c.read(0x0); // touching A does NOT refresh FIFO order
        c.read(0x80); // C evicts A
        assert!(!c.read(0x0).hit, "A was first in, must be evicted");
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let mut c = tiny(1, Replacement::Lru, WritePolicy::WriteBack);
        c.write(0x0); // dirty line in set 0
        let out = c.read(0x40); // conflict -> evict dirty
        assert!(out.wrote_back);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_through_goes_to_memory() {
        let mut c = tiny(1, Replacement::Lru, WritePolicy::WriteThrough);
        let miss = c.write(0x0);
        assert!(!miss.hit && !miss.filled && miss.next_level_write);
        c.read(0x0); // fill
        let hit = c.write(0x0);
        assert!(hit.hit && hit.next_level_write);
        assert_eq!(c.stats().write_throughs, 2);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn random_policy_deterministic() {
        let run = || {
            let mut c = tiny(2, Replacement::Random, WritePolicy::WriteBack);
            for i in 0..64u32 {
                c.read(i * 0x40);
            }
            c.stats()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn miss_ratio_and_reset() {
        let mut c = tiny(1, Replacement::Lru, WritePolicy::WriteBack);
        c.read(0x0);
        c.read(0x0);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
        c.reset();
        assert_eq!(c.stats().accesses(), 0);
        assert!(!c.read(0x0).hit, "reset must invalidate");
    }

    #[test]
    fn sequential_streaming_hit_rate() {
        // Streaming 4-byte words through 16B lines: 3 of 4 accesses hit.
        let mut c = Cache::new(CacheConfig::default_dcache());
        for i in 0..1024u32 {
            c.read(0x1000 + i * 4);
        }
        let s = c.stats();
        assert_eq!(s.fills, 256);
        assert!((s.miss_ratio() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn prefetch_turns_streaming_misses_into_hits() {
        let base = CacheConfig::default_icache();
        let run = |prefetch: bool| {
            let mut c = Cache::new(base.clone().with_prefetch(prefetch));
            for i in 0..1024u32 {
                c.read(0x0010_0000 + i * 4);
            }
            c.stats()
        };
        let plain = run(false);
        let pf = run(true);
        // Sequential fetches: the prefetched next line converts the
        // following demand miss into a hit.
        assert!(pf.misses() < plain.misses());
        assert!(pf.prefetch_fills > 0);
        assert_eq!(plain.prefetch_fills, 0);
    }

    #[test]
    fn prefetch_never_double_fills_present_lines() {
        let mut c = Cache::new(CacheConfig::default_icache().with_prefetch(true));
        // Touch line A and A+1 alternately: after warmup no prefetch
        // fires because the next line is already resident.
        for _ in 0..100 {
            c.read(0x1000);
            c.read(0x1010);
        }
        let s = c.stats();
        assert!(
            s.prefetch_fills <= 2,
            "prefetch_fills = {}",
            s.prefetch_fills
        );
    }

    #[test]
    fn prefetch_reports_in_outcome() {
        let mut c = Cache::new(CacheConfig::default_dcache().with_prefetch(true));
        let out = c.read(0x1000);
        assert!(out.filled && out.prefetched);
        let out2 = c.read(0x1010); // the prefetched line
        assert!(out2.hit);
    }

    #[test]
    fn larger_cache_never_worse_on_lru_reuse_pattern() {
        let run = |kb: usize| {
            let mut c = Cache::new(
                CacheConfig::new(
                    kb * 1024,
                    16,
                    1,
                    Replacement::Lru,
                    WritePolicy::WriteBack,
                    8,
                )
                .expect("valid"),
            );
            // Loop over a 12kB working set 4 times.
            for _ in 0..4 {
                for i in 0..(12 * 1024 / 4) as u32 {
                    c.read(0x1000 + i * 4);
                }
            }
            c.stats().miss_ratio()
        };
        assert!(run(16) <= run(8));
        assert!(run(8) <= run(4) + 1e-12);
    }
}
