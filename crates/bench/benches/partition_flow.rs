//! Criterion benchmarks of the end-to-end partitioning flow: the
//! instruction-set simulation, the estimate-vs-verify phases, and the
//! full Fig.-1 search on the two smallest paper applications.

use criterion::{criterion_group, criterion_main, Criterion};

use corepart::engine::Engine;
use corepart::evaluate::Partition;
use corepart::partition::Partitioner;
use corepart::prepare::{prepare, Workload};
use corepart::system::SystemConfig;
use corepart_isa::simulator::{NullSink, SimConfig, Simulator};
use corepart_workloads::by_name;

fn bench_iss(c: &mut Criterion) {
    let w = by_name("engine").expect("engine exists");
    let config = SystemConfig::new();
    let prepared = prepare(
        w.app().expect("lowers"),
        Workload::from_arrays(w.arrays(1)),
        &config,
    )
    .expect("prepares");

    c.bench_function("iss/engine-full-run", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&prepared.prog, &prepared.app);
            for (name, data) in &prepared.workload.arrays {
                sim.set_array(name, data).expect("arrays");
            }
            sim.run(&SimConfig::initial(1_000_000_000), &mut NullSink)
                .expect("runs")
        })
    });
}

fn bench_partition_search(c: &mut Criterion) {
    for name in ["3d", "engine"] {
        let w = by_name(name).expect("workload exists");
        let app = w.app().expect("lowers");
        let workload = Workload::from_arrays(w.arrays(1));
        c.bench_function(&format!("partition-search/{name}"), |b| {
            b.iter(|| {
                // A fresh engine per iteration: this benchmark measures
                // the cold search (baseline simulation + estimate grid +
                // growth + verification), not pool reuse.
                let engine = Engine::new(SystemConfig::new()).expect("engine");
                let session = engine.session(&app, &workload);
                let partitioner = Partitioner::new(&session).expect("initial run");
                partitioner.run().expect("search")
            })
        });
    }
}

fn bench_estimate_vs_verify(c: &mut Criterion) {
    let w = by_name("3d").expect("3d exists");
    let app = w.app().expect("lowers");
    let workload = Workload::from_arrays(w.arrays(1));
    let engine = Engine::new(SystemConfig::new()).expect("engine");
    let session = engine.session(&app, &workload);
    let config = session.config();
    let partitioner = Partitioner::new(&session).expect("initial run");
    let cand = partitioner
        .candidates()
        .into_iter()
        .next()
        .expect("candidate");
    let partition = Partition::single(
        cand.cluster,
        config.resource_set(2).expect("set exists").clone(),
    );

    c.bench_function("estimate/3d-single", |b| {
        b.iter(|| {
            partitioner
                .estimate(std::hint::black_box(&partition))
                .expect("estimates")
        })
    });
    c.bench_function("verify/3d-single", |b| {
        b.iter(|| {
            partitioner
                .evaluate(std::hint::black_box(&partition))
                .expect("verifies")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_iss, bench_partition_search, bench_estimate_vs_verify
}
criterion_main!(benches);
