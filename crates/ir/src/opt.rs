//! Block-local IR optimizations: constant propagation, copy
//! propagation and dead-code elimination.
//!
//! The lowering is deliberately naive (one temp per sub-expression);
//! these passes clean the graph up the way a production behavioral
//! compiler would before scheduling/codegen, and they are *strictly
//! semantics-preserving* — the property tests pit the optimized program
//! against the original on the interpreter.
//!
//! The passes are opt-in (the paper-calibrated flow runs unoptimized
//! code, matching the era's embedded compilers); use them via
//! [`optimize`].

use std::collections::HashMap;

use crate::cdfg::{Application, Block};
use crate::op::{Inst, Operand, Terminator, VarId};

/// Statistics of one optimization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptStats {
    /// Operands rewritten to constants.
    pub consts_propagated: usize,
    /// Operands rewritten through copies.
    pub copies_propagated: usize,
    /// Instructions removed as dead.
    pub dead_removed: usize,
    /// Binary/unary ops folded to constants.
    pub folded: usize,
}

impl OptStats {
    /// Total rewrites performed.
    pub fn total(&self) -> usize {
        self.consts_propagated + self.copies_propagated + self.dead_removed + self.folded
    }
}

/// Optimizes an application (to a fixpoint) and reports what changed.
///
/// Global scalars (those with initializers) are conservatively treated
/// as live-out everywhere; all other defs are dead only when no
/// instruction or terminator anywhere reads them.
///
/// Loads with unused results are removed too: array reads have no
/// side effect in this IR (an out-of-bounds index in dead code stops
/// trapping after optimization — the usual compiler contract).
pub fn optimize(app: &Application) -> (Application, OptStats) {
    let mut stats = OptStats::default();
    let mut blocks: Vec<Block> = app.blocks().to_vec();

    loop {
        let mut changed = false;

        // --- Block-local constant & copy propagation + folding. ---
        for block in &mut blocks {
            // Value state per variable within the block.
            let mut known: HashMap<VarId, Operand> = HashMap::new();
            let resolve = |known: &HashMap<VarId, Operand>, op: Operand| -> Operand {
                match op {
                    Operand::Var(v) => known.get(&v).copied().unwrap_or(op),
                    c => c,
                }
            };
            for inst in &mut block.insts {
                // Rewrite uses first.
                let mut local_consts = 0usize;
                let mut local_copies = 0usize;
                let mut rewrite = |op: &mut Operand| {
                    let new = resolve(&known, *op);
                    if new != *op {
                        match new {
                            Operand::Const(_) => local_consts += 1,
                            Operand::Var(_) => local_copies += 1,
                        }
                        *op = new;
                    }
                };
                match inst {
                    Inst::Copy { src, .. } | Inst::Unary { src, .. } => rewrite(src),
                    Inst::Binary { lhs, rhs, .. } => {
                        rewrite(lhs);
                        rewrite(rhs);
                    }
                    Inst::Load { index, .. } => rewrite(index),
                    Inst::Store { index, value, .. } => {
                        rewrite(index);
                        rewrite(value);
                    }
                    Inst::Const { .. } => {}
                    Inst::Call { args, .. } => args.iter_mut().for_each(rewrite),
                }
                if local_consts + local_copies > 0 {
                    changed = true;
                    stats.consts_propagated += local_consts;
                    stats.copies_propagated += local_copies;
                }

                // Fold now-constant operations.
                let folded: Option<(VarId, i64)> = match *inst {
                    Inst::Unary {
                        dst,
                        op,
                        src: Operand::Const(c),
                    } => Some((dst, op.eval(c))),
                    Inst::Binary {
                        dst,
                        op,
                        lhs: Operand::Const(a),
                        rhs: Operand::Const(b),
                    } => Some((dst, op.eval(a, b))),
                    _ => None,
                };
                if let Some((dst, value)) = folded {
                    *inst = Inst::Const { dst, value };
                    stats.folded += 1;
                    changed = true;
                }

                // Update value state.
                match inst {
                    Inst::Const { dst, value } => {
                        known.insert(*dst, Operand::Const(*value));
                    }
                    Inst::Copy { dst, src } => {
                        let resolved = resolve(&known, *src);
                        // A copy of a var that is itself overwritten
                        // later must not leak; invalidate on redefinition
                        // below keeps this sound because `known` maps to
                        // *operands valid right now* and any redefinition
                        // of the source invalidates entries pointing at
                        // it.
                        known.insert(*dst, resolved);
                    }
                    _ => {
                        if let Some(d) = inst.def() {
                            known.remove(&d);
                        }
                    }
                }
                // Invalidate mappings that referenced a redefined var.
                if let Some(d) = inst.def() {
                    known.retain(|_, v| v.as_var() != Some(d));
                }
            }
            // Rewrite the terminator's operand.
            match &mut block.term {
                Terminator::Branch { cond, .. } => {
                    let new = resolve(&known, *cond);
                    if new != *cond {
                        *cond = new;
                        changed = true;
                        stats.copies_propagated += 1;
                    }
                }
                Terminator::Return(Some(op)) => {
                    let new = resolve(&known, *op);
                    if new != *op {
                        *op = new;
                        changed = true;
                        stats.copies_propagated += 1;
                    }
                }
                _ => {}
            }
        }

        // --- Global dead-code elimination. ---
        let mut used = vec![false; app.vars().len()];
        for &(v, _) in app.globals_init() {
            used[v.0 as usize] = true; // observable state
        }
        for block in &blocks {
            for inst in &block.insts {
                for u in inst.uses() {
                    used[u.0 as usize] = true;
                }
            }
            if let Some(u) = block.term.use_var() {
                used[u.0 as usize] = true;
            }
        }
        for block in &mut blocks {
            let before = block.insts.len();
            block.insts.retain(|inst| match inst.def() {
                Some(d) => {
                    // Stores/calls have effects beyond the def; they
                    // define nothing/optionally, handled below.
                    used[d.0 as usize] || matches!(inst, Inst::Call { .. })
                }
                None => true, // Store: side effect, keep
            });
            let removed = before - block.insts.len();
            if removed > 0 {
                stats.dead_removed += removed;
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }

    let optimized = Application::from_parts(
        app.name().to_owned(),
        app.vars().to_vec(),
        app.arrays().to_vec(),
        blocks,
        app.entry(),
        app.globals_init().to_vec(),
        app.structure().to_vec(),
    );
    (optimized, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use crate::lower::lower;
    use crate::parser::parse;
    use proptest::prelude::*;

    fn app(src: &str) -> Application {
        lower(&parse(src).unwrap()).unwrap()
    }

    fn run(a: &Application, arrays: &[(&str, Vec<i64>)]) -> (Option<i64>, Vec<Vec<i64>>) {
        let mut it = Interpreter::new(a);
        for (n, d) in arrays {
            it.set_array(n, d).unwrap();
        }
        let r = it.run(10_000_000).unwrap().return_value;
        let mem: Vec<Vec<i64>> = a
            .arrays()
            .iter()
            .map(|info| it.array(&info.name).unwrap().to_vec())
            .collect();
        (r, mem)
    }

    #[test]
    fn removes_dead_temps() {
        let a = app("app t; var g = 0; func main() { var unused = 5 + g; g = 2; return g; }");
        let (o, stats) = optimize(&a);
        assert!(stats.dead_removed > 0, "{stats:?}");
        assert!(o.inst_count() < a.inst_count());
        assert_eq!(run(&o, &[]).0, run(&a, &[]).0);
    }

    #[test]
    fn propagates_copies_through_chains() {
        let a = app("app t; var g = 7; func main() { var x = g; var y = x; var z = y; return z; }");
        let (o, stats) = optimize(&a);
        assert!(stats.copies_propagated > 0);
        assert_eq!(run(&o, &[]).0, Some(7));
        // The chain collapses: few instructions remain.
        assert!(o.inst_count() <= a.inst_count());
    }

    #[test]
    fn folds_constants_across_statements() {
        let a = app("app t; func main() { var x = 3; var y = x * 4; return y + 1; }");
        let (o, stats) = optimize(&a);
        assert!(stats.folded > 0 || stats.copies_propagated > 0);
        assert_eq!(run(&o, &[]).0, Some(13));
    }

    #[test]
    fn preserves_stores_and_loop_semantics() {
        let src = r#"app t; var buf[16]; var s = 0;
            func main() {
                for (var i = 0; i < 16; i = i + 1) { buf[i] = i * 3; }
                for (var j = 0; j < 16; j = j + 1) { s = s + buf[j]; }
                return s;
            }"#;
        let a = app(src);
        let (o, _) = optimize(&a);
        let (r1, m1) = run(&a, &[]);
        let (r2, m2) = run(&o, &[]);
        assert_eq!(r1, r2);
        assert_eq!(m1, m2);
    }

    #[test]
    fn copy_invalidation_on_source_redefinition() {
        // y = x; x = 9; return y  — y must keep the OLD x.
        let a =
            app("app t; var g = 0; func main() { var x = 4; var y = x; x = 9; g = x; return y; }");
        let (o, _) = optimize(&a);
        assert_eq!(run(&o, &[]).0, Some(4));
    }

    #[test]
    fn optimization_is_idempotent() {
        let a = app(
            "app t; var g = 1; func main() { var x = g + 0; var y = x; while (y > 0) { y = y - 1; } return y; }",
        );
        let (o1, _) = optimize(&a);
        let (o2, s2) = optimize(&o1);
        assert_eq!(o1.inst_count(), o2.inst_count());
        assert_eq!(s2.dead_removed, 0);
    }

    fn arb_src() -> impl Strategy<Value = String> {
        (-20i64..20, -20i64..20, 1i64..10, 0usize..5).prop_map(|(a, b, trips, flavor)| {
            let extra = match flavor {
                0 => "var dead = a * b + 3;".to_owned(),
                1 => "var c1 = a; var c2 = c1; a = c2 + 1;".to_owned(),
                2 => "out[1] = a & b;".to_owned(),
                3 => "var k = 5 * 4; a = a + k;".to_owned(),
                _ => "if (a > b) { a = b; } else { b = a; }".to_owned(),
            };
            format!(
                r#"app p; var out[4];
                    func main() {{
                        var a = {a};
                        var b = {b};
                        for (var i = 0; i < {trips}; i = i + 1) {{
                            {extra}
                            a = a + b;
                            b = b ^ i;
                        }}
                        out[0] = a;
                        return a - b;
                    }}"#
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Optimization never changes observable behaviour.
        #[test]
        fn optimize_preserves_semantics(src in arb_src()) {
            let a = app(&src);
            let (o, _) = optimize(&a);
            let (r1, m1) = run(&a, &[]);
            let (r2, m2) = run(&o, &[]);
            prop_assert_eq!(r1, r2);
            prop_assert_eq!(m1, m2);
        }

        /// Optimization never grows the program.
        #[test]
        fn optimize_never_grows(src in arb_src()) {
            let a = app(&src);
            let (o, _) = optimize(&a);
            prop_assert!(o.inst_count() <= a.inst_count());
        }
    }
}
