//! One named test per fault-injection scenario, each asserting the
//! *documented* degradation on a fixed, hand-written application —
//! independent of the generator, so a scenario regression cannot hide
//! behind a generator change.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

use corepart::engine::Engine;
use corepart::evaluate::{evaluate_initial_captured, Partition};
use corepart::flow::DesignFlow;
use corepart::partition::{schedule_key, Partitioner};
use corepart::prepare::Workload;
use corepart::system::SystemConfig;
use corepart::verify::{replay_batch, replay_run};
use corepart_ir::lower::lower;
use corepart_ir::op::BlockId;
use corepart_ir::parser::parse;
use corepart_isa::simulator::SimError;
use corepart_isa::trace::ReferenceTrace;

const APP: &str = r#"app fault; var x[64]; var y[64]; var s = 0;
    func main() {
        for (var i = 1; i < 63; i = i + 1) {
            y[i] = (x[i - 1] + 2 * x[i] + x[i + 1]) >> 2;
        }
        for (var j = 0; j < 64; j = j + 1) { s = s + y[j]; }
        return s;
    }"#;

fn workload() -> Workload {
    Workload::from_arrays([("x", (0..64).map(|i| (i * 7) % 31).collect::<Vec<i64>>())])
}

fn app() -> corepart_ir::cdfg::Application {
    lower(&parse(APP).unwrap()).unwrap()
}

/// A capture of the reference run, plus the session pieces replay
/// needs.
fn captured(engine: &Engine) -> (ReferenceTrace, corepart_ir::cdfg::Application, Workload) {
    let application = app();
    let load = workload();
    let session = engine.session(&application, &load);
    let prepared = session.prepared().unwrap();
    let (_, _, trace) = evaluate_initial_captured(prepared, session.config(), usize::MAX).unwrap();
    (trace.expect("uncapped capture exists"), application, load)
}

#[test]
fn cap_overflow_falls_back_bit_identically() {
    // Scenario: trace_cap_bytes = 0 (capture disabled) and = 64 (any
    // real run overflows) both fall back to direct simulation with
    // the exact outcome of the replay-backed default.
    let reference = DesignFlow::new().run_source(APP, workload()).unwrap();
    for cap in [0usize, 64] {
        let config = SystemConfig::new().with_trace_cap(cap);
        let capped = DesignFlow::with_config(config)
            .run_source(APP, workload())
            .unwrap();
        assert_eq!(
            capped.outcome, reference.outcome,
            "trace_cap_bytes = {cap} changed the outcome"
        );
    }
}

#[test]
fn corrupted_trace_is_rejected_not_replayed() {
    let engine = Engine::new(SystemConfig::new()).unwrap();
    let (trace, application, load) = captured(&engine);
    let session = engine.session(&application, &load);
    let prepared = session.prepared().unwrap();
    let config = session.config();

    let mut corrupted = trace.clone();
    assert!(corrupted.corrupt_byte(true, 0), "addr stream has bytes");
    // Validation sees the damage...
    let validation = corrupted.validate();
    assert!(matches!(validation, Err(SimError::TraceCorrupt { .. })));
    let message = validation.unwrap_err().to_string();
    assert!(message.contains("fingerprint mismatch"), "got: {message}");
    // ...and replay refuses without panicking and without statistics.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        replay_run(prepared, config, &corrupted, &HashSet::new())
    }));
    match outcome {
        Ok(Err(SimError::TraceCorrupt { .. })) => {}
        Ok(Ok(_)) => panic!("replay of a corrupted capture produced statistics"),
        Ok(Err(other)) => panic!("expected TraceCorrupt, got {other}"),
        Err(_) => panic!("replay of a corrupted capture panicked"),
    }
    // The pc stream is equally protected.
    let mut pc_corrupted = trace.clone();
    assert!(pc_corrupted.corrupt_byte(false, 0), "pc stream has bytes");
    assert!(matches!(
        pc_corrupted.validate(),
        Err(SimError::TraceCorrupt { .. })
    ));
}

#[test]
fn truncated_trace_fails_event_conservation() {
    let engine = Engine::new(SystemConfig::new()).unwrap();
    let (trace, application, load) = captured(&engine);
    let session = engine.session(&application, &load);
    let prepared = session.prepared().unwrap();
    let config = session.config();

    let mut truncated = trace.clone();
    assert!(truncated.truncate_pcs(3) > 0, "pc stream has bytes to cut");
    // Re-stamping the fingerprint makes validation pass — only the
    // replay-side conservation check can now catch the damage.
    truncated.refingerprint();
    assert!(truncated.validate().is_ok());
    match replay_run(prepared, config, &truncated, &HashSet::new()) {
        Err(SimError::TraceCorrupt { detail }) => {
            assert!(detail.contains("recorded"), "got: {detail}");
        }
        Err(other) => panic!("expected TraceCorrupt, got {other}"),
        Ok(_) => panic!("replay of a truncated capture produced statistics"),
    }
    // Through the library error type, the failure stays loud and typed.
    let wrapped: corepart::CorepartError = SimError::TraceCorrupt {
        detail: "probe".to_string(),
    }
    .into();
    assert!(wrapped.to_string().contains("reference trace corrupt"));
}

#[test]
fn truncated_trace_fails_the_whole_batch() {
    let engine = Engine::new(SystemConfig::new()).unwrap();
    let (trace, application, load) = captured(&engine);
    let session = engine.session(&application, &load);
    let prepared = session.prepared().unwrap();
    let config = session.config();

    let mut truncated = trace.clone();
    assert!(truncated.truncate_pcs(3) > 0, "pc stream has bytes to cut");
    truncated.refingerprint();
    assert!(truncated.validate().is_ok());

    // One all-software lane plus an all-hardware lane: the batched
    // kernel must reject the damaged capture wholesale with the typed
    // error — no panic, no partial lane results — even though each
    // lane alone replays cleanly on the undamaged capture.
    let all_blocks: HashSet<BlockId> = (0..prepared.app.blocks().len())
        .map(|b| BlockId(b as u32))
        .collect();
    let candidates = vec![HashSet::new(), all_blocks];
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        replay_batch(prepared, config, &truncated, &candidates)
    }));
    match outcome {
        Ok(Err(SimError::TraceCorrupt { detail })) => {
            assert!(detail.contains("recorded"), "got: {detail}");
        }
        Ok(Ok(_)) => panic!("batched replay of a truncated capture produced lane results"),
        Ok(Err(other)) => panic!("expected TraceCorrupt, got {other}"),
        Err(_) => panic!("batched replay of a truncated capture panicked"),
    }

    // The same batch over the undamaged capture verifies every lane.
    let clean = replay_batch(prepared, config, &trace, &candidates).unwrap();
    assert_eq!(clean.len(), candidates.len());
    for (hw, lane) in candidates.iter().zip(&clean) {
        assert_eq!(
            replay_run(prepared, config, &trace, hw).unwrap(),
            *lane,
            "clean batch lane diverged from sequential replay"
        );
    }
}

/// The feasible single-cluster partitions of the first candidate,
/// one per designer resource set, with their schedules.
fn feasible_partitions(
    partitioner: &Partitioner<'_>,
) -> Vec<(
    Partition,
    std::sync::Arc<corepart_sched::cache::ScheduledCluster>,
)> {
    let candidate = partitioner.candidates()[0].cluster;
    let mut feasible = Vec::new();
    for index in 0.. {
        let Ok(set) = partitioner.config().resource_set(index) else {
            break;
        };
        let partition = Partition::single(candidate, set.clone());
        if let Ok(scheduled) = partitioner.scheduled(&partition) {
            feasible.push((partition, scheduled));
        }
    }
    feasible
}

#[test]
fn evicted_schedule_entry_recomputes_identically() {
    let application = app();
    let load = workload();
    let engine = Engine::new(SystemConfig::new()).unwrap();
    let session = engine.session(&application, &load);
    let partitioner = Partitioner::new(&session).unwrap();

    let feasible = feasible_partitions(&partitioner);
    let (partition, original) = feasible.first().expect("some set schedules the cluster");

    let key = schedule_key(partition);
    assert!(
        partitioner.schedule_cache().evict(&key),
        "entry was cached after scheduling"
    );
    let recomputed = partitioner.scheduled(partition).unwrap();
    assert_eq!(
        *recomputed, **original,
        "recompute after eviction diverged from the cached schedule"
    );
}

#[test]
fn poisoned_schedule_entry_is_detected_by_recompute() {
    let application = app();
    let load = workload();
    let engine = Engine::new(SystemConfig::new()).unwrap();
    let session = engine.session(&application, &load);
    let partitioner = Partitioner::new(&session).unwrap();

    // Two different feasible schedules of the same cluster (distinct
    // resource sets bind differently).
    let feasible = feasible_partitions(&partitioner);
    let (real, truth) = feasible.first().expect("some set schedules the cluster");
    let (_, wrong) = feasible
        .iter()
        .find(|(_, s)| **s != **truth)
        .expect("two sets schedule the cluster differently");

    // Poison: the cache serves the wrong entry verbatim (caches are
    // authoritative by design)...
    let key = schedule_key(real);
    partitioner
        .schedule_cache()
        .poison(key.clone(), (**wrong).clone());
    let served = partitioner.scheduled(real).unwrap();
    assert_eq!(*served, **wrong, "cache must serve the poisoned entry");
    assert_ne!(*served, **truth);

    // ...so the evict-and-recompute differential is what detects it.
    partitioner.schedule_cache().evict(&key);
    let healed = partitioner.scheduled(real).unwrap();
    assert_eq!(*healed, **truth, "recompute must restore the real schedule");
}
