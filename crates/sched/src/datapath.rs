//! ASIC-core datapath hardware estimate.
//!
//! `GEQ_RS` (Fig. 4) counts only the functional units. A synthesizable
//! core also needs registers, steering logic (multiplexers) and a
//! controller FSM; this module adds first-order estimates for those so
//! the reported "additional hardware effort" is comparable to the
//! paper's gate-level cell counts (≤ 16 k cells, §4).

use corepart_tech::resource::ResourceLibrary;
use corepart_tech::units::GateEq;

use crate::binding::{Binding, ClusterSchedule};

/// Gate-equivalent cost of one 32-bit register (incl. clocking).
const GEQ_PER_REGISTER: u64 = 180;
/// Gate-equivalent cost of one 32-bit 2:1 multiplexer.
const GEQ_PER_MUX: u64 = 48;
/// Controller cost per FSM state (state register share + decode).
const GEQ_PER_STATE: u64 = 10;
/// Fixed controller/bus-interface overhead.
const GEQ_CONTROL_BASE: u64 = 420;

/// Breakdown of the estimated ASIC-core hardware effort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatapathEstimate {
    /// Functional units (`GEQ_RS` from the binding).
    pub functional_units: GateEq,
    /// Pipeline/holding registers.
    pub registers: GateEq,
    /// Input multiplexers of shared functional units.
    pub steering: GateEq,
    /// Controller FSM + shared-memory bus interface.
    pub controller: GateEq,
}

impl DatapathEstimate {
    /// Total estimated cells.
    pub fn total(&self) -> GateEq {
        self.functional_units + self.registers + self.steering + self.controller
    }
}

/// Estimates the full datapath for a bound cluster schedule.
pub fn estimate_datapath(
    sched: &ClusterSchedule,
    binding: &Binding,
    lib: &ResourceLibrary,
) -> DatapathEstimate {
    let _ = lib;
    let total_instances = u64::from(binding.total_instances());
    let total_ops: u64 = sched.schedules.iter().map(|s| s.slots.len() as u64).sum();

    // Registers: roughly two holding registers per instance plus a
    // handful of loop/index registers.
    let registers = GateEq::new((2 * total_instances + 4) * GEQ_PER_REGISTER);

    // Steering: every shared instance needs input muxes; sharing degree
    // = ops per instance. Two inputs per FU, (degree - 1) 2:1 muxes
    // each.
    // Sharing degree bounded: synthesis tools cluster sources into
    // mux trees whose cost saturates around 6 inputs per FU port.
    let degree = if total_instances == 0 {
        0
    } else {
        total_ops.div_ceil(total_instances).min(6)
    };
    let steering = GateEq::new(2 * total_instances * degree.saturating_sub(1) * GEQ_PER_MUX);

    // Controller: one FSM state per control step of the longest static
    // schedule path plus dispatch states per block.
    let states: u64 = sched.schedules.iter().map(|s| s.length + 1).sum();
    let controller = GateEq::new(GEQ_CONTROL_BASE + states * GEQ_PER_STATE);

    DatapathEstimate {
        functional_units: binding.geq_rs,
        registers,
        steering,
        controller,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{bind, schedule_cluster};
    use corepart_ir::lower::lower;
    use corepart_ir::op::BlockId;
    use corepart_ir::parser::parse;
    use corepart_tech::resource::ResourceSet;

    fn estimate_for(src: &str, set_idx: usize) -> DatapathEstimate {
        let app = lower(&parse(src).unwrap()).unwrap();
        let lib = ResourceLibrary::cmos6();
        let set = &ResourceSet::default_family()[set_idx];
        let blocks: Vec<BlockId> = app
            .structure()
            .iter()
            .find(|n| n.is_loop())
            .expect("loop")
            .blocks()
            .to_vec();
        let cs = schedule_cluster(&app, &blocks, set, &lib).unwrap();
        let b = bind(&cs, &lib);
        estimate_datapath(&cs, &b, &lib)
    }

    const KERNEL: &str = r#"app t; var x[64]; var y[64];
        func main() {
            for (var i = 1; i < 63; i = i + 1) {
                y[i] = (x[i - 1] * 3 + x[i] * 4 + x[i + 1]) >> 3;
            }
        }"#;

    #[test]
    fn overheads_are_nonzero() {
        let e = estimate_for(KERNEL, 2);
        assert!(e.functional_units.cells() > 0);
        assert!(e.registers.cells() > 0);
        assert!(e.controller.cells() > 0);
        assert_eq!(
            e.total().cells(),
            e.functional_units.cells()
                + e.registers.cells()
                + e.steering.cells()
                + e.controller.cells()
        );
    }

    #[test]
    fn total_in_paper_band_for_dsp_kernel() {
        // The paper's largest core is "slightly less than 16k cells";
        // a mid-size DSP kernel on the m-dsp set should land well
        // within a plausible 2k–20k band.
        let e = estimate_for(KERNEL, 2);
        let cells = e.total().cells();
        assert!((2_000..20_000).contains(&cells), "estimated {cells} cells");
    }

    #[test]
    fn fu_cost_dominates_for_multiplier_datapaths() {
        let e = estimate_for(KERNEL, 2);
        assert!(e.functional_units.cells() > e.steering.cells());
    }
}
