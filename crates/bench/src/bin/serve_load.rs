//! `serve_load` — scripted TCP load driver for a running `corepart
//! serve` daemon (the CI serve-smoke client).
//!
//! ```text
//! cargo run --release -p corepart-bench --bin serve_load [port]
//! ```
//!
//! Connects to `127.0.0.1:port` (default: the daemon's default port),
//! fires a request sequence with repeated fingerprints across all
//! three compute commands, then asserts through the `stats` endpoint
//! that the warm store actually served: hit rate above zero and a
//! reported p99 latency. One partition response line is echoed to
//! stdout so the CI job can grep the served session's `batch_shards`.
//! Finishes with a `shutdown` request. Any failed expectation exits
//! nonzero.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use corepart::json::{parse_json, JsonValue};
use corepart::serve::{ComputeKind, ComputeRequest, DEFAULT_PORT};
use corepart_bench::SEED;
use corepart_workloads::{all, PaperWorkload};

fn fail(message: &str) -> ! {
    eprintln!("serve_load: {message}");
    std::process::exit(1);
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(port: u16) -> Client {
        // The daemon may still be booting when CI launches the driver.
        let mut last = String::new();
        for _ in 0..50 {
            match TcpStream::connect(("127.0.0.1", port)) {
                Ok(stream) => {
                    return Client {
                        reader: BufReader::new(stream.try_clone().expect("clone stream")),
                        writer: stream,
                    }
                }
                Err(e) => {
                    last = e.to_string();
                    std::thread::sleep(Duration::from_millis(200));
                }
            }
        }
        fail(&format!("cannot connect to 127.0.0.1:{port}: {last}"));
    }

    fn ask(&mut self, line: &str) -> JsonValue {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .unwrap_or_else(|e| fail(&format!("send failed: {e}")));
        let mut response = String::new();
        self.reader
            .read_line(&mut response)
            .unwrap_or_else(|e| fail(&format!("receive failed: {e}")));
        if response.is_empty() {
            fail("the daemon closed the connection mid-sequence");
        }
        let parsed = parse_json(response.trim_end())
            .unwrap_or_else(|e| fail(&format!("unparseable response {response:?}: {e}")));
        if parsed.get("ok").and_then(JsonValue::as_bool) != Some(true) {
            fail(&format!("request was rejected: {}", response.trim_end()));
        }
        parsed
    }
}

fn requests_for(w: &PaperWorkload) -> Vec<ComputeRequest> {
    let mut partition = ComputeRequest::new(ComputeKind::Partition, w.source);
    partition.arrays = w.arrays(SEED);
    let mut explore = partition.clone();
    explore.kind = ComputeKind::Explore;
    explore.weights = Some(vec![0.0, 1.0]);
    let mut verify = partition.clone();
    verify.kind = ComputeKind::Verify;
    verify.clusters = vec![0];
    vec![partition, explore, verify]
}

fn main() {
    let port: u16 = match std::env::args().nth(1) {
        Some(p) => p
            .parse()
            .unwrap_or_else(|_| fail(&format!("bad port `{p}`"))),
        None => DEFAULT_PORT,
    };
    let mut client = Client::connect(port);

    // Two small apps, three commands each, the whole block twice: the
    // second pass repeats every fingerprint against a warm store.
    let apps: Vec<PaperWorkload> = all().into_iter().take(2).collect();
    let mut id = 0u64;
    let mut partition_response = None;
    for pass in 0..2 {
        for w in &apps {
            for mut req in requests_for(w) {
                id += 1;
                req.id = Some(id);
                let response = client.ask(&req.to_json());
                if pass == 1 && req.kind == ComputeKind::Partition && partition_response.is_none() {
                    partition_response = Some(response);
                }
            }
        }
    }

    // One served partition response on stdout — CI greps its session
    // stats for `batch_shards` to prove the sharded kernel ran.
    let Some(partition_response) = partition_response else {
        fail("no partition response captured");
    };
    println!(
        "{}",
        crate_response_line(&partition_response).unwrap_or_else(|| fail("response not an object"))
    );

    let stats = client.ask(&format!("{{\"id\":{},\"cmd\":\"stats\"}}", id + 1));
    let result = stats
        .get("result")
        .unwrap_or_else(|| fail("stats response has no result"));
    let hit_rate = result
        .get("hit_rate")
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| fail("stats report no hit_rate"));
    let p99 = result
        .get("latency")
        .and_then(|l| l.get("p99_nanos"))
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| fail("stats report no p99"));
    let requests = result
        .get("requests")
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);
    if hit_rate <= 0.0 {
        fail(&format!("expected a warm hit rate, got {hit_rate}"));
    }
    if p99 == 0 {
        fail("expected a nonzero p99 latency");
    }
    eprintln!("serve_load: {requests} requests, hit rate {hit_rate:.2}, p99 {p99} ns");

    client.ask(&format!("{{\"id\":{},\"cmd\":\"shutdown\"}}", id + 2));
    eprintln!("serve_load: shutdown acknowledged");
}

/// Re-renders the captured partition response as one stdout line (the
/// parsed form is re-serialized so the grep target is what the daemon
/// actually said, minus any framing whitespace).
fn crate_response_line(v: &JsonValue) -> Option<String> {
    fn render(v: &JsonValue, out: &mut String) {
        match v {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => out.push_str(&format!("{n}")),
            JsonValue::Str(s) => {
                out.push('"');
                out.push_str(&corepart::json::json_escape(s));
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render(item, out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, item)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&corepart::json::json_escape(k));
                    out.push_str("\":");
                    render(item, out);
                }
                out.push('}');
            }
        }
    }
    matches!(v, JsonValue::Obj(_)).then(|| {
        let mut out = String::new();
        render(v, &mut out);
        out
    })
}
