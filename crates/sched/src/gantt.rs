//! Text Gantt rendering of block schedules.
//!
//! Shows, per resource instance, which control steps it is busy in —
//! the picture an HLS designer draws to sanity-check a schedule, and
//! the visual counterpart of the paper's `Glob_RS_List[cs][rs][is]`
//! occupancy matrix.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use corepart_tech::resource::{ResourceKind, ResourceLibrary};

use crate::binding::{Binding, ClusterSchedule};
use crate::list::BlockSchedule;

/// Renders one block's schedule with anonymous per-kind lanes.
///
/// Each row is a resource instance; `#` marks busy steps, `.` idle
/// ones. Operations are numbered in instruction order where they start.
pub fn render_block(sched: &BlockSchedule) -> String {
    if sched.slots.is_empty() {
        return "(empty schedule)\n".to_owned();
    }
    // Assign display lanes per kind (lowest free lane, like binding).
    // One lane holds `(start, end, op_index)` intervals.
    type Lane = Vec<(u64, u64, usize)>;
    let mut lanes: BTreeMap<ResourceKind, Vec<Lane>> = BTreeMap::new();
    for (op, slot) in sched.slots.iter().enumerate() {
        let kind_lanes = lanes.entry(slot.kind).or_default();
        let interval = (slot.step, slot.step + slot.latency);
        let lane = kind_lanes.iter().position(|l| {
            l.iter()
                .all(|&(s, e, _)| interval.0 >= e || s >= interval.1)
        });
        let li = match lane {
            Some(i) => i,
            None => {
                kind_lanes.push(Vec::new());
                kind_lanes.len() - 1
            }
        };
        kind_lanes[li].push((interval.0, interval.1, op));
    }

    let width = sched.length as usize;
    let mut out = String::new();
    let _ = writeln!(out, "steps: 0..{}", sched.length);
    for (kind, kind_lanes) in &lanes {
        for (li, lane) in kind_lanes.iter().enumerate() {
            let mut row = vec!['.'; width];
            for &(s, e, op) in lane {
                for t in s..e {
                    row[t as usize] = '#';
                }
                // Mark the start with the op index (mod 10) for
                // traceability.
                row[s as usize] = char::from_digit((op % 10) as u32, 10).unwrap_or('#');
            }
            let _ = writeln!(
                out,
                "{:<12} {}",
                format!("{kind}[{li}]"),
                row.into_iter().collect::<String>()
            );
        }
    }
    out
}

/// Renders a whole bound cluster schedule, block by block, with the
/// binding's instance numbering and a per-instance busy total.
pub fn render_cluster(sched: &ClusterSchedule, binding: &Binding, lib: &ResourceLibrary) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "cluster on `{}`: {} block(s), {} instance(s), GEQ_RS = {}",
        sched.set_name,
        sched.blocks.len(),
        binding.total_instances(),
        binding.geq_rs,
    );
    for (&kind, &n) in &binding.instances {
        let _ = writeln!(out, "  {n} x {kind} ({} each)", lib.expect_spec(kind).geq());
    }
    for (bi, bs) in sched.schedules.iter().enumerate() {
        let _ = writeln!(out, "-- {} ({} steps)", sched.blocks[bi], bs.length);
        out.push_str(&render_block(bs));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{bind, schedule_cluster};
    use crate::dfg::BlockDfg;
    use crate::list::list_schedule;
    use corepart_ir::lower::lower;
    use corepart_ir::op::BlockId;
    use corepart_ir::parser::parse;
    use corepart_tech::resource::ResourceSet;

    const SRC: &str = r#"app t; var x[32]; var y[32];
        func main() {
            for (var i = 1; i < 31; i = i + 1) {
                y[i] = x[i] * 3 + (x[i - 1] >> 1);
            }
        }"#;

    #[test]
    fn block_gantt_marks_busy_steps() {
        let app = lower(&parse(SRC).unwrap()).unwrap();
        let bid = (0..app.blocks().len() as u32)
            .map(BlockId)
            .max_by_key(|&b| app.block(b).insts.len())
            .unwrap();
        let dfg = BlockDfg::build(&app, bid);
        let lib = ResourceLibrary::cmos6();
        let set = &ResourceSet::default_family()[2];
        let sched = list_schedule(&dfg, set, &lib).unwrap();
        let g = render_block(&sched);
        assert!(g.contains("steps: 0.."));
        assert!(g.contains("memport[0]"));
        assert!(g.contains('#') || g.chars().any(|c| c.is_ascii_digit()));
        // Row width matches the schedule length.
        for line in g.lines().skip(1) {
            let cells = line.split_whitespace().nth(1).expect("row");
            assert_eq!(cells.chars().count(), sched.length as usize, "{line}");
        }
    }

    #[test]
    fn cluster_gantt_lists_instances() {
        let app = lower(&parse(SRC).unwrap()).unwrap();
        let lib = ResourceLibrary::cmos6();
        let set = &ResourceSet::default_family()[2];
        let blocks = app
            .structure()
            .iter()
            .find(|n| n.is_loop())
            .unwrap()
            .blocks()
            .to_vec();
        let sched = schedule_cluster(&app, &blocks, set, &lib).unwrap();
        let binding = bind(&sched, &lib);
        let g = render_cluster(&sched, &binding, &lib);
        assert!(g.contains("GEQ_RS"));
        assert!(g.contains("x multiplier"));
        assert!(g.contains("-- bb"));
    }

    #[test]
    fn empty_schedule_renders() {
        let g = render_block(&BlockSchedule::empty());
        assert!(g.contains("empty"));
    }
}
