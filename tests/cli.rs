//! Integration tests of the `corepart` command-line front end.

use std::io::Write as _;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_corepart"))
}

fn sample_file() -> tempfile::NamedFile {
    let mut f = tempfile::NamedFile::new();
    write!(
        f.file,
        r#"app clidemo;
var x[48];
var y[48];
func main() {{
    for (var i = 1; i < 47; i = i + 1) {{
        y[i] = x[i] * 3 + x[i - 1];
    }}
    var s = 0;
    for (var j = 0; j < 48; j = j + 1) {{ s = s + y[j]; }}
    return s;
}}
"#
    )
    .expect("write sample");
    f
}

/// Minimal stand-in for the tempfile crate (not a dependency): a file
/// in the target tmpdir with a unique-enough name, removed on drop.
mod tempfile {
    use std::fs::File;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    static COUNTER: AtomicU32 = AtomicU32::new(0);

    pub struct NamedFile {
        pub file: File,
        pub path: PathBuf,
    }

    impl NamedFile {
        pub fn new() -> Self {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir()
                .join(format!("corepart-cli-test-{}-{n}.bdl", std::process::id()));
            let file = File::create(&path).expect("create temp file");
            NamedFile { file, path }
        }
    }

    impl Drop for NamedFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.path);
        }
    }

    /// A scratch directory, removed recursively on drop.
    pub struct NamedDir {
        pub path: PathBuf,
    }

    impl NamedDir {
        pub fn new() -> Self {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir()
                .join(format!("corepart-cli-test-dir-{}-{n}", std::process::id()));
            std::fs::create_dir_all(&path).expect("create temp dir");
            NamedDir { path }
        }
    }

    impl Drop for NamedDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[test]
fn partition_command_prints_table() {
    let f = sample_file();
    let out = bin()
        .args(["partition", f.path.to_str().expect("utf8 path")])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("clidemo"), "{text}");
    assert!(text.contains("i-cache"));
}

#[test]
fn partition_json_is_emitted() {
    let f = sample_file();
    let out = bin()
        .args(["partition", f.path.to_str().expect("utf8"), "--json"])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.trim_start().starts_with('{'), "{text}");
    assert!(text.contains("\"app\":\"clidemo\""));
    assert!(text.contains("\"search\""));
}

#[test]
fn clusters_and_disasm_and_schedule_work() {
    let f = sample_file();
    for (cmd, needle) in [
        ("clusters", "cluster chain"),
        ("disasm", "halt"),
        ("schedule", "GEQ_RS"),
    ] {
        let out = bin()
            .args([cmd, f.path.to_str().expect("utf8")])
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "{cmd}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(
            text.contains(needle),
            "{cmd} output missing `{needle}`: {text}"
        );
    }
}

#[test]
fn explore_command_prints_frontier() {
    let f = sample_file();
    let out = bin()
        .args(["explore", f.path.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("initial (all software)"), "{text}");
    assert!(text.contains("G = "), "{text}");
}

#[test]
fn explore_json_marks_pareto_membership() {
    let f = sample_file();
    let out = bin()
        .args(["explore", f.path.to_str().expect("utf8"), "--json"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.trim_start().starts_with("{\"points\":["), "{text}");
    assert!(text.contains("\"pareto\":true"), "{text}");
    assert!(text.contains("\"initial\":true"), "{text}");
}

#[test]
fn threads_flag_is_accepted_and_output_matches_default() {
    let f = sample_file();
    let path = f.path.to_str().expect("utf8");
    let default = bin()
        .args(["partition", path, "--json"])
        .output()
        .expect("runs");
    let single = bin()
        .args(["partition", path, "--json", "--threads", "1"])
        .output()
        .expect("runs");
    assert!(default.status.success() && single.status.success());
    // Thread count must not change the chosen design: compare the
    // JSON up to the timing-carrying "search" object.
    let strip = |raw: &[u8]| {
        let text = String::from_utf8_lossy(raw).into_owned();
        let cut = text.find("\"search\"").expect("search key");
        text[..cut].to_owned()
    };
    assert_eq!(strip(&default.stdout), strip(&single.stdout));

    let bad = bin()
        .args(["partition", path, "--threads", "zebra"])
        .output()
        .expect("runs");
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("bad thread count"));
}

#[test]
fn out_of_range_set_index_reports_config_error() {
    let f = sample_file();
    let out = bin()
        .args([
            "schedule",
            f.path.to_str().expect("utf8"),
            "--set-index",
            "99",
        ])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no resource set at index 99"), "{err}");
}

#[test]
fn array_flag_sets_inputs() {
    let f = sample_file();
    let out = bin()
        .args([
            "partition",
            f.path.to_str().expect("utf8"),
            "--array",
            "x=1,2,3,4,5",
            "--json",
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn bad_usage_fails_gracefully() {
    // Unknown command.
    let f = sample_file();
    let out = bin()
        .args(["frobnicate", f.path.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(!out.status.success());

    // Bad array spec.
    let out = bin()
        .args([
            "partition",
            f.path.to_str().expect("utf8"),
            "--array",
            "oops",
        ])
        .output()
        .expect("runs");
    assert!(!out.status.success());
}

#[test]
fn missing_file_exits_one_with_error_line() {
    // A runtime failure (not a usage error) must exit 1 and explain
    // itself on stderr without any stdout output.
    let out = bin()
        .args(["partition", "/nonexistent/nope.bdl"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(1), "runtime failures exit 1");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.starts_with("error:"), "stderr: {err}");
    assert!(err.contains("nope.bdl"), "names the missing file: {err}");
    assert!(out.stdout.is_empty(), "no partial stdout on failure");
}

#[test]
fn unparseable_source_exits_one_with_parse_error() {
    let mut f = tempfile::NamedFile::new();
    write!(f.file, "app broken; func main() {{ this is not bdl").expect("write garbage");
    let out = bin()
        .args(["partition", f.path.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(1), "parse failures exit 1");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.starts_with("error:"), "stderr: {err}");
    assert!(out.stdout.is_empty(), "no partial stdout on failure");
}

#[test]
fn out_of_range_vdd_exits_one_with_config_error() {
    // A supply below the threshold voltage is a typed configuration
    // error surfaced before any simulation: exit 1, `error:` prefix,
    // and the DVFS range in the message.
    let f = sample_file();
    let out = bin()
        .args(["partition", f.path.to_str().expect("utf8"), "--vdd", "0.2"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(1), "config failures exit 1");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.starts_with("error:"), "stderr: {err}");
    assert!(err.contains("outside"), "names the valid range: {err}");
    assert!(out.stdout.is_empty(), "no partial stdout on failure");

    // Same contract for a node the scaling table does not know.
    let out = bin()
        .args(["partition", f.path.to_str().expect("utf8"), "--node", "123"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown technology node 123"), "{err}");
}

#[test]
fn explore_nodes_emits_scaled_points() {
    let f = sample_file();
    let out = bin()
        .args([
            "explore",
            f.path.to_str().expect("utf8"),
            "--nodes",
            "800,180",
            "--vdd-steps",
            "2",
            "--json",
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.trim_start().starts_with("{\"base\":{"), "{text}");
    assert!(text.contains("\"node_nm\":800"), "{text}");
    assert!(text.contains("\"node_nm\":180"), "{text}");
    assert!(text.contains("\"pareto\":true"), "{text}");
}

/// Fills `dir` with `n` small distinct applications.
fn fill_corpus_dir(dir: &std::path::Path, n: usize) {
    for i in 0..n {
        let source = format!(
            r#"app corp{i};
var x[32];
var y[32];
func main() {{
    for (var i = 1; i < 31; i = i + 1) {{
        y[i] = x[i] * {m} + x[i - 1];
    }}
    var s = 0;
    for (var j = 0; j < 32; j = j + 1) {{ s = s + y[j]; }}
    return s;
}}
"#,
            m = i + 2
        );
        std::fs::write(dir.join(format!("app{i}.bdl")), source).expect("write corpus app");
    }
}

#[test]
fn corpus_usage_errors_exit_two() {
    // The corpus verb without its directory argument is a usage error.
    let out = bin().args(["corpus"]).output().expect("runs");
    assert_eq!(out.status.code(), Some(2), "missing dir is a usage error");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage: corepart"), "stderr: {err}");
    assert!(err.contains("corpus"), "usage names the verb: {err}");
}

#[test]
fn corpus_bad_inputs_exit_one_with_error_line() {
    // A nonexistent directory is a runtime error: exit 1, `error:`.
    let out = bin()
        .args(["corpus", "/nonexistent-corpus-dir"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.starts_with("error:"), "stderr: {err}");

    // An empty directory has nothing to run over.
    let dir = tempfile::NamedDir::new();
    let out = bin()
        .args(["corpus", dir.path.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.starts_with("error:"), "stderr: {err}");
    assert!(err.contains("no .bdl files"), "{err}");

    // A zero chunk size is a configuration error, not a crash.
    fill_corpus_dir(&dir.path, 1);
    let out = bin()
        .args([
            "corpus",
            dir.path.to_str().expect("utf8"),
            "--chunk",
            "0",
            "--out",
            dir.path.join("out.tsv").to_str().expect("utf8"),
        ])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.starts_with("error:"), "stderr: {err}");
    assert!(err.contains("chunk"), "{err}");
}

#[test]
fn corpus_limit_resume_round_trip_matches_one_shot() {
    let dir = tempfile::NamedDir::new();
    fill_corpus_dir(&dir.path, 3);
    let dir_arg = dir.path.to_str().expect("utf8").to_owned();
    let one_shot = dir.path.join("one-shot.tsv");
    let stepped = dir.path.join("stepped.tsv");

    let out = bin()
        .args([
            "corpus",
            &dir_arg,
            "--chunk",
            "2",
            "--out",
            one_shot.to_str().expect("utf8"),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("corpus complete"));

    // Limit to the first chunk, then resume to completion.
    let out = bin()
        .args([
            "corpus",
            &dir_arg,
            "--chunk",
            "2",
            "--limit",
            "1",
            "--out",
            stepped.to_str().expect("utf8"),
        ])
        .output()
        .expect("runs");
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("--resume"),
        "interrupted run points at --resume"
    );
    assert!(!stepped.exists(), "no results file until the run finishes");
    let out = bin()
        .args([
            "corpus",
            &dir_arg,
            "--chunk",
            "2",
            "--resume",
            "--out",
            stepped.to_str().expect("utf8"),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let a = std::fs::read(&one_shot).expect("one-shot results");
    let b = std::fs::read(&stepped).expect("resumed results");
    assert_eq!(a, b, "limit+resume must match the one-shot run");
}

#[test]
fn usage_errors_exit_two() {
    // No arguments at all: usage text, exit 2 (distinct from the
    // exit-1 runtime failures so scripts can tell them apart).
    let out = bin().output().expect("runs");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage: corepart"), "stderr: {err}");

    // A command without its file argument is a usage error too.
    let out = bin().args(["partition"]).output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
}
