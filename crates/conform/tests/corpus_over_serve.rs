//! Distributed-corpus oracle: `conform corpus --connect` against a
//! live `corepart serve` daemon must produce a TSV, journal and Pareto
//! frontier byte-identical to a local run — including a run that is
//! interrupted mid-way and resumed, and one whose daemon hangs up
//! mid-chunk.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use corepart::corpus::{point_to_line, CorpusOptions, RemoteOptions};
use corepart::serve::{handle_line, ServeOptions, Server};
use corepart::store::{ArtifactStore, StoreOptions};
use corepart::system::SystemConfig;
use corepart::tech::scaling::OperatingPoint;
use corepart_conform::corpus::{run_gen_corpus, run_gen_corpus_with};

/// A unique per-test scratch path (the OS temp dir plus pid + counter).
fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "corepart-corpus-serve-test-{}-{n}-{tag}",
        std::process::id()
    ))
}

/// RAII cleanup for the scratch files a test creates.
struct Scratch(Vec<PathBuf>);

impl Scratch {
    fn path(&mut self, tag: &str) -> PathBuf {
        let p = temp_path(tag);
        self.0.push(p.clone());
        p
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        for p in &self.0 {
            let _ = std::fs::remove_file(p);
        }
    }
}

fn small_options() -> CorpusOptions {
    let mut options = CorpusOptions::new(SystemConfig::new());
    options.chunk = 2;
    options.threads = 1;
    options
}

fn spawn_server() -> Server {
    Server::spawn(
        SystemConfig::new(),
        &ServeOptions {
            port: 0,
            shards: 2,
            threads: 1,
            ..ServeOptions::default()
        },
    )
    .unwrap()
}

fn shutdown(server: Server) {
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"{\"cmd\":\"shutdown\"}\n").unwrap();
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).unwrap();
    server.join();
}

fn remote_to(server: &Server, connections: usize) -> RemoteOptions {
    let mut remote = RemoteOptions::new(&server.addr().to_string());
    remote.connections = connections;
    remote
}

/// The tentpole contract end to end: a corpus shipped to a daemon over
/// two pipelined connections reproduces the local TSV and journal byte
/// for byte — as does a remote run interrupted after its first chunk
/// and resumed against the same daemon.
#[test]
fn remote_corpus_matches_local_byte_for_byte() {
    let mut scratch = Scratch(Vec::new());
    let out_local = scratch.path("local.tsv");
    let journal_local = scratch.path("local.journal");
    let local = run_gen_corpus(13, 6, small_options(), &journal_local, &out_local, false)
        .expect("local corpus runs");
    assert!(local.finished);

    let server = spawn_server();

    // One uninterrupted remote run over two pipelined connections.
    let out_remote = scratch.path("remote.tsv");
    let journal_remote = scratch.path("remote.journal");
    let remote = run_gen_corpus_with(
        13,
        6,
        small_options(),
        &journal_remote,
        &out_remote,
        false,
        Some(&remote_to(&server, 2)),
    )
    .expect("remote corpus runs");
    assert!(remote.finished);
    assert_eq!(remote.evaluated, 6);

    let read = |p: &PathBuf| std::fs::read(p).expect("file exists");
    assert_eq!(read(&out_local), read(&out_remote), "TSVs differ");
    assert_eq!(
        read(&journal_local),
        read(&journal_remote),
        "journals differ"
    );
    // Compare frontiers in their canonical serialized form: a fresh
    // local run keeps pre-sanitization labels in memory, exactly like
    // a local resume replaying the journal would not.
    let rendered = |f: &[corepart::explore::DesignPoint]| -> Vec<String> {
        f.iter().map(point_to_line).collect()
    };
    assert_eq!(
        rendered(&local.frontier),
        rendered(&remote.frontier),
        "frontiers differ"
    );

    // Interrupt the remote run after one chunk, then resume it — the
    // journal replay plus the remaining remote chunks must land on the
    // same bytes again.
    let out_resumed = scratch.path("resumed.tsv");
    let journal_resumed = scratch.path("resumed.journal");
    let mut interrupted = small_options();
    interrupted.interrupt_after_chunks = Some(1);
    let partial = run_gen_corpus_with(
        13,
        6,
        interrupted,
        &journal_resumed,
        &out_resumed,
        false,
        Some(&remote_to(&server, 2)),
    )
    .expect("interrupted remote run still succeeds");
    assert!(!partial.finished);
    assert_eq!(partial.chunks_done, 1);

    let resumed = run_gen_corpus_with(
        13,
        6,
        small_options(),
        &journal_resumed,
        &out_resumed,
        true,
        Some(&remote_to(&server, 2)),
    )
    .expect("remote resume succeeds");
    assert!(resumed.finished);
    assert_eq!(resumed.replayed, 2, "the completed chunk is replayed");
    assert_eq!(read(&out_local), read(&out_resumed), "resumed TSV differs");
    assert_eq!(
        read(&journal_local),
        read(&journal_resumed),
        "resumed journal differs"
    );

    shutdown(server);
}

/// A daemon that dies mid-chunk is a typed error naming `--resume`;
/// the journal keeps every durable chunk, and resuming against a
/// healthy daemon completes to the local-run bytes.
#[test]
fn mid_chunk_disconnect_is_reported_and_resumable() {
    let mut scratch = Scratch(Vec::new());

    // A stub daemon that answers exactly one chunk's worth of requests
    // (two lines) through the real protocol handler, then hangs up.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stub = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let store = ArtifactStore::new(SystemConfig::new(), &StoreOptions::default()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        for _ in 0..2 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let (response, _) = handle_line(&store, line.trim_end());
            writer.write_all(response.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
        }
        writer.flush().unwrap();
        // Hang up the response stream but keep draining requests, so
        // the client's next writes land and its next read is a clean
        // EOF (not a racy connection reset).
        writer.shutdown(std::net::Shutdown::Write).unwrap();
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                break;
            }
        }
    });

    let out = scratch.path("cut.tsv");
    let journal = scratch.path("cut.journal");
    let mut remote = RemoteOptions::new(&addr.to_string());
    remote.connections = 1;
    let err = run_gen_corpus_with(29, 4, small_options(), &journal, &out, false, Some(&remote))
        .expect_err("the dropped connection must surface as an error");
    assert!(
        err.to_string().contains("closed the connection mid-chunk"),
        "unexpected error: {err}"
    );
    assert!(
        err.to_string().contains("--resume"),
        "the error must point at --resume: {err}"
    );
    stub.join().unwrap();

    // The answered chunk is durable; resuming against a real daemon
    // recomputes only the rest and lands on the local-run bytes.
    let journal_text = std::fs::read_to_string(&journal).expect("journal survives the cut");
    assert!(journal_text.contains("row\t"), "chunk 1 must be durable");

    let server = spawn_server();
    let resumed = run_gen_corpus_with(
        29,
        4,
        small_options(),
        &journal,
        &out,
        true,
        Some(&remote_to(&server, 1)),
    )
    .expect("resume against a healthy daemon succeeds");
    assert!(resumed.finished);
    assert_eq!(resumed.replayed, 2);
    shutdown(server);

    let out_local = scratch.path("cut-local.tsv");
    let journal_local = scratch.path("cut-local.journal");
    run_gen_corpus(29, 4, small_options(), &journal_local, &out_local, false)
        .expect("local reference runs");
    let read = |p: &PathBuf| std::fs::read(p).expect("file exists");
    assert_eq!(read(&out_local), read(&out), "recovered TSV differs");
    assert_eq!(
        read(&journal_local),
        read(&journal),
        "recovered journal differs"
    );
}

/// A dead address fails before the journal is created or rewritten —
/// a typo in `--connect` must never cost an on-disk resumable run.
#[test]
fn dead_daemon_fails_before_touching_the_journal() {
    let mut scratch = Scratch(Vec::new());
    let out = scratch.path("dead.tsv");
    let journal = scratch.path("dead.journal");
    // Port 1 is reserved and never serves on loopback.
    let remote = RemoteOptions::new("127.0.0.1:1");
    run_gen_corpus_with(3, 4, small_options(), &journal, &out, false, Some(&remote))
        .expect_err("connecting to a dead address must fail");
    assert!(
        !journal.exists(),
        "a failed connect must not create the journal"
    );
    assert!(!out.exists());
}

/// Operating-point re-weighting is local-only: the daemon strips the
/// point from corpus requests, so a remote run refuses it up front
/// rather than silently diverging from the local bytes.
#[test]
fn remote_run_rejects_operating_point_reweighting() {
    let mut scratch = Scratch(Vec::new());
    let out = scratch.path("op.tsv");
    let journal = scratch.path("op.journal");
    let mut options = small_options();
    options.base = SystemConfig::new().with_operating_point(OperatingPoint {
        node_nm: 800,
        vdd: 5.0,
    });
    let remote = RemoteOptions::new("127.0.0.1:1");
    let err = run_gen_corpus_with(3, 4, options, &journal, &out, false, Some(&remote))
        .expect_err("operating-point remote runs must be refused");
    assert!(
        err.to_string().contains("operating-point"),
        "unexpected error: {err}"
    );
    assert!(!journal.exists(), "the refusal must precede journal setup");
}
