//! Criterion benchmarks of the core algorithms: list scheduling,
//! binding + utilization, gen/use dataflow, cluster decomposition, and
//! cache simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use corepart_cache::cache::Cache;
use corepart_cache::config::CacheConfig;
use corepart_ir::cluster::decompose;
use corepart_ir::dataflow::region_gen_use;
use corepart_ir::interp::Interpreter;
use corepart_ir::lower::lower;
use corepart_ir::op::BlockId;
use corepart_ir::parser::parse;
use corepart_sched::binding::{bind, schedule_cluster, utilization};
use corepart_tech::resource::{ResourceLibrary, ResourceSet};

/// A synthetic kernel with `n` multiply-accumulate statements — scales
/// the scheduling problem size.
fn kernel_source(n: usize) -> String {
    let mut body = String::new();
    for i in 0..n {
        body.push_str(&format!(
            "acc = acc + x[(i + {i}) & 63] * {w} + (x[(i + {j}) & 63] >> {s});\n",
            w = 3 + i % 5,
            j = i + 1,
            s = 1 + i % 3,
        ));
    }
    format!(
        r#"app bench; var x[64]; var acc = 0;
        func main() {{
            for (var i = 0; i < 64; i = i + 1) {{
                {body}
            }}
            return acc;
        }}"#
    )
}

fn bench_frontend(c: &mut Criterion) {
    let src = kernel_source(16);
    c.bench_function("parse+lower/16-mac-kernel", |b| {
        b.iter(|| lower(&parse(std::hint::black_box(&src)).expect("parses")).expect("lowers"))
    });

    let app = lower(&parse(&src).expect("parses")).expect("lowers");
    c.bench_function("decompose/16-mac-kernel", |b| {
        b.iter(|| decompose(std::hint::black_box(&app)))
    });

    let blocks: Vec<BlockId> = (0..app.blocks().len() as u32).map(BlockId).collect();
    c.bench_function("gen_use/whole-app", |b| {
        b.iter(|| region_gen_use(std::hint::black_box(&app), &blocks))
    });
}

fn bench_scheduling(c: &mut Criterion) {
    let lib = ResourceLibrary::cmos6();
    let set = ResourceSet::default_family()[2].clone();
    let mut group = c.benchmark_group("schedule+bind");
    for n in [4usize, 16, 64] {
        let src = kernel_source(n);
        let app = lower(&parse(&src).expect("parses")).expect("lowers");
        let profile = Interpreter::new(&app).run(100_000_000).expect("runs");
        let blocks = app
            .structure()
            .iter()
            .find(|s| s.is_loop())
            .expect("loop")
            .blocks()
            .to_vec();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let sched = schedule_cluster(std::hint::black_box(&app), &blocks, &set, &lib)
                    .expect("schedules");
                let binding = bind(&sched, &lib);
                utilization(&sched, &binding, &profile, &lib)
            })
        });
    }
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache-sim");
    for &assoc in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("1M-strided-reads", assoc),
            &assoc,
            |b, &assoc| {
                let config = CacheConfig::new(
                    8 * 1024,
                    16,
                    assoc,
                    corepart_cache::config::Replacement::Lru,
                    corepart_cache::config::WritePolicy::WriteBack,
                    8,
                )
                .expect("valid cache config");
                b.iter(|| {
                    let mut cache = Cache::new(config.clone());
                    for i in 0..1_000_000u32 {
                        cache.read(0x1000 + (i * 52) % (64 * 1024));
                    }
                    cache.stats()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_frontend, bench_scheduling, bench_cache
}
criterion_main!(benches);
