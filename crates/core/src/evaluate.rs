//! Whole-system evaluation of design points.
//!
//! "It is an important feature of our approach that all system
//! components are taken into consideration to estimate energy savings"
//! (§4): a partition changes not only the µP and ASIC energies but the
//! access patterns — and therefore the energies — of both caches and
//! the main memory. This module runs the full simulation stack for the
//! initial design ([`evaluate_initial`]) and for any candidate
//! partition ([`evaluate_partition`]), producing the Table-1 metrics.
//!
//! A partitioned run executes the *same* machine program with the
//! cluster blocks marked as hardware: the µP pays nothing for them, the
//! caches never see their references, the ASIC core's energy comes from
//! the bound schedule's switching-activity estimate, and the µP↔ASIC
//! communication of §3.3 is charged per invocation (the *additional*
//! transfers a/d of the shared-memory scheme: the µP's deposits and
//! read-backs; the ASIC-side accesses b/c "occur in any case" and are
//! already part of the ASIC's memory traffic).

use std::collections::HashSet;
use std::sync::Arc;

use corepart_cache::hierarchy::Hierarchy;
use corepart_ir::cluster::ClusterId;
use corepart_ir::op::BlockId;
use corepart_isa::isa::InstClass;
use corepart_isa::profile::CoreUtilization;
use corepart_isa::simulator::{MemSink, RunStats, SimConfig, Simulator};
use corepart_isa::trace::{ReferenceTrace, TraceBuilder};
use corepart_sched::binding::{bind, schedule_cluster, utilization};
use corepart_sched::cache::{ScheduleCache, ScheduledCluster};
use corepart_sched::datapath::{estimate_datapath, DatapathEstimate};
use corepart_sched::energy::{estimate_energy, gate_level_energy, AsicEnergy};
use corepart_sched::list::SchedError;
use corepart_tech::energy::MemoryEnergyModel;
use corepart_tech::resource::ResourceSet;
use corepart_tech::units::{Cycles, Energy};

use crate::bus_transfer::transfer_counts;
use crate::error::CorepartError;
use crate::partition::{schedule_key, ScheduleKey};
use crate::prepare::PreparedApp;
use crate::system::{DesignMetrics, SystemConfig};
use crate::verify::ReplayEngine;

/// A candidate hardware/software partition: which clusters move to the
/// ASIC core and which designer resource set implements it.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// Clusters mapped to the ASIC core.
    pub clusters: Vec<ClusterId>,
    /// The resource set of the ASIC datapath.
    pub set: ResourceSet,
}

impl Partition {
    /// A single-cluster partition.
    pub fn single(cluster: ClusterId, set: ResourceSet) -> Self {
        Partition {
            clusters: vec![cluster],
            set,
        }
    }
}

/// Everything measured about one evaluated partition.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionDetail {
    /// The Table-1 row.
    pub metrics: DesignMetrics,
    /// ASIC-core utilization `U_R^core`.
    pub u_r: f64,
    /// GEQ-weighted variant (ablation A1).
    pub u_r_weighted: f64,
    /// µP-core utilization `U_µP^core` while executing these clusters
    /// in the initial design (the per-cluster gate value).
    pub u_up: f64,
    /// Datapath hardware breakdown.
    pub datapath: DatapathEstimate,
    /// ASIC energy detail (active/idle).
    pub asic: AsicEnergy,
    /// Total µP↔ASIC communication words.
    pub comm_words: u64,
    /// The quick Fig.-1-line-11 estimate (for estimate-vs-gate-level
    /// comparisons).
    pub quick_estimate: Energy,
}

pub(crate) struct HierarchySink<'a>(pub(crate) &'a mut Hierarchy);

impl MemSink for HierarchySink<'_> {
    fn ifetch(&mut self, addr: u32) {
        self.0.ifetch(addr);
    }
    fn read(&mut self, addr: u32) {
        self.0.dread(addr);
    }
    fn write(&mut self, addr: u32) {
        self.0.dwrite(addr);
    }
    fn ifetch_run_hits(&mut self, addr: u32, count: u32) -> bool {
        self.0.ifetch_run_hits(addr, count)
    }
}

fn run_iss(
    prepared: &PreparedApp,
    config: &SystemConfig,
    sim_config: &SimConfig,
) -> Result<(RunStats, corepart_cache::hierarchy::HierarchyReport), CorepartError> {
    let mut hierarchy = Hierarchy::new(
        config.icache.clone(),
        config.dcache.clone(),
        &config.process,
        config.memory_bytes,
    );
    let mut sim =
        Simulator::with_energy_table(&prepared.prog, &prepared.app, config.energy_table.clone());
    for (name, data) in &prepared.workload.arrays {
        sim.set_array(name, data)?;
    }
    let stats = sim.run(sim_config, &mut HierarchySink(&mut hierarchy))?;
    Ok((stats, hierarchy.report()))
}

/// Evaluates the initial (all-software) design.
///
/// Returns the metrics and the raw run statistics (per-block energy
/// attribution is reused by pre-selection and `U_µP`).
///
/// # Errors
///
/// Simulation failures ([`CorepartError::Sim`]) or bad workload arrays.
pub fn evaluate_initial(
    prepared: &PreparedApp,
    config: &SystemConfig,
) -> Result<(DesignMetrics, RunStats), CorepartError> {
    let (metrics, stats, _) = evaluate_initial_captured(prepared, config, 0)?;
    Ok((metrics, stats))
}

/// [`evaluate_initial`] with the reference-trace capture piggybacked
/// on the one simulation: the executed pc stream and every load/store
/// address are recorded (up to `cap_bytes` of encoded trace) while the
/// initial design is evaluated, at no extra simulation cost.
///
/// The third element is `None` when `cap_bytes` is 0 or the encoded
/// trace outgrew the cap — callers then verify candidates by direct
/// simulation instead of replay. Metrics and statistics are unaffected
/// by the capture either way.
///
/// # Errors
///
/// Simulation failures ([`CorepartError::Sim`]) or bad workload arrays.
pub fn evaluate_initial_captured(
    prepared: &PreparedApp,
    config: &SystemConfig,
    cap_bytes: usize,
) -> Result<(DesignMetrics, RunStats, Option<ReferenceTrace>), CorepartError> {
    let mut hierarchy = Hierarchy::new(
        config.icache.clone(),
        config.dcache.clone(),
        &config.process,
        config.memory_bytes,
    );
    let mut sim =
        Simulator::with_energy_table(&prepared.prog, &prepared.app, config.energy_table.clone());
    for (name, data) in &prepared.workload.arrays {
        sim.set_array(name, data)?;
    }
    let mut builder = TraceBuilder::new(cap_bytes);
    let stats = sim.run_recorded(
        &SimConfig::initial(config.max_cycles),
        &mut HierarchySink(&mut hierarchy),
        &mut builder,
    )?;
    let trace = builder.finish(stats.return_value);
    let report = hierarchy.report();
    let stall_energy = config.energy_table.stall_per_cycle() * report.stall_cycles.count();
    let metrics = DesignMetrics {
        icache: report.icache_energy,
        dcache: report.dcache_energy,
        mem: report.mem_energy,
        bus: Energy::ZERO,
        up_core: stats.energy + stall_energy,
        asic_core: None,
        up_cycles: stats.cycles + report.stall_cycles,
        asic_cycles: Cycles::ZERO,
        geq: corepart_tech::units::GateEq::ZERO,
        icache_miss_ratio: report.icache.miss_ratio(),
        dcache_miss_ratio: report.dcache.miss_ratio(),
    };
    Ok((metrics, stats, trace))
}

/// Evaluates a candidate partition end to end.
///
/// `initial_stats` is the initial run (for `U_µP`); get it from
/// [`evaluate_initial`].
///
/// # Errors
///
/// [`CorepartError::Sched`] when the resource set cannot execute the
/// cluster (the candidate is infeasible), or simulation failures.
pub fn evaluate_partition(
    prepared: &PreparedApp,
    partition: &Partition,
    initial_stats: &RunStats,
    config: &SystemConfig,
) -> Result<PartitionDetail, CorepartError> {
    evaluate_partition_with(prepared, partition, initial_stats, config, None, None)
}

/// [`evaluate_partition`] with the two memoization layers injected:
/// `schedules` serves the schedule/bind/utilization trio from the
/// estimate phase's [`ScheduleCache`], and `replay` serves the µP +
/// cache-hierarchy side by replaying the captured reference trace
/// ([`ReplayEngine`]) instead of re-running the instruction-set
/// simulator. Either layer may be absent; the computed
/// [`PartitionDetail`] is bit-identical in all four combinations.
///
/// # Errors
///
/// [`CorepartError::Sched`] when the resource set cannot execute the
/// cluster (the candidate is infeasible), or simulation failures.
pub fn evaluate_partition_with(
    prepared: &PreparedApp,
    partition: &Partition,
    initial_stats: &RunStats,
    config: &SystemConfig,
    schedules: Option<&ScheduleCache<ScheduleKey>>,
    replay: Option<&ReplayEngine>,
) -> Result<PartitionDetail, CorepartError> {
    if partition.clusters.is_empty() {
        return Err(CorepartError::Config {
            message: "a partition needs at least one cluster".into(),
        });
    }
    // Hardware blocks, in chain order.
    let mut hw_blocks: Vec<BlockId> = Vec::new();
    for &cid in &partition.clusters {
        hw_blocks.extend(prepared.chain.cluster(cid).blocks.iter().copied());
    }
    let hw_set: HashSet<BlockId> = hw_blocks.iter().copied().collect();

    // --- ASIC side: schedule, bind, utilization, energy (Fig. 1
    // lines 8-11 and 14-15). ---
    let compute = || -> Result<ScheduledCluster, SchedError> {
        let sched = schedule_cluster(&prepared.app, &hw_blocks, &partition.set, &config.library)?;
        let binding = bind(&sched, &config.library);
        let util = utilization(&sched, &binding, &prepared.profile, &config.library);
        Ok(ScheduledCluster {
            sched,
            binding,
            util,
        })
    };
    let synth: Arc<ScheduledCluster> = match schedules {
        Some(cache) => cache.get_or_compute(schedule_key(partition), compute)?,
        None => Arc::new(compute()?),
    };
    let ScheduledCluster {
        sched,
        binding,
        util,
    } = &*synth;
    let datapath = estimate_datapath(sched, binding, &config.library);
    let asic = gate_level_energy(
        &prepared.app,
        sched,
        binding,
        util,
        &prepared.profile,
        &config.library,
        &config.process,
    );
    let quick_estimate = estimate_energy(util, binding, &config.library);

    // --- µP + caches side: replay the reference trace when a capture
    // is available, simulate directly otherwise (bit-identical). ---
    let (stats, report) = match replay {
        Some(engine) => {
            let run = engine.verify(config, &hw_set)?;
            (run.stats.clone(), run.report.clone())
        }
        None => run_iss(
            prepared,
            config,
            &SimConfig::partitioned(config.max_cycles, hw_set),
        )?,
    };

    // --- Communication (§3.3): µP deposits inputs, reads back
    // outputs, once per invocation, with synergy between co-resident
    // clusters. ---
    let on_asic: HashSet<ClusterId> = partition.clusters.iter().copied().collect();
    let mut words_in_total = 0u64;
    let mut words_out_total = 0u64;
    let mut invocations_total = 0u64;
    for &cid in &partition.clusters {
        let cluster = prepared.chain.cluster(cid);
        let mut others = on_asic.clone();
        others.remove(&cid);
        let counts = transfer_counts(&prepared.chain, cid, &others);
        let inv =
            corepart_ir::cluster::cluster_invocations(&prepared.app, &prepared.profile, cluster);
        words_in_total += counts.words_in * inv;
        words_out_total += counts.words_out * inv;
        invocations_total += inv;
    }
    let comm_words = words_in_total + words_out_total;

    let mem_model = MemoryEnergyModel::analytical(&config.process, config.memory_bytes);
    // µP deposits (writes) and read-backs (reads) over the bus into the
    // shared memory.
    let comm_bus = config.bus.write() * words_in_total + config.bus.read() * words_out_total;
    let comm_mem =
        mem_model.write_word() * words_in_total + mem_model.read_word() * words_out_total;
    let comm_up_energy = config.energy_table.base(InstClass::Store, 1) * words_in_total
        + config.energy_table.base(InstClass::Load, 1) * words_out_total;
    let comm_cycles = Cycles::new(
        comm_words * config.comm_cycles_per_word + invocations_total * config.comm_handshake_cycles,
    );

    // --- The ASIC's own shared-memory traffic crosses the bus too. ---
    let asic_mem =
        mem_model.read_word() * stats.hw_loads + mem_model.write_word() * stats.hw_stores;
    let asic_bus = config.bus.read() * stats.hw_loads + config.bus.write() * stats.hw_stores;

    let stall_energy = config.energy_table.stall_per_cycle() * report.stall_cycles.count();
    // Per-cluster comparison value (what the Fig.-1-line-9 gate used).
    let u_up = CoreUtilization::for_blocks(initial_stats, &hw_blocks).mean();

    let metrics = DesignMetrics {
        icache: report.icache_energy,
        dcache: report.dcache_energy,
        mem: report.mem_energy + comm_mem + asic_mem,
        bus: comm_bus + asic_bus,
        up_core: stats.energy + stall_energy + comm_up_energy,
        asic_core: Some(asic.total()),
        up_cycles: stats.cycles + report.stall_cycles + comm_cycles,
        asic_cycles: asic.cycles,
        geq: datapath.total(),
        icache_miss_ratio: report.icache.miss_ratio(),
        dcache_miss_ratio: report.dcache.miss_ratio(),
    };

    Ok(PartitionDetail {
        metrics,
        u_r: util.u_r,
        u_r_weighted: util.u_r_weighted,
        u_up,
        datapath,
        asic,
        comm_words,
        quick_estimate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepare::{prepare, Workload};
    use corepart_ir::lower::lower;
    use corepart_ir::parser::parse;

    fn prepared(src: &str, workload: Workload) -> PreparedApp {
        let app = lower(&parse(src).unwrap()).unwrap();
        prepare(app, workload, &SystemConfig::new()).unwrap()
    }

    const DSP: &str = r#"app dsp; var x[128]; var y[128]; var s = 0;
        func main() {
            for (var i = 1; i < 127; i = i + 1) {
                y[i] = (x[i - 1] + 2 * x[i] + x[i + 1]) >> 2;
            }
            for (var j = 0; j < 128; j = j + 1) { s = s + y[j]; }
            return s;
        }"#;

    fn dsp_workload() -> Workload {
        Workload::from_arrays([("x", (0..128).map(|i| (i * 13) % 97).collect::<Vec<i64>>())])
    }

    #[test]
    fn initial_metrics_sensible() {
        let p = prepared(DSP, dsp_workload());
        let config = SystemConfig::new();
        let (m, stats) = evaluate_initial(&p, &config).unwrap();
        assert!(m.up_core.joules() > 0.0);
        assert!(m.icache.joules() > 0.0);
        assert!(m.dcache.joules() > 0.0);
        assert!(m.asic_core.is_none());
        assert_eq!(m.asic_cycles, Cycles::ZERO);
        assert!(m.up_cycles.count() >= stats.cycles.count());
        // The µP core should dominate system energy in the initial
        // design (as in every Table-1 "I" row).
        assert!(m.up_core.joules() > m.dcache.joules());
    }

    #[test]
    fn partition_moves_energy_to_asic() {
        let p = prepared(DSP, dsp_workload());
        let config = SystemConfig::new();
        let (initial, stats) = evaluate_initial(&p, &config).unwrap();
        let hot = p.chain.iter().find(|c| c.is_loop()).unwrap().id;
        let part = Partition::single(hot, config.resource_sets[2].clone());
        let d = evaluate_partition(&p, &part, &stats, &config).unwrap();

        assert!(d.metrics.asic_core.is_some());
        assert!(d.metrics.asic_cycles.count() > 0);
        assert!(d.metrics.geq.cells() > 0);
        // The µP sheds the hot loop.
        assert!(d.metrics.up_cycles < initial.up_cycles);
        assert!(d.metrics.up_core < initial.up_core);
        // Whole-system saving for this DSP kernel.
        let saving = d.metrics.energy_saving_vs(&initial).unwrap();
        assert!(saving > 0.0, "expected savings, got {saving:.1}%");
        // Utilization comparison available.
        assert!(d.u_r > 0.0 && d.u_up > 0.0);
        assert!(d.comm_words > 0);
    }

    #[test]
    fn icache_energy_collapses_when_hot_loop_leaves() {
        // The `trick`-row effect: i-cache energy drops by orders of
        // magnitude when the µP no longer fetches the hot loop.
        let p = prepared(DSP, dsp_workload());
        let config = SystemConfig::new();
        let (initial, stats) = evaluate_initial(&p, &config).unwrap();
        let hot = p.chain.iter().find(|c| c.is_loop()).unwrap().id;
        let part = Partition::single(hot, config.resource_sets[2].clone());
        let d = evaluate_partition(&p, &part, &stats, &config).unwrap();
        assert!(
            d.metrics.icache.joules() < initial.icache.joules() * 0.8,
            "i-cache {} vs initial {}",
            d.metrics.icache,
            initial.icache
        );
    }

    #[test]
    fn infeasible_set_is_sched_error() {
        let p = prepared(
            "app t; var g = 100; func main() { while (g > 1) { g = g / 3; } }",
            Workload::empty(),
        );
        let config = SystemConfig::new();
        let (_, stats) = evaluate_initial(&p, &config).unwrap();
        let hot = p.chain.iter().find(|c| c.is_loop()).unwrap().id;
        // s-scalar has no divider.
        let part = Partition::single(hot, config.resource_sets[1].clone());
        let err = evaluate_partition(&p, &part, &stats, &config).unwrap_err();
        assert!(matches!(err, CorepartError::Sched(_)));
    }

    #[test]
    fn empty_partition_rejected() {
        let p = prepared(DSP, dsp_workload());
        let config = SystemConfig::new();
        let (_, stats) = evaluate_initial(&p, &config).unwrap();
        let part = Partition {
            clusters: vec![],
            set: config.resource_sets[0].clone(),
        };
        assert!(matches!(
            evaluate_partition(&p, &part, &stats, &config),
            Err(CorepartError::Config { .. })
        ));
    }

    #[test]
    fn two_cluster_partition_shares_one_datapath() {
        let p = prepared(DSP, dsp_workload());
        let config = SystemConfig::new();
        let (_, stats) = evaluate_initial(&p, &config).unwrap();
        let loops: Vec<ClusterId> = p
            .chain
            .iter()
            .filter(|c| c.is_loop())
            .map(|c| c.id)
            .collect();
        assert!(loops.len() >= 2);
        let single = evaluate_partition(
            &p,
            &Partition::single(loops[0], config.resource_sets[2].clone()),
            &stats,
            &config,
        )
        .unwrap();
        let double = evaluate_partition(
            &p,
            &Partition {
                clusters: loops.clone(),
                set: config.resource_sets[2].clone(),
            },
            &stats,
            &config,
        )
        .unwrap();
        // Shared datapath: two clusters cost far less than 2x one
        // cluster's hardware.
        assert!(double.metrics.geq.cells() < 2 * single.metrics.geq.cells());
        // And more ASIC cycles get executed.
        assert!(double.metrics.asic_cycles > single.metrics.asic_cycles);
    }
}
