//! Reference-trace capture and replay.
//!
//! [`SimConfig::hw_blocks`](crate::simulator::SimConfig::hw_blocks)
//! changes *accounting only* — a partitioned run executes exactly the
//! same instruction stream as the initial run, because hardware-mapped
//! blocks still execute functionally. Verification therefore does not
//! need to re-interpret the program per candidate: one captured
//! reference execution (the pc stream plus the data addresses of every
//! load/store, in order) contains everything the energy and cache
//! accounting consume, and any candidate's `hw_blocks` filter can be
//! applied at *replay* time.
//!
//! * [`TraceBuilder`] is an [`ExecRecorder`] that encodes the streams
//!   compactly while [`Simulator::run_recorded`](crate::simulator::Simulator::run_recorded) executes once.
//! * [`ReferenceTrace`] is the finished, immutable capture.
//! * [`TraceReplayer`] re-runs the accounting of
//!   [`Simulator::run`](crate::simulator::Simulator::run) over a trace
//!   for any hardware-block set, reproducing [`RunStats`] — and the
//!   [`MemSink`] reference stream — **bit for bit** (the same `f64`
//!   operations in the same order).
//!
//! ## Bounded memory
//!
//! The pc stream is run-length encoded — execution is sequential
//! except at taken branches, so each maximal `pc, pc+1, …` stretch
//! becomes one `(start delta, length)` zigzag-LEB128 varint pair —
//! and the data stream holds one fixed-width 4-byte record per access
//! (decode speed beats the byte or two a varint would save). Both
//! streams live in fixed-size segments, so a long run costs a few
//! bytes per *branch* plus four bytes per data access and never
//! reallocates large buffers. A caller-supplied byte cap bounds
//! the total: when the encoded size would exceed it, the builder frees
//! everything and [`TraceBuilder::finish`] returns `None` — callers
//! fall back to direct simulation, trading time for memory, never
//! correctness.

use corepart_ir::cdfg::Application;
use corepart_ir::op::BlockId;
use corepart_tech::units::{Cycles, Energy};

use crate::codegen::{MachProgram, SLOT_BASE};
use crate::energy::EnergyTable;
use crate::isa::{InstClass, MachInst};
use crate::simulator::{ExecRecorder, MemSink, RunStats, SimConfig, SimError, TraceEntry};

/// Segment size of the chunked encoding. Small enough that a capture
/// never holds one huge allocation, large enough that the segment list
/// stays short (a 5M-cycle run is ~20 segments).
const SEGMENT_BYTES: usize = 256 * 1024;

/// A segmented varint byte stream. Varints never straddle a segment
/// boundary: a new segment is started whenever the current one has
/// reached [`SEGMENT_BYTES`], and each segment keeps 10 spare bytes of
/// capacity (the longest LEB128 encoding of a `u64`).
#[derive(Debug, Clone, Default)]
struct SegStream {
    segments: Vec<Vec<u8>>,
    bytes: usize,
}

impl SegStream {
    fn put(&mut self, mut v: u64) {
        let segment = match self.segments.last_mut() {
            Some(s) if s.len() < SEGMENT_BYTES => s,
            _ => {
                self.segments.push(Vec::with_capacity(SEGMENT_BYTES + 10));
                self.segments.last_mut().expect("just pushed")
            }
        };
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                segment.push(byte);
                self.bytes += 1;
                return;
            }
            segment.push(byte | 0x80);
            self.bytes += 1;
        }
    }

    /// Appends a fixed-width little-endian `u32` record (used by the
    /// data-address stream, where decode speed beats the byte or two a
    /// varint would save).
    fn put_u32(&mut self, v: u32) {
        let segment = match self.segments.last_mut() {
            Some(s) if s.len() < SEGMENT_BYTES => s,
            _ => {
                self.segments.push(Vec::with_capacity(SEGMENT_BYTES + 10));
                self.segments.last_mut().expect("just pushed")
            }
        };
        segment.extend_from_slice(&v.to_le_bytes());
        self.bytes += 4;
    }

    fn reader(&self) -> SegReader<'_> {
        SegReader {
            segments: &self.segments,
            segment: 0,
            offset: 0,
        }
    }
}

/// Sequential decoder over a [`SegStream`].
#[derive(Debug, Clone)]
struct SegReader<'a> {
    segments: &'a [Vec<u8>],
    segment: usize,
    offset: usize,
}

impl SegReader<'_> {
    fn next(&mut self) -> Option<u64> {
        loop {
            let s = self.segments.get(self.segment)?;
            if self.offset < s.len() {
                break;
            }
            self.segment += 1;
            self.offset = 0;
        }
        let s = &self.segments[self.segment];
        let mut v: u64 = 0;
        let mut shift = 0;
        loop {
            let byte = *s.get(self.offset)?;
            self.offset += 1;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Some(v);
            }
            shift += 7;
        }
    }

    /// Decodes one fixed-width record written by [`SegStream::put_u32`]
    /// (records never straddle a segment boundary).
    #[inline]
    fn next_u32(&mut self) -> Option<u32> {
        loop {
            let s = self.segments.get(self.segment)?;
            if self.offset < s.len() {
                break;
            }
            self.segment += 1;
            self.offset = 0;
        }
        let s = &self.segments[self.segment];
        let bytes = s.get(self.offset..self.offset + 4)?;
        self.offset += 4;
        Some(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }
}

/// FNV-1a over the counts, the return value and both encoded byte
/// streams — the one definition shared by [`TraceBuilder::finish`]
/// (which stamps it into the capture) and
/// [`ReferenceTrace::validate`] (which recomputes and compares it).
fn fingerprint_of(
    events: u64,
    data_events: u64,
    return_bits: u64,
    pcs: &SegStream,
    addrs: &SegStream,
) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for v in [events, data_events, return_bits] {
        for byte in v.to_le_bytes() {
            eat(byte);
        }
    }
    for stream in [pcs, addrs] {
        for segment in &stream.segments {
            for &byte in segment {
                eat(byte);
            }
        }
    }
    h
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Decoder of the fixed-width data-address stream.
#[derive(Debug, Clone)]
struct AddrReader<'a> {
    inner: SegReader<'a>,
}

impl AddrReader<'_> {
    #[inline]
    fn next(&mut self) -> Option<u32> {
        self.inner.next_u32()
    }
}

/// Decoder of the run-length-encoded pc stream: yields one
/// `(start pc, length)` pair per maximal sequential stretch.
#[derive(Debug, Clone)]
struct RunReader<'a> {
    inner: SegReader<'a>,
    prev_start: i64,
}

impl RunReader<'_> {
    fn next(&mut self) -> Option<(u32, u64)> {
        let delta = unzigzag(self.inner.next()?);
        let start = self.prev_start + delta;
        self.prev_start = start;
        let len = self.inner.next()?;
        Some((u32::try_from(start).ok()?, len))
    }
}

/// The immutable capture of one reference execution: the executed pc
/// stream, the data-address stream (one entry per executed load/store,
/// in execution order), and the run's return value.
///
/// A trace is tied to the exact ([`MachProgram`], workload) pair it was
/// captured from; the [`fingerprint`](ReferenceTrace::fingerprint)
/// identifies that pair for memoization.
#[derive(Debug, Clone)]
pub struct ReferenceTrace {
    pcs: SegStream,
    addrs: SegStream,
    events: u64,
    data_events: u64,
    return_value: i64,
    fingerprint: u64,
}

impl ReferenceTrace {
    /// Executed instructions recorded (µP- and hardware-mapped alike).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Recorded data accesses (loads + stores).
    pub fn data_events(&self) -> u64 {
        self.data_events
    }

    /// Encoded size in bytes (excluding constant-size bookkeeping).
    pub fn bytes(&self) -> usize {
        self.pcs.bytes + self.addrs.bytes
    }

    /// The run's return value (register `r1` at `halt`).
    pub fn return_value(&self) -> i64 {
        self.return_value
    }

    /// FNV-1a hash over the encoded streams and event counts —
    /// identifies the (program, workload) execution for memo keys.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Recomputes the FNV-1a fingerprint from the encoded streams and
    /// compares it against the one stamped at capture time — the
    /// integrity gate for traces whose bytes may have been damaged
    /// after capture. [`crate::trace::TraceReplayer::replay`]'s own
    /// conservation checks catch truncation (fewer decoded events than
    /// recorded); this check additionally catches any byte-level
    /// corruption that leaves the counts plausible.
    ///
    /// # Errors
    ///
    /// [`SimError::TraceCorrupt`] when the streams no longer hash to
    /// the stored fingerprint.
    pub fn validate(&self) -> Result<(), SimError> {
        let h = fingerprint_of(
            self.events,
            self.data_events,
            self.return_value as u64,
            &self.pcs,
            &self.addrs,
        );
        if h != self.fingerprint {
            return Err(SimError::TraceCorrupt {
                detail: format!(
                    "fingerprint mismatch: captured {:#018x}, streams hash to {h:#018x}",
                    self.fingerprint
                ),
            });
        }
        Ok(())
    }

    fn pc_reader(&self) -> RunReader<'_> {
        RunReader {
            inner: self.pcs.reader(),
            prev_start: 0,
        }
    }

    fn addr_reader(&self) -> AddrReader<'_> {
        AddrReader {
            inner: self.addrs.reader(),
        }
    }
}

/// Deliberate-damage hooks for the conformance harness (`conform`
/// feature only): fault-injection tests use these to manufacture the
/// degraded traces the integrity checks must reject. Not part of the
/// supported API surface.
#[cfg(feature = "conform")]
impl ReferenceTrace {
    /// Flips every bit of one encoded byte (of the data-address stream
    /// when `addr_stream`, of the pc stream otherwise). Returns `false`
    /// when `index` is past the end of that stream.
    pub fn corrupt_byte(&mut self, addr_stream: bool, index: usize) -> bool {
        let stream = if addr_stream {
            &mut self.addrs
        } else {
            &mut self.pcs
        };
        let mut remaining = index;
        for segment in &mut stream.segments {
            if remaining < segment.len() {
                segment[remaining] ^= 0xff;
                return true;
            }
            remaining -= segment.len();
        }
        false
    }

    /// Drops up to `n` trailing bytes of the encoded pc stream,
    /// returning how many were actually removed — a truncated capture,
    /// as if segments were lost after the run.
    pub fn truncate_pcs(&mut self, n: usize) -> usize {
        let mut dropped = 0;
        while dropped < n {
            match self.pcs.segments.last_mut() {
                Some(last) if last.is_empty() => {
                    self.pcs.segments.pop();
                }
                Some(last) => {
                    last.pop();
                    self.pcs.bytes -= 1;
                    dropped += 1;
                }
                None => break,
            }
        }
        dropped
    }

    /// Re-stamps the fingerprint from the *current* streams so
    /// [`ReferenceTrace::validate`] passes again — used to build
    /// internally-consistent-looking truncated traces that only the
    /// replay-time conservation checks can reject.
    pub fn refingerprint(&mut self) {
        self.fingerprint = fingerprint_of(
            self.events,
            self.data_events,
            self.return_value as u64,
            &self.pcs,
            &self.addrs,
        );
    }
}

/// An [`ExecRecorder`] that builds a [`ReferenceTrace`] while the
/// simulator runs, under a byte cap.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    pcs: SegStream,
    addrs: SegStream,
    prev_run_start: i64,
    run_start: u32,
    run_len: u64,
    events: u64,
    data_events: u64,
    cap_bytes: usize,
    overflowed: bool,
}

impl TraceBuilder {
    /// A builder that keeps at most `cap_bytes` of encoded trace.
    /// `0` disables capture entirely (every event overflows), which is
    /// the transparent path to "always simulate directly".
    pub fn new(cap_bytes: usize) -> Self {
        TraceBuilder {
            pcs: SegStream::default(),
            addrs: SegStream::default(),
            prev_run_start: 0,
            run_start: 0,
            run_len: 0,
            events: 0,
            data_events: 0,
            cap_bytes,
            overflowed: cap_bytes == 0,
        }
    }

    /// Whether the cap was exceeded (the capture was discarded).
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    fn flush_run(&mut self) {
        if self.run_len > 0 {
            self.pcs
                .put(zigzag(i64::from(self.run_start) - self.prev_run_start));
            self.pcs.put(self.run_len);
            self.prev_run_start = i64::from(self.run_start);
            self.run_len = 0;
            self.spill_if_over_cap();
        }
    }

    fn spill_if_over_cap(&mut self) {
        if self.pcs.bytes + self.addrs.bytes > self.cap_bytes {
            self.overflowed = true;
            // Free the memory eagerly: the rest of the run keeps
            // executing, and the half-trace is useless.
            self.pcs = SegStream::default();
            self.addrs = SegStream::default();
        }
    }

    /// Seals the capture. `return_value` is the finished run's return
    /// value ([`RunStats::return_value`]). Returns `None` when the cap
    /// was exceeded.
    pub fn finish(mut self, return_value: i64) -> Option<ReferenceTrace> {
        if self.overflowed {
            return None;
        }
        self.flush_run();
        if self.overflowed {
            return None;
        }
        let h = fingerprint_of(
            self.events,
            self.data_events,
            self.return_value_bits(return_value),
            &self.pcs,
            &self.addrs,
        );
        Some(ReferenceTrace {
            pcs: self.pcs,
            addrs: self.addrs,
            events: self.events,
            data_events: self.data_events,
            return_value,
            fingerprint: h,
        })
    }

    fn return_value_bits(&self, return_value: i64) -> u64 {
        return_value as u64
    }
}

impl ExecRecorder for TraceBuilder {
    fn inst(&mut self, pc: u32) {
        if self.overflowed {
            return;
        }
        // Run-length encoding: extend the current sequential stretch,
        // or emit it and start a new one at a taken branch.
        if self.run_len > 0 && pc == self.run_start + (self.run_len as u32) {
            self.run_len += 1;
        } else {
            self.flush_run();
            self.run_start = pc;
            self.run_len = 1;
        }
        self.events += 1;
    }

    fn data(&mut self, addr: u32) {
        if self.overflowed {
            return;
        }
        self.addrs.put_u32(addr);
        self.data_events += 1;
        self.spill_if_over_cap();
    }
}

/// Whether (and how) an instruction touches data memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccessKind {
    None,
    Load,
    Store,
}

/// Everything the accounting loop needs about one pc, precomputed.
#[derive(Debug, Clone, Copy)]
struct PcInfo {
    inst: MachInst,
    class: InstClass,
    class_index: usize,
    latency: u64,
    block: BlockId,
    block_index: usize,
    is_block_start: bool,
    inst_addr: u32,
    /// `EnergyTable::base(class, latency)` — a pure function of the
    /// two, so precomputing preserves the exact bits.
    base_energy: Energy,
    access: AccessKind,
}

/// Replays a [`ReferenceTrace`] through the accounting of
/// [`Simulator::run`](crate::simulator::Simulator::run) for an
/// arbitrary hardware-block set.
///
/// Construction precomputes a per-pc table (class, latency, block,
/// base energy, …); [`TraceReplayer::replay`] then walks the decoded
/// pc/address streams executing *only* the accounting — no instruction
/// semantics, no register file, no data memory — in exactly the order
/// the direct run performs it, so every counter and every `f64` in the
/// resulting [`RunStats`] is bit-identical to a fresh
/// `Simulator::run` with the same [`SimConfig`].
#[derive(Debug, Clone)]
pub struct TraceReplayer {
    info: Vec<PcInfo>,
    n_blocks: usize,
    inter_inst_overhead: Energy,
}

impl TraceReplayer {
    /// Builds the replay table for one compiled program.
    pub fn new(prog: &MachProgram, app: &Application, energy: &EnergyTable) -> Self {
        let info = prog
            .insts()
            .iter()
            .enumerate()
            .map(|(pc, &inst)| {
                let pc = pc as u32;
                let block = prog.block_of(pc);
                let class = InstClass::of(&inst);
                let latency = inst.latency();
                PcInfo {
                    inst,
                    class,
                    class_index: InstClass::ALL
                        .iter()
                        .position(|&c| c == class)
                        .expect("class in ALL"),
                    latency,
                    block,
                    block_index: block.0 as usize,
                    is_block_start: prog.block_start(block) == pc,
                    inst_addr: prog.inst_addr(pc),
                    base_energy: energy.base(class, latency),
                    access: match inst {
                        MachInst::Ldw { .. } => AccessKind::Load,
                        MachInst::Stw { .. } => AccessKind::Store,
                        _ => AccessKind::None,
                    },
                }
            })
            .collect();
        TraceReplayer {
            info,
            n_blocks: app.blocks().len(),
            inter_inst_overhead: energy.inter_inst_overhead(),
        }
    }

    /// Replays `trace` under `config`, streaming the µP-side references
    /// into `sink` — the bit-exact equivalent of
    /// `Simulator::run(config, sink)` for the captured execution.
    ///
    /// # Errors
    ///
    /// [`SimError::CycleLimit`] exactly when the direct run would hit
    /// it; [`SimError::BadPc`]/[`SimError::BadAccess`] only on a
    /// corrupt or mismatched trace; [`SimError::TraceCorrupt`] when
    /// the decoded streams do not add up to the recorded event counts
    /// (a truncated capture) — never partial statistics.
    pub fn replay<S: MemSink>(
        &self,
        trace: &ReferenceTrace,
        config: &SimConfig,
        sink: &mut S,
    ) -> Result<RunStats, SimError> {
        let mut stats = RunStats {
            cycles: Cycles::ZERO,
            energy: Energy::ZERO,
            inst_counts: InstClass::ALL.iter().map(|&c| (c, 0)).collect(),
            class_cycles: InstClass::ALL.iter().map(|&c| (c, 0)).collect(),
            block_class_cycles: vec![[0; 8]; self.n_blocks],
            class_switches: 0,
            block_counts: vec![0; self.n_blocks],
            block_cycles: vec![0; self.n_blocks],
            block_energy: vec![Energy::ZERO; self.n_blocks],
            hw_block_entries: std::collections::HashMap::new(),
            hw_loads: 0,
            hw_stores: 0,
            sw_reads: 0,
            sw_writes: 0,
            sw_ifetches: 0,
            return_value: 0,
            trace: Vec::new(),
        };

        // Per-block hardware flag, indexable in O(1) on the hot path.
        let mut is_hw_block = vec![false; self.n_blocks];
        for b in &config.hw_blocks {
            if let Some(flag) = is_hw_block.get_mut(b.0 as usize) {
                *flag = true;
            }
        }

        let mut cycles: u64 = 0;
        let mut prev_class: Option<InstClass> = None;
        let mut prev_block: Option<BlockId> = None;
        let mut prev_was_hw = false;
        let mut runs = trace.pc_reader();
        let mut addrs = trace.addr_reader();
        let mut decoded_insts: u64 = 0;
        let mut decoded_data: u64 = 0;

        // One decoded (start, length) pair per sequential stretch; the
        // per-instruction body below is byte-for-byte the accounting of
        // the direct run, just driven from the precomputed table.
        while let Some((start, len)) = runs.next() {
            let lo = start as usize;
            let hi = lo
                .checked_add(len as usize)
                .filter(|&hi| hi <= self.info.len())
                .ok_or(SimError::BadPc { pc: start })?;
            decoded_insts = decoded_insts.wrapping_add(len);
            for (off, info) in self.info[lo..hi].iter().enumerate() {
                let pc = start + off as u32;
                let is_hw = is_hw_block[info.block_index];

                // Block-entry accounting.
                if prev_block != Some(info.block) && info.is_block_start {
                    stats.block_counts[info.block_index] += 1;
                    if is_hw && !prev_was_hw {
                        *stats.hw_block_entries.entry(info.block).or_insert(0) += 1;
                    }
                }
                prev_block = Some(info.block);
                prev_was_hw = is_hw;

                if !is_hw {
                    cycles += info.latency;
                    if config.max_cycles > 0 && cycles > config.max_cycles {
                        return Err(SimError::CycleLimit {
                            limit: config.max_cycles,
                        });
                    }
                    let mut e = info.base_energy;
                    if let Some(p) = prev_class {
                        if p != info.class {
                            e += self.inter_inst_overhead;
                            stats.class_switches += 1;
                        }
                    }
                    prev_class = Some(info.class);
                    stats.energy += e;
                    stats.block_cycles[info.block_index] += info.latency;
                    stats.block_energy[info.block_index] += e;
                    *stats.inst_counts.get_mut(&info.class).expect("class") += 1;
                    *stats.class_cycles.get_mut(&info.class).expect("class") += info.latency;
                    stats.block_class_cycles[info.block_index][info.class_index] += info.latency;
                    stats.sw_ifetches += 1;
                    sink.ifetch(info.inst_addr);
                    if stats.trace.len() < config.trace_limit {
                        stats.trace.push(TraceEntry {
                            pc,
                            inst: info.inst,
                            cycles,
                        });
                    }
                } else {
                    // Leaving the µP's instruction stream resets the
                    // circuit-state history.
                    prev_class = None;
                }

                match info.access {
                    AccessKind::Load => {
                        let addr = addrs.next().ok_or(SimError::BadAccess { addr: 0, pc })?;
                        decoded_data += 1;
                        if is_hw {
                            if addr < SLOT_BASE {
                                stats.hw_loads += 1;
                            }
                        } else {
                            stats.sw_reads += 1;
                            sink.read(addr);
                        }
                    }
                    AccessKind::Store => {
                        let addr = addrs.next().ok_or(SimError::BadAccess { addr: 0, pc })?;
                        decoded_data += 1;
                        if is_hw {
                            if addr < SLOT_BASE {
                                stats.hw_stores += 1;
                            }
                        } else {
                            stats.sw_writes += 1;
                            sink.write(addr);
                        }
                    }
                    AccessKind::None => {}
                }
            }
        }

        // Conservation checks: a well-formed trace decodes exactly the
        // number of instructions and data accesses it recorded, and
        // leaves no trailing data-address records. A truncated or
        // damaged capture that survives decoding this far must not
        // yield partial statistics (byte-level corruption with intact
        // counts is the job of [`ReferenceTrace::validate`]).
        if decoded_insts != trace.events
            || decoded_data != trace.data_events
            || addrs.next().is_some()
        {
            return Err(SimError::TraceCorrupt {
                detail: format!(
                    "decoded {decoded_insts} of {} recorded instructions and {decoded_data} of {} recorded data accesses",
                    trace.events, trace.data_events
                ),
            });
        }

        stats.cycles = Cycles::new(cycles);
        stats.return_value = trace.return_value;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::compile;
    use crate::simulator::{NullSink, Simulator};
    use corepart_ir::lower::lower;
    use corepart_ir::parser::parse;
    use std::collections::HashSet;

    fn setup(src: &str) -> (Application, MachProgram) {
        let app = lower(&parse(src).unwrap()).unwrap();
        let prog = compile(&app);
        (app, prog)
    }

    const TWO_LOOPS: &str = r#"app t; var a[32]; var acc = 0;
        func main() {
            for (var i = 0; i < 32; i = i + 1) { a[i] = a[i] * 3 + 1; }
            for (var j = 0; j < 32; j = j + 1) { acc = acc + a[j]; }
            return acc;
        }"#;

    fn capture(
        app: &Application,
        prog: &MachProgram,
        input: Option<(&str, &[i64])>,
    ) -> (RunStats, ReferenceTrace) {
        let mut sim = Simulator::new(prog, app);
        if let Some((name, data)) = input {
            sim.set_array(name, data).unwrap();
        }
        let mut builder = TraceBuilder::new(usize::MAX);
        let stats = sim
            .run_recorded(&SimConfig::initial(10_000_000), &mut NullSink, &mut builder)
            .unwrap();
        let trace = builder.finish(stats.return_value).expect("under cap");
        (stats, trace)
    }

    #[test]
    fn varint_zigzag_roundtrip() {
        let mut s = SegStream::default();
        let values = [
            0i64,
            1,
            -1,
            2,
            -2,
            127,
            -128,
            300_000,
            -300_000,
            i64::from(u32::MAX),
        ];
        for &v in &values {
            s.put(zigzag(v));
        }
        let mut r = s.reader();
        for &v in &values {
            assert_eq!(unzigzag(r.next().unwrap()), v);
        }
        assert!(r.next().is_none());
    }

    #[test]
    fn segments_stay_bounded() {
        let mut s = SegStream::default();
        for i in 0..2_000_000u64 {
            s.put(i % 7);
        }
        for segment in &s.segments {
            assert!(segment.len() <= SEGMENT_BYTES + 10);
            assert!(segment.capacity() <= SEGMENT_BYTES + 10);
        }
        assert!(s.segments.len() > 1);
    }

    #[test]
    fn replay_matches_direct_initial_run() {
        let input: Vec<i64> = (0..32).map(|i| i % 5).collect();
        let (app, prog) = setup(TWO_LOOPS);
        let (direct, trace) = capture(&app, &prog, Some(("a", &input)));

        let replayer = TraceReplayer::new(&prog, &app, &EnergyTable::default());
        let replayed = replayer
            .replay(&trace, &SimConfig::initial(10_000_000), &mut NullSink)
            .unwrap();
        assert_eq!(direct, replayed);
    }

    #[test]
    fn replay_matches_direct_partitioned_run() {
        let input: Vec<i64> = (0..32).map(|i| (i * 13) % 9 - 4).collect();
        let (app, prog) = setup(TWO_LOOPS);
        let (_, trace) = capture(&app, &prog, Some(("a", &input)));
        let first_loop = app.structure().iter().find(|n| n.is_loop()).expect("loop");
        let hw: HashSet<BlockId> = first_loop.blocks().iter().copied().collect();

        let mut sim = Simulator::new(&prog, &app);
        sim.set_array("a", &input).unwrap();
        let direct = sim
            .run(
                &SimConfig::partitioned(10_000_000, hw.clone()),
                &mut NullSink,
            )
            .unwrap();

        let replayer = TraceReplayer::new(&prog, &app, &EnergyTable::default());
        let replayed = replayer
            .replay(
                &trace,
                &SimConfig::partitioned(10_000_000, hw),
                &mut NullSink,
            )
            .unwrap();
        assert_eq!(direct, replayed);
        assert!(replayed.hw_loads > 0);
    }

    #[test]
    fn replay_reproduces_the_sink_stream() {
        #[derive(Default, PartialEq, Debug)]
        struct Log(Vec<(u8, u32)>);
        impl MemSink for Log {
            fn ifetch(&mut self, a: u32) {
                self.0.push((0, a));
            }
            fn read(&mut self, a: u32) {
                self.0.push((1, a));
            }
            fn write(&mut self, a: u32) {
                self.0.push((2, a));
            }
        }
        let (app, prog) = setup(TWO_LOOPS);
        let mut sim = Simulator::new(&prog, &app);
        let mut builder = TraceBuilder::new(usize::MAX);
        let mut direct_log = Log::default();
        let stats = sim
            .run_recorded(
                &SimConfig::initial(10_000_000),
                &mut direct_log,
                &mut builder,
            )
            .unwrap();
        let trace = builder.finish(stats.return_value).unwrap();

        let replayer = TraceReplayer::new(&prog, &app, &EnergyTable::default());
        let mut replay_log = Log::default();
        replayer
            .replay(&trace, &SimConfig::initial(10_000_000), &mut replay_log)
            .unwrap();
        assert_eq!(direct_log, replay_log);
    }

    #[test]
    fn replay_supports_debug_tracing() {
        let (app, prog) = setup(TWO_LOOPS);
        let (_, trace) = capture(&app, &prog, None);
        let replayer = TraceReplayer::new(&prog, &app, &EnergyTable::default());
        let stats = replayer
            .replay(
                &trace,
                &SimConfig::initial(10_000_000).with_trace(16),
                &mut NullSink,
            )
            .unwrap();
        assert_eq!(stats.trace.len(), 16);
    }

    #[test]
    fn replay_enforces_the_cycle_limit() {
        let (app, prog) = setup(TWO_LOOPS);
        let (direct, trace) = capture(&app, &prog, None);
        assert!(direct.cycles.count() > 100);
        let replayer = TraceReplayer::new(&prog, &app, &EnergyTable::default());
        let err = replayer
            .replay(&trace, &SimConfig::initial(100), &mut NullSink)
            .unwrap_err();
        assert!(matches!(err, SimError::CycleLimit { limit: 100 }));
    }

    #[test]
    fn cap_overflow_discards_the_capture() {
        let (app, prog) = setup(TWO_LOOPS);
        let mut sim = Simulator::new(&prog, &app);
        let mut builder = TraceBuilder::new(64);
        let stats = sim
            .run_recorded(&SimConfig::initial(10_000_000), &mut NullSink, &mut builder)
            .unwrap();
        assert!(builder.overflowed());
        assert!(builder.finish(stats.return_value).is_none());
        // The run itself is unaffected by the overflow.
        let fresh = Simulator::new(&prog, &app)
            .run(&SimConfig::initial(10_000_000), &mut NullSink)
            .unwrap();
        assert_eq!(stats, fresh);
    }

    #[test]
    fn zero_cap_disables_capture() {
        let builder = TraceBuilder::new(0);
        assert!(builder.overflowed());
        assert!(builder.finish(0).is_none());
    }

    #[test]
    fn fingerprint_distinguishes_workloads() {
        let (app, prog) = setup(TWO_LOOPS);
        let a: Vec<i64> = (0..32).collect();
        let b: Vec<i64> = (0..32).map(|i| i * 2).collect();
        let (_, ta) = capture(&app, &prog, Some(("a", &a)));
        let (_, tb) = capture(&app, &prog, Some(("a", &b)));
        let (_, ta2) = capture(&app, &prog, Some(("a", &a)));
        // Same execution -> same fingerprint; different data -> the
        // address/pc streams diverge and so does the hash.
        assert_eq!(ta.fingerprint(), ta2.fingerprint());
        assert_ne!(ta.fingerprint(), tb.fingerprint());
        assert!(ta.bytes() > 0);
        assert!(ta.events() > 0);
        assert!(ta.data_events() > 0);
    }

    #[test]
    fn trace_is_compact() {
        let (app, prog) = setup(TWO_LOOPS);
        let (direct, trace) = capture(&app, &prog, None);
        // Mostly ±1 pc deltas and word-stride addresses: ~1 byte per
        // event plus ~1-2 bytes per data access.
        let events = direct.block_counts.iter().sum::<u64>() + direct.sw_ifetches;
        assert!(
            (trace.bytes() as u64) < 4 * events,
            "{} bytes for ~{} events",
            trace.bytes(),
            events
        );
    }
}
