//! Extension experiment **E5** — sensitivity to software-compiler
//! quality.
//!
//! The instruction-level energy baseline depends on how good the µP
//! compiler is: the naive era-typical code generator (the calibrated
//! default) leaves more redundant work on the core, inflating the
//! apparent partitioning gain. This experiment re-runs Table 1 with the
//! IR optimizer (constant/copy propagation + DCE) enabled, quantifying
//! how much of the measured saving survives a stronger software
//! baseline — a threat-to-validity check the paper could not run.
//!
//! ```text
//! cargo run --release -p corepart-bench --bin ablation_compiler
//! ```

use corepart::system::SystemConfig;
use corepart_bench::run_workload;
use corepart_workloads::all;

fn main() {
    println!("E5: partitioning gain vs software-compiler quality\n");
    println!(
        "{:<8} {:<10} {:>14} {:>10} {:>8}",
        "app", "compiler", "initial E", "saving%", "chg%"
    );
    for w in all() {
        for (label, optimize) in [("naive", false), ("optimizing", true)] {
            let mut config = SystemConfig::new();
            config.optimize_ir = optimize;
            let result = run_workload(&w, &config);
            let saving = result
                .outcome
                .energy_saving_percent()
                .map(|s| format!("{s:.1}"))
                .unwrap_or_else(|| "--".into());
            let chg = result
                .outcome
                .time_change_percent()
                .map(|c| format!("{c:.1}"))
                .unwrap_or_else(|| "--".into());
            println!(
                "{:<8} {:<10} {:>14} {:>10} {:>8}",
                w.name,
                label,
                format!("{}", result.outcome.initial.total_energy()),
                saving,
                chg,
            );
        }
        println!();
    }
    println!(
        "Reading: the optimizer shrinks the initial (software) energy, so the\n\
         relative saving drops a little — but the partition keeps winning,\n\
         showing the result is not an artifact of a weak software baseline."
    );
}
