//! # corepart-sched
//!
//! The high-level-synthesis substrate of `corepart`: everything needed
//! to judge how well a cluster would fare as an ASIC core.
//!
//! * [`dfg`] — per-block data-flow graphs and the IR→resource-class map.
//! * [`list`] — ASAP/ALAP and the resource-constrained list scheduler of
//!   Fig. 1 line 8.
//! * [`binding`] — the Fig. 4 algorithm: instance binding,
//!   `GEQ_RS`, and the utilization rate `U_R^core` with profiled
//!   `#ex_cycs × #ex_times` weighting.
//! * [`datapath`] — register/mux/controller overhead on top of `GEQ_RS`.
//! * [`energy`] — the quick `E_R` estimate (Fig. 1 line 11) and the
//!   switching-activity "gate-level" verification estimate (line 15).
//! * [`cache`] — compute-once memoization of the schedule/bind/
//!   utilization trio for repeated estimate queries.
//!
//! ## Example
//!
//! ```
//! use corepart_ir::{interp::Interpreter, lower::lower, parser::parse};
//! use corepart_sched::binding::{bind, schedule_cluster, utilization};
//! use corepart_tech::resource::{ResourceLibrary, ResourceSet};
//!
//! let app = lower(&parse(r#"
//!     app fir;
//!     var x[32]; var y[32];
//!     func main() {
//!         for (var i = 1; i < 32; i = i + 1) {
//!             y[i] = x[i] * 5 + x[i - 1] * 3;
//!         }
//!     }
//! "#)?)?;
//! let profile = Interpreter::new(&app).run(1_000_000)?;
//! let lib = ResourceLibrary::cmos6();
//! let set = &ResourceSet::default_family()[2];
//! let blocks = app.structure().iter().find(|n| n.is_loop()).unwrap().blocks().to_vec();
//! let sched = schedule_cluster(&app, &blocks, set, &lib)?;
//! let binding = bind(&sched, &lib);
//! let util = utilization(&sched, &binding, &profile, &lib);
//! assert!(util.u_r > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod binding;
pub mod cache;
pub mod datapath;
pub mod dfg;
pub mod energy;
pub mod force;
pub mod gantt;
pub mod list;

pub use binding::{bind, schedule_cluster, utilization, Binding, ClusterSchedule, Utilization};
pub use cache::{HeapBytes, MemoCache, ScheduleCache, ScheduledCluster};
pub use datapath::{estimate_datapath, DatapathEstimate};
pub use dfg::{op_class_of, BlockDfg};
pub use energy::{estimate_energy, gate_level_energy, AsicEnergy};
pub use force::{force_directed_schedule, force_schedule_cluster};
pub use gantt::{render_block, render_cluster};
pub use list::{
    alap, asap, list_schedule, list_schedule_opts, BlockSchedule, OpSlot, SchedError, SchedOptions,
};
