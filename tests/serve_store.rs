//! Integration tests of the serve stack: the [`ArtifactStore`]'s byte
//! budget, LRU eviction and admission control under real request
//! loads, and the served-vs-fresh byte-identity guarantee across every
//! compute command.

use corepart::json::{parse_json, result_field};
use corepart::serve::{handle_line, respond_fresh, ComputeKind, ComputeRequest};
use corepart::store::{ArtifactStore, StoreOptions};
use corepart::system::SystemConfig;

/// A small family of structurally identical apps whose names and
/// constants differ — distinct identities, near-identical footprints.
fn app_source(tag: &str, k: i64) -> String {
    format!(
        "app {tag}; var x[48]; var acc = 0;
         func main() {{
             for (var i = 0; i < 48; i = i + 1) {{ acc = acc + x[i] * {k}; }}
             return acc;
         }}"
    )
}

fn partition_request(tag: &str, k: i64) -> ComputeRequest {
    let mut req = ComputeRequest::new(ComputeKind::Partition, &app_source(tag, k));
    req.arrays = vec![("x".into(), (0..48).collect())];
    req
}

fn store_with(shards: usize, budget_bytes: u64) -> ArtifactStore {
    ArtifactStore::new(
        SystemConfig::new(),
        &StoreOptions {
            shards,
            budget_bytes,
            hot_touches: 2,
        },
    )
    .unwrap()
}

fn ask(store: &ArtifactStore, req: &ComputeRequest) -> String {
    let (response, stop) = handle_line(store, &req.to_json());
    assert!(!stop);
    assert!(response.contains("\"ok\":true"), "{response}");
    response
}

/// The accounted footprint of one app's full artifact set, measured on
/// an unconstrained store.
fn one_app_bytes() -> u64 {
    let store = store_with(1, u64::MAX);
    ask(&store, &partition_request("probe", 3));
    let bytes = store.stats().bytes;
    assert!(bytes > 0);
    bytes
}

#[test]
fn budget_is_honored_under_load_and_evictions_are_counted() {
    let budget = one_app_bytes() * 2;
    let store = store_with(1, budget);
    // Six distinct apps through a two-app budget: the store must evict
    // to keep admitting, and never exceed the budget while doing so.
    for (i, k) in [3, 5, 7, 9, 11, 13].into_iter().enumerate() {
        ask(&store, &partition_request(&format!("load{i}"), k));
        let stats = store.stats();
        assert!(
            stats.bytes <= budget,
            "accounted {} exceeds budget {budget} after request {i}",
            stats.bytes,
        );
    }
    let stats = store.stats();
    assert!(
        stats.evictions > 0,
        "a 2-app budget under a 6-app load must evict"
    );
    assert_eq!(stats.requests, 6);
    assert_eq!(stats.latency.count, 6);
}

#[test]
fn lru_eviction_keeps_the_recently_used_fingerprint() {
    // A budget that fits two apps; fill it with A then B, then admit C.
    // The LRU entries — A's — must go; B must still be warm.
    let budget = one_app_bytes() * 2 + one_app_bytes() / 2;
    let store = store_with(1, budget);
    let a = partition_request("appa", 3);
    let b = partition_request("appb", 5);
    let c = partition_request("appc", 7);
    ask(&store, &a);
    ask(&store, &b);
    ask(&store, &c);
    assert!(store.stats().evictions > 0, "admitting C must evict");
    // Probe warmth through the artifact layer, not the result memo: an
    // explicit n_max gives each probe a fresh result key, so store_hit
    // reports whether the app's baseline is still resident.
    let mut b_probe = b.clone();
    b_probe.n_max = Some(6);
    let b_again = ask(&store, &b_probe);
    assert!(
        b_again.contains("\"store_hit\":true"),
        "B was more recently used than A and must survive: {b_again}"
    );
    let mut a_probe = a.clone();
    a_probe.n_max = Some(6);
    let a_again = ask(&store, &a_probe);
    assert!(
        a_again.contains("\"store_hit\":false"),
        "A was the LRU fingerprint and must have been evicted: {a_again}"
    );
}

#[test]
fn hot_entries_are_not_evicted_for_one_shot_requests() {
    // Room for one app plus a little slack: once `hot` owns the store,
    // a stranger can only be admitted by displacing hot entries — which
    // cold, first-time admissions are not allowed to do.
    let budget = one_app_bytes() * 5 / 4;
    let store = store_with(1, budget);
    let hot = partition_request("hotapp", 3);
    // Two engine-touching requests make every artifact of `hot` hot
    // (touches >= 2) — the second varies n_max so it misses the result
    // memo and actually re-touches the artifact pools.
    ask(&store, &hot);
    let mut hot_variant = hot.clone();
    hot_variant.n_max = Some(6);
    ask(&store, &hot_variant);
    // A stream of one-shot strangers cannot displace it…
    for (i, k) in [5, 7, 9, 11].into_iter().enumerate() {
        ask(&store, &partition_request(&format!("cold{i}"), k));
    }
    let stats = store.stats();
    assert!(
        stats.declined > 0,
        "cold admissions against hot occupancy must be declined: {stats:?}"
    );
    let again = ask(&store, &hot);
    assert!(
        again.contains("\"store_hit\":true"),
        "the hot baseline must have survived the cold stream: {again}"
    );
}

#[test]
fn served_results_are_byte_identical_to_fresh_engines() {
    let store = store_with(2, 256 << 20);
    let base = SystemConfig::new();
    let mut requests = vec![
        partition_request("ident", 3),
        ComputeRequest::new(ComputeKind::Explore, &app_source("ident", 3)),
        ComputeRequest::new(ComputeKind::Verify, &app_source("ident", 3)),
    ];
    requests[1].arrays = vec![("x".into(), (0..48).collect())];
    requests[1].weights = Some(vec![0.0, 0.5, 2.0]);
    requests[2].arrays = vec![("x".into(), (0..48).collect())];
    requests[2].clusters = vec![0];
    // Twice each: the warm pass must not drift from the cold one.
    for _ in 0..2 {
        for req in &requests {
            let served = ask(&store, req);
            let fresh = respond_fresh(&base, req);
            assert_eq!(
                result_field(&served),
                result_field(&fresh),
                "served and fresh results must be byte-identical ({})",
                req.kind.name(),
            );
        }
    }
    assert!(store.stats().hits > 0);
}

#[test]
fn repeated_identical_requests_hit_the_result_memo() {
    let store = store_with(1, 256 << 20);
    let req = partition_request("memo", 3);
    let first = ask(&store, &req);
    let second = ask(&store, &req);
    // The repeat is a pure memo lookup: byte-identical result, no
    // fresh session (hence no session counters in its stats).
    assert!(first.contains("\"session\""), "{first}");
    assert!(!second.contains("\"session\""), "{second}");
    assert!(second.contains("\"store_hit\":true"), "{second}");
    assert_eq!(result_field(&first), result_field(&second));
    // A knob change misses the memo and runs the engine again.
    let mut variant = req.clone();
    variant.factor_f = Some(2.0);
    let third = ask(&store, &variant);
    assert!(third.contains("\"session\""), "{third}");
}

#[test]
fn served_sessions_drive_the_sharded_batch_kernel() {
    let mut config = SystemConfig::new();
    config.threads = 2;
    let store = ArtifactStore::new(config, &StoreOptions::default()).unwrap();
    let response = ask(&store, &partition_request("batched", 3));
    let parsed = parse_json(&response).unwrap();
    let shards = parsed
        .get("stats")
        .and_then(|s| s.get("session"))
        .and_then(|s| s.get("batch_shards"))
        .and_then(|v| v.as_u64())
        .unwrap();
    assert!(
        shards > 0,
        "served verifies must run the batched kernel: {response}"
    );
}
