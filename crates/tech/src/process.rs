//! CMOS process technology parameters.
//!
//! The paper's experiments use a 0.8µ CMOS process ("CMOS6") for the
//! gate-level library and analytical cache/memory models. We reconstruct
//! a process descriptor carrying the handful of electrical parameters
//! those models need: supply voltage, per-gate switched capacitance, and
//! a reference clock.
//!
//! All derived energies follow the standard dynamic-power relation
//! `E = α · C · V²` per switching event; leakage is negligible at 0.8µ
//! and is not modelled (as in the paper, which only accounts for
//! switching energy).

use std::fmt;

use crate::units::{Energy, Frequency, Power, Seconds};

/// Exponent of the alpha-power delay law `d ∝ V / (V − V_t)^α`.
pub(crate) const ALPHA: f64 = 1.3;

/// Clock-derating factor of running at `vdd` instead of `vnom`, per the
/// alpha-power law `d(V) = V / (V − V_t)^α` with `α = 1.3`:
/// `derate = d(vdd) / d(vnom)`.
///
/// Callers are responsible for the domain check `vth < vdd`; both the
/// process methods and the node-scaling weights route through this one
/// function so their deratings agree bit-for-bit.
pub(crate) fn alpha_power_derate(vdd: f64, vnom: f64, vth: f64) -> f64 {
    let delay = |v: f64| v / (v - vth).powf(ALPHA);
    delay(vdd) / delay(vnom)
}

/// A supply voltage outside a process's valid DVFS range.
///
/// Returned by [`CmosProcess::try_at_voltage`] /
/// [`CmosProcess::try_delay_derating`]; the panicking variants use the
/// same message.
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageError {
    /// The requested supply voltage (volts).
    pub vdd: f64,
    /// Exclusive lower bound (the threshold voltage).
    pub low: f64,
    /// Inclusive upper bound.
    pub high: f64,
}

impl fmt::Display for VoltageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "voltage {} V outside ({}, {}]",
            self.vdd, self.low, self.high
        )
    }
}

impl std::error::Error for VoltageError {}

/// Parameters of a CMOS fabrication process.
///
/// ```
/// use corepart_tech::process::CmosProcess;
///
/// let p = CmosProcess::cmos6();
/// assert_eq!(p.feature_size_um(), 0.8);
/// // One gate switching once at CMOS6 costs on the order of a picojoule.
/// assert!(p.gate_switch_energy().picojoules() > 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CmosProcess {
    name: String,
    feature_size_um: f64,
    supply_voltage: f64,
    /// Threshold voltage (volts); lower bound of the DVFS range.
    threshold_voltage: f64,
    /// Switched capacitance of one gate equivalent (farads).
    gate_capacitance: f64,
    /// Default activity factor for "not actively used" circuits that keep
    /// switching because the core has no gated clocks (§3.1).
    idle_activity: f64,
    /// Activity factor for actively used circuits.
    active_activity: f64,
    clock: Frequency,
}

impl CmosProcess {
    /// The CMOS6 0.8µ process used throughout the paper's evaluation.
    ///
    /// Calibration: 5 V supply, ~60 fF of switched capacitance per gate
    /// equivalent (typical for 0.8µ standard cells including local
    /// wiring), 40 MHz system clock (SPARCLite-era). One full-swing gate
    /// transition then costs `C·V² = 1.5 pJ`. Threshold voltage 0.8 V,
    /// typical for 0.8µ.
    pub fn cmos6() -> Self {
        CmosProcess {
            name: "CMOS6 0.8u".to_owned(),
            feature_size_um: 0.8,
            supply_voltage: 5.0,
            threshold_voltage: 0.8,
            gate_capacitance: 60e-15,
            idle_activity: 0.25,
            active_activity: 0.5,
            clock: Frequency::from_megahertz(40.0),
        }
    }

    /// Crate-internal constructor for derived processes (node variants
    /// built from a [`crate::scaling::NodeScalingTable`] row).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn with_params(
        name: String,
        feature_size_um: f64,
        supply_voltage: f64,
        threshold_voltage: f64,
        gate_capacitance: f64,
        idle_activity: f64,
        active_activity: f64,
        clock: Frequency,
    ) -> Self {
        CmosProcess {
            name,
            feature_size_um,
            supply_voltage,
            threshold_voltage,
            gate_capacitance,
            idle_activity,
            active_activity,
            clock,
        }
    }

    /// A hypothetical scaled variant of this process.
    ///
    /// Linear shrink of feature size with quadratic capacitance scaling
    /// and linear voltage scaling — a first-order constant-field scaling
    /// model, useful for "what if we re-ran this at 0.35µ" exploration.
    /// The threshold voltage scales with the supply, keeping the DVFS
    /// range non-empty at every shrink.
    ///
    /// # Panics
    ///
    /// Panics if `new_feature_um` is not positive.
    pub fn scaled_to(&self, new_feature_um: f64) -> Self {
        assert!(new_feature_um > 0.0, "feature size must be positive");
        let s = new_feature_um / self.feature_size_um;
        CmosProcess {
            name: format!("{} scaled to {new_feature_um}u", self.name),
            feature_size_um: new_feature_um,
            supply_voltage: self.supply_voltage * s,
            threshold_voltage: self.threshold_voltage * s,
            gate_capacitance: self.gate_capacitance * s,
            idle_activity: self.idle_activity,
            active_activity: self.active_activity,
            clock: Frequency::from_hertz(self.clock.hertz() / s),
        }
    }

    /// A variant of this process running at a reduced supply voltage —
    /// the knob behind multiple-voltage system design (the paper's
    /// related work \[10\], Hong/Kirovski DAC'98).
    ///
    /// Switching energy falls quadratically with `vdd`; gate delay
    /// rises per the alpha-power law `d ∝ V / (V − V_t)^α` with
    /// `α = 1.3` and `V_t` the process threshold voltage
    /// ([`CmosProcess::threshold_voltage`]), so the returned process's
    /// clock is derated accordingly.
    ///
    /// # Panics
    ///
    /// Panics unless `V_t < vdd <=` the current supply (this models
    /// *down*-scaling an existing design). [`CmosProcess::try_at_voltage`]
    /// is the non-panicking variant.
    pub fn at_voltage(&self, vdd: f64) -> Self {
        match self.try_at_voltage(vdd) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// Non-panicking [`CmosProcess::at_voltage`]: returns a typed
    /// [`VoltageError`] when `vdd` falls outside `(V_t, supply]`.
    pub fn try_at_voltage(&self, vdd: f64) -> Result<Self, VoltageError> {
        let derate = self.try_delay_derating(vdd)?;
        Ok(CmosProcess {
            name: format!("{} @ {vdd:.1}V", self.name),
            feature_size_um: self.feature_size_um,
            supply_voltage: vdd,
            threshold_voltage: self.threshold_voltage,
            gate_capacitance: self.gate_capacitance,
            idle_activity: self.idle_activity,
            active_activity: self.active_activity,
            clock: Frequency::from_hertz(self.clock.hertz() / derate),
        })
    }

    /// The clock-derating factor of [`CmosProcess::at_voltage`] for a
    /// given supply, relative to this process (≥ 1).
    ///
    /// # Panics
    ///
    /// Same domain as [`CmosProcess::at_voltage`];
    /// [`CmosProcess::try_delay_derating`] is the non-panicking variant.
    pub fn delay_derating(&self, vdd: f64) -> f64 {
        match self.try_delay_derating(vdd) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        }
    }

    /// Non-panicking [`CmosProcess::delay_derating`].
    pub fn try_delay_derating(&self, vdd: f64) -> Result<f64, VoltageError> {
        if vdd > self.threshold_voltage && vdd <= self.supply_voltage {
            Ok(alpha_power_derate(
                vdd,
                self.supply_voltage,
                self.threshold_voltage,
            ))
        } else {
            Err(VoltageError {
                vdd,
                low: self.threshold_voltage,
                high: self.supply_voltage,
            })
        }
    }

    /// Process name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Drawn feature size in micrometres.
    pub fn feature_size_um(&self) -> f64 {
        self.feature_size_um
    }

    /// Supply voltage in volts.
    pub fn supply_voltage(&self) -> f64 {
        self.supply_voltage
    }

    /// Threshold voltage in volts — the exclusive lower bound of the
    /// valid supply range for [`CmosProcess::at_voltage`].
    pub fn threshold_voltage(&self) -> f64 {
        self.threshold_voltage
    }

    /// Switched capacitance per gate equivalent, in farads.
    pub fn gate_capacitance(&self) -> f64 {
        self.gate_capacitance
    }

    /// System clock of cores built in this process.
    pub fn clock(&self) -> Frequency {
        self.clock
    }

    /// Clock period.
    pub fn clock_period(&self) -> Seconds {
        self.clock.period()
    }

    /// Returns a copy with a different system clock.
    pub fn with_clock(mut self, clock: Frequency) -> Self {
        self.clock = clock;
        self
    }

    /// Energy of one full-swing transition of one gate equivalent:
    /// `C · V²`.
    pub fn gate_switch_energy(&self) -> Energy {
        Energy::from_joules(self.gate_capacitance * self.supply_voltage * self.supply_voltage)
    }

    /// Activity factor of circuits that are *not* actively used but keep
    /// switching because the core lacks gated clocks (§3.1 "wasted
    /// energy").
    pub fn idle_activity(&self) -> f64 {
        self.idle_activity
    }

    /// Activity factor of actively used circuits.
    pub fn active_activity(&self) -> f64 {
        self.active_activity
    }

    /// Average dynamic power of a block of `geq` gate equivalents
    /// switching with activity `alpha` at the process clock:
    /// `P = α · geq · C · V² · f`.
    pub fn block_power(&self, geq: u64, alpha: f64) -> Power {
        let e_per_cycle = self.gate_switch_energy() * (geq as f64) * alpha;
        Power::from_watts(e_per_cycle.joules() * self.clock.hertz())
    }

    /// Energy dissipated by a block of `geq` gate equivalents over
    /// `cycles` clock cycles at activity `alpha`.
    pub fn block_energy(&self, geq: u64, alpha: f64, cycles: u64) -> Energy {
        self.gate_switch_energy() * (geq as f64) * alpha * (cycles as f64)
    }
}

impl Default for CmosProcess {
    /// The default process is CMOS6, as used in the paper.
    fn default() -> Self {
        CmosProcess::cmos6()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmos6_parameters() {
        let p = CmosProcess::cmos6();
        assert_eq!(p.feature_size_um(), 0.8);
        assert_eq!(p.supply_voltage(), 5.0);
        assert_eq!(p.threshold_voltage(), 0.8);
        assert!((p.clock().megahertz() - 40.0).abs() < 1e-9);
        // C*V^2 = 60fF * 25 = 1.5 pJ
        assert!((p.gate_switch_energy().picojoules() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn block_power_scales_linearly() {
        let p = CmosProcess::cmos6();
        let p1 = p.block_power(1000, 0.5);
        let p2 = p.block_power(2000, 0.5);
        assert!((p2.watts() / p1.watts() - 2.0).abs() < 1e-9);
        let p3 = p.block_power(1000, 0.25);
        assert!((p1.watts() / p3.watts() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn block_energy_consistent_with_power() {
        let p = CmosProcess::cmos6();
        // Energy over N cycles == power * (N * period)
        let e = p.block_energy(5000, 0.5, 1_000_000);
        let via_power =
            p.block_power(5000, 0.5) * Seconds::from_secs(1_000_000.0 / p.clock().hertz());
        assert!((e.joules() - via_power.joules()).abs() / e.joules() < 1e-12);
    }

    #[test]
    fn scaling_reduces_energy_cubically() {
        let p = CmosProcess::cmos6();
        let half = p.scaled_to(0.4);
        // C scales by 1/2, V^2 by 1/4 -> switch energy by 1/8.
        let ratio = p.gate_switch_energy() / half.gate_switch_energy();
        assert!((ratio - 8.0).abs() < 1e-9);
        // Clock doubles.
        assert!((half.clock().megahertz() - 80.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaling_to_zero_panics() {
        let _ = CmosProcess::cmos6().scaled_to(0.0);
    }

    #[test]
    fn scaled_process_keeps_dvfs_range_nonempty() {
        // Before the threshold became a scaled field, a 0.25x shrink had
        // supply 1.25 V against the hard-coded Vt = 0.8 V — a nearly
        // unusable range; scaling below 0.128µ made it empty.
        let p = CmosProcess::cmos6().scaled_to(0.1);
        assert!(p.threshold_voltage() < p.supply_voltage());
        let mid = (p.threshold_voltage() + p.supply_voltage()) / 2.0;
        assert!(p.try_at_voltage(mid).is_ok());
    }

    #[test]
    fn voltage_scaling_quadratic_energy_slower_clock() {
        let p = CmosProcess::cmos6();
        let low = p.at_voltage(3.3);
        let e_ratio = p.gate_switch_energy() / low.gate_switch_energy();
        assert!(((5.0f64 / 3.3).powi(2) - e_ratio).abs() < 1e-9);
        assert!(low.clock().hertz() < p.clock().hertz());
        assert!(p.delay_derating(3.3) > 1.0);
        // Monotone: lower voltage -> slower still.
        assert!(p.delay_derating(2.4) > p.delay_derating(3.3));
    }

    #[test]
    fn voltage_identity_at_nominal() {
        let p = CmosProcess::cmos6();
        let same = p.at_voltage(5.0);
        assert!((same.clock().hertz() - p.clock().hertz()).abs() < 1e-6);
        assert!((p.delay_derating(5.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn derating_consistent_with_at_voltage_clock() {
        let p = CmosProcess::cmos6();
        let d = p.delay_derating(3.3);
        let via_clock = p.clock().hertz() / p.at_voltage(3.3).clock().hertz();
        assert!((d - via_clock).abs() < 1e-12 * d);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn voltage_below_threshold_panics() {
        let _ = CmosProcess::cmos6().at_voltage(0.5);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn voltage_above_nominal_panics() {
        let _ = CmosProcess::cmos6().at_voltage(6.0);
    }

    #[test]
    fn try_at_voltage_reports_typed_error() {
        let p = CmosProcess::cmos6();
        let err = p.try_at_voltage(0.5).unwrap_err();
        assert_eq!(err.vdd, 0.5);
        assert_eq!(err.low, 0.8);
        assert_eq!(err.high, 5.0);
        assert!(err.to_string().contains("outside"));
        assert!(p.try_delay_derating(6.0).is_err());
        assert!(p.try_delay_derating(3.3).is_ok());
    }

    #[test]
    fn with_clock_overrides() {
        let p = CmosProcess::cmos6().with_clock(Frequency::from_megahertz(20.0));
        assert!((p.clock_period().nanos() - 50.0).abs() < 1e-9);
    }
}
