//! Property-based cross-crate tests: randomly generated programs must
//! behave identically on the IR interpreter and the compiled ISS, and
//! the scheduling/binding invariants must hold for arbitrary kernels.

use proptest::prelude::*;

use corepart_ir::interp::Interpreter;
use corepart_ir::lower::lower;
use corepart_ir::parser::parse;
use corepart_isa::codegen::compile;
use corepart_isa::simulator::{NullSink, SimConfig, Simulator};
use corepart_sched::binding::{bind, schedule_cluster, utilization};
use corepart_sched::dfg::BlockDfg;
use corepart_sched::list::list_schedule;
use corepart_tech::resource::{ResourceLibrary, ResourceSet};

/// A random arithmetic expression over `a`, `b`, `c` and literals.
fn arb_expr(depth: u32) -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("a".to_owned()),
        Just("b".to_owned()),
        Just("c".to_owned()),
        (-64i64..64).prop_map(|v| v.to_string()),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        (inner.clone(), inner, 0usize..10).prop_map(|(l, r, op)| {
            let ops = ["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"];
            // Mask shift amounts to keep them small and defined.
            if op >= 8 {
                format!("({l} {} ({r} & 7))", ops[op])
            } else {
                format!("({l} {} {r})", ops[op])
            }
        })
    })
}

/// A random program: expression statements over three seeded scalars,
/// a conditional, and a bounded loop.
fn arb_program() -> impl Strategy<Value = String> {
    (
        arb_expr(3),
        arb_expr(3),
        arb_expr(2),
        -40i64..40,
        -40i64..40,
        1i64..12,
    )
        .prop_map(|(e1, e2, cond, va, vb, trips)| {
            format!(
                r#"app prop;
                var out[4];
                func main() {{
                    var a = {va};
                    var b = {vb};
                    var c = 0;
                    for (var i = 0; i < {trips}; i = i + 1) {{
                        a = {e1};
                        if (({cond}) > 0) {{
                            b = {e2};
                        }} else {{
                            b = b + 1;
                        }}
                        c = c + a - b;
                    }}
                    out[0] = a;
                    out[1] = b;
                    out[2] = c;
                    return c;
                }}"#
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The compiled ISS and the IR interpreter are observationally
    /// equivalent on arbitrary programs.
    #[test]
    fn iss_equals_interpreter(src in arb_program()) {
        let app = lower(&parse(&src).expect("generated source parses")).expect("lowers");
        let mut interp = Interpreter::new(&app);
        let profile = interp.run(3_000_000).expect("interpreter terminates");

        let prog = compile(&app);
        let mut sim = Simulator::new(&prog, &app);
        let stats = sim
            .run(&SimConfig::initial(50_000_000), &mut NullSink)
            .expect("ISS terminates");

        prop_assert_eq!(Some(stats.return_value), profile.return_value);
        prop_assert_eq!(
            sim.array("out").expect("array"),
            interp.array("out").expect("array")
        );
    }

    /// Every generated block schedules legally on every feasible
    /// designer set: dependencies respected, capacities never exceeded.
    #[test]
    fn schedules_valid_on_random_programs(src in arb_program()) {
        let app = lower(&parse(&src).expect("parses")).expect("lowers");
        let lib = ResourceLibrary::cmos6();
        for set in ResourceSet::default_family() {
            for bi in 0..app.blocks().len() as u32 {
                let dfg = BlockDfg::build(&app, corepart_ir::op::BlockId(bi));
                let Ok(sched) = list_schedule(&dfg, &set, &lib) else {
                    continue; // infeasible set for this block: fine
                };
                for i in 0..dfg.len() {
                    for &p in &dfg.preds[i] {
                        prop_assert!(
                            sched.slots[i].step >= sched.slots[p].step + sched.slots[p].latency
                        );
                    }
                }
                for (kind, _) in set.iter() {
                    prop_assert!(sched.peak_usage(kind) <= set.count(kind));
                }
            }
        }
    }

    /// Utilization is always in [0, 1] and the bound instance count
    /// never exceeds the designer's set, for arbitrary kernels.
    #[test]
    fn utilization_bounded_on_random_programs(src in arb_program()) {
        let app = lower(&parse(&src).expect("parses")).expect("lowers");
        let profile = Interpreter::new(&app).run(3_000_000).expect("terminates");
        let lib = ResourceLibrary::cmos6();
        let set = &ResourceSet::default_family()[4]; // xl: divider included
        let blocks: Vec<corepart_ir::op::BlockId> =
            (0..app.blocks().len() as u32).map(corepart_ir::op::BlockId).collect();
        let Ok(sched) = schedule_cluster(&app, &blocks, set, &lib) else {
            return Ok(()); // infeasible: nothing to check
        };
        let binding = bind(&sched, &lib);
        for (&k, &n) in &binding.instances {
            prop_assert!(n <= set.count(k), "{k}: {n} > {}", set.count(k));
        }
        let util = utilization(&sched, &binding, &profile, &lib);
        prop_assert!((0.0..=1.0).contains(&util.u_r));
        prop_assert!((0.0..=1.0).contains(&util.u_r_weighted));
    }

    /// Every generated program's structure tree is consistent with its
    /// CFG dominators (the invariant cluster decomposition trusts).
    #[test]
    fn structure_tree_verified_on_random_programs(src in arb_program()) {
        let app = lower(&parse(&src).expect("parses")).expect("lowers");
        let violations = corepart_ir::domtree::verify_structure(&app);
        prop_assert!(violations.is_empty(), "{violations:?}");
    }

    /// gen/use transfer counts are monotone under region growth: a
    /// larger producing region can only generate at least as much.
    #[test]
    fn gen_monotone_under_region_growth(src in arb_program()) {
        use corepart_ir::dataflow::region_gen_use;
        let app = lower(&parse(&src).expect("parses")).expect("lowers");
        let n = app.blocks().len() as u32;
        if n < 2 {
            return Ok(());
        }
        let half: Vec<corepart_ir::op::BlockId> =
            (0..n / 2).map(corepart_ir::op::BlockId).collect();
        let full: Vec<corepart_ir::op::BlockId> =
            (0..n).map(corepart_ir::op::BlockId).collect();
        let gu_half = region_gen_use(&app, &half);
        let gu_full = region_gen_use(&app, &full);
        prop_assert!(gu_half.gen.is_subset(&gu_full.gen));
    }
}
