//! Partitioning a custom application with designer-specific resource
//! sets and a hand-driven search — the "manifold possibilities of
//! interaction" of §3.5.
//!
//! This example works at the [`Partitioner`] level instead of the
//! one-call [`corepart::flow::DesignFlow`]: it inspects the cluster
//! chain, the pre-selection scores and each candidate's estimate before
//! committing to a verification.
//!
//! ```text
//! cargo run --release -p corepart --example custom_application
//! ```

use corepart::engine::Engine;
use corepart::error::CorepartError;
use corepart::evaluate::Partition;
use corepart::partition::Partitioner;
use corepart::prepare::Workload;
use corepart::system::SystemConfig;
use corepart::tech::resource::{ResourceKind, ResourceSet};
use corepart_ir::lower::lower;
use corepart_ir::parser::parse;

/// A small audio-style effect: biquad filter + soft clipper.
const SOURCE: &str = r#"
app audiofx;

const N = 512;

var input[512];
var output[512];

func main() {
    var z1 = 0;
    var z2 = 0;
    // Biquad filter (transposed direct form II, Q12 coefficients).
    for (var i = 0; i < N; i = i + 1) {
        var x = input[i];
        var y = (x * 1638 + z1) >> 12;
        z1 = (x * 3276 + z2) - y * 1966;
        z2 = x * 1638 - y * 819;
        output[i] = y;
    }
    // Soft clipper (branchy post-pass).
    var clipped = 0;
    for (var j = 0; j < N; j = j + 1) {
        var v = output[j];
        if (v > 2047) { v = 2047 + ((v - 2047) >> 3); clipped = clipped + 1; }
        if (v < -2048) { v = -2048 + ((v + 2048) >> 3); clipped = clipped + 1; }
        output[j] = v;
    }
    return clipped;
}
"#;

fn main() -> Result<(), CorepartError> {
    // Designer-specific candidate datapaths: this team only considers
    // MAC-oriented sets (per §3.2, "based on reference designs ... from
    // past projects").
    let sets = vec![
        ResourceSet::builder("mac-narrow")
            .with(ResourceKind::Alu, 1)
            .with(ResourceKind::Multiplier, 1)
            .with(ResourceKind::MemPort, 1)
            .build(),
        ResourceSet::builder("mac-wide")
            .with(ResourceKind::Alu, 2)
            .with(ResourceKind::Adder, 1)
            .with(ResourceKind::Multiplier, 2)
            .with(ResourceKind::BarrelShifter, 1)
            .with(ResourceKind::MemPort, 2)
            .build(),
    ];
    let config = SystemConfig::new().with_resource_sets(sets);

    let app = lower(&parse(SOURCE)?)?;
    let samples: Vec<i64> = (0..512)
        .map(|i| {
            // A deterministic pseudo-sine (integer): enough signal to
            // exercise the clipper.
            let phase = (i * 7) % 200;
            ((phase as i64) - 100) * 24
        })
        .collect();
    let workload = Workload::from_arrays([("input", samples)]);
    let engine = Engine::new(config)?;
    let session = engine.session(&app, &workload);
    let config = session.config();
    let prepared = session.prepared()?;

    println!("Cluster chain:");
    for c in prepared.chain.iter() {
        println!("  {c}");
    }

    let partitioner = Partitioner::new(&session)?;
    println!(
        "\nInitial design: {} total, {} cycles, U_uP = {:.3}",
        partitioner.initial().total_energy(),
        partitioner.initial().total_cycles(),
        partitioner.u_up(),
    );

    println!("\nPre-selection (Fig. 3 bus-traffic criterion):");
    for cand in partitioner.candidates() {
        println!(
            "  {}: software energy {}, transfer energy {}, {} invocation(s)",
            prepared.chain.cluster(cand.cluster).label,
            cand.sw_energy,
            cand.transfer_energy,
            cand.invocations,
        );
    }

    println!("\nEstimates per candidate x set:");
    for cand in partitioner.candidates() {
        for set in &config.resource_sets {
            let partition = Partition::single(cand.cluster, set.clone());
            match partitioner.estimate(&partition) {
                Ok(Some(est)) => println!(
                    "  {} on {:<10}: U_R {:.3}, OF {:.3}",
                    prepared.chain.cluster(cand.cluster).label,
                    set.name(),
                    est.u_r,
                    est.of_value,
                ),
                Ok(None) => println!(
                    "  {} on {:<10}: rejected (U_R <= U_uP)",
                    prepared.chain.cluster(cand.cluster).label,
                    set.name(),
                ),
                Err(e) => println!(
                    "  {} on {:<10}: infeasible ({e})",
                    prepared.chain.cluster(cand.cluster).label,
                    set.name(),
                ),
            }
        }
    }

    let outcome = partitioner.run()?;
    match &outcome.best {
        Some((partition, detail)) => println!(
            "\nVerified winner: {} cluster(s) on `{}` — {:.1} % energy saving, {} hardware",
            partition.clusters.len(),
            partition.set.name(),
            outcome.energy_saving_percent().unwrap_or(0.0),
            detail.metrics.geq,
        ),
        None => println!("\nNo partition beat the initial design."),
    }
    Ok(())
}
