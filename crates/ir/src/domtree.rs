//! Dominator analysis and natural-loop detection — the classic CFG
//! machinery (Aho/Sethi/Ullman §10.4, the paper's own dataflow
//! reference), used here to *verify* that the structure tree recorded
//! during lowering is consistent with the graph it claims to describe.
//!
//! The lowering-time structure tree is what cluster decomposition
//! trusts; [`verify_structure`] proves the trust is warranted: every
//! `Loop` node's header dominates the loop's blocks and receives a back
//! edge from inside, every node's blocks are disjoint from its
//! siblings', and single-entry-ness holds for loop regions.

use std::collections::HashSet;

use crate::cdfg::{Application, StructNode};
use crate::op::BlockId;

/// Immediate-dominator table computed by the Cooper–Harvey–Kennedy
/// iterative algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomTree {
    /// `idom[b]` — immediate dominator of block `b`; the entry maps to
    /// itself; unreachable blocks map to `None`.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl DomTree {
    /// Computes the dominator tree of `app`'s CFG.
    pub fn compute(app: &Application) -> Self {
        let n = app.blocks().len();
        let entry = app.entry();
        let rpo = app.reverse_postorder();
        let mut order = vec![usize::MAX; n]; // block -> rpo index
        for (i, &b) in rpo.iter().enumerate() {
            order[b.0 as usize] = i;
        }
        let preds = app.predecessors();

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.0 as usize] = Some(entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while order[a.0 as usize] > order[b.0 as usize] {
                    a = idom[a.0 as usize].expect("processed");
                }
                while order[b.0 as usize] > order[a.0 as usize] {
                    b = idom[b.0 as usize].expect("processed");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.0 as usize] {
                    if idom[p.0 as usize].is_none() {
                        continue; // not yet reachable/processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.0 as usize] != Some(ni) {
                        idom[b.0 as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom, entry }
    }

    /// True when `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.0 as usize] {
                Some(d) if d != cur => cur = d,
                _ => return cur == a,
            }
        }
    }

    /// The immediate dominator, if the block is reachable and not the
    /// entry.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        match self.idom[b.0 as usize] {
            Some(d) if d != b || b == self.entry => Some(d),
            other => other,
        }
    }

    /// True when the block is reachable from the entry.
    pub fn reachable(&self, b: BlockId) -> bool {
        self.idom[b.0 as usize].is_some()
    }
}

/// A violation found by [`verify_structure`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureViolation {
    /// The offending node's label.
    pub node: String,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for StructureViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.node, self.message)
    }
}

/// Checks the recorded structure tree against the CFG's dominator
/// facts. Returns every violation found (empty = consistent).
pub fn verify_structure(app: &Application) -> Vec<StructureViolation> {
    let dom = DomTree::compute(app);
    let mut violations = Vec::new();
    let mut seen: HashSet<BlockId> = HashSet::new();

    fn walk(
        app: &Application,
        dom: &DomTree,
        node: &StructNode,
        seen: &mut HashSet<BlockId>,
        out: &mut Vec<StructureViolation>,
    ) {
        // Sibling/ancestor disjointness for the blocks this node OWNS
        // directly (children re-check their own).
        let direct: Vec<BlockId> = match node {
            StructNode::Straight { blocks } => blocks.clone(),
            StructNode::Loop {
                header_blocks,
                all_blocks,
                body,
                ..
            } => {
                let child_owned: HashSet<BlockId> = body
                    .iter()
                    .flat_map(|c| c.blocks().iter().copied())
                    .collect();
                let mut v: Vec<BlockId> = all_blocks
                    .iter()
                    .copied()
                    .filter(|b| !child_owned.contains(b))
                    .collect();
                let extra: Vec<BlockId> = header_blocks
                    .iter()
                    .copied()
                    .filter(|b| !v.contains(b))
                    .collect();
                v.extend(extra);
                v.dedup();
                v
            }
            StructNode::Branch {
                all_blocks,
                then_body,
                else_body,
                ..
            } => {
                let child_owned: HashSet<BlockId> = then_body
                    .iter()
                    .chain(else_body.iter())
                    .flat_map(|c| c.blocks().iter().copied())
                    .collect();
                all_blocks
                    .iter()
                    .copied()
                    .filter(|b| !child_owned.contains(b))
                    .collect()
            }
            StructNode::Inlined {
                all_blocks, body, ..
            } => {
                let child_owned: HashSet<BlockId> = body
                    .iter()
                    .flat_map(|c| c.blocks().iter().copied())
                    .collect();
                all_blocks
                    .iter()
                    .copied()
                    .filter(|b| !child_owned.contains(b))
                    .collect()
            }
        };
        for b in direct {
            if !seen.insert(b) {
                out.push(StructureViolation {
                    node: node.label(),
                    message: format!("{b} owned by more than one node"),
                });
            }
        }

        if let StructNode::Loop {
            label,
            header_blocks,
            all_blocks,
            ..
        } = node
        {
            if let Some(&header) = header_blocks.first() {
                let executed_region = all_blocks.iter().any(|&b| dom.reachable(b));
                if executed_region && dom.reachable(header) {
                    // Every reachable loop block is dominated by the
                    // header.
                    for &b in all_blocks {
                        if dom.reachable(b) && !dom.dominates(header, b) {
                            out.push(StructureViolation {
                                node: label.clone(),
                                message: format!("header {header} does not dominate {b}"),
                            });
                        }
                    }
                    // A back edge into the header exists from inside.
                    let has_backedge = all_blocks
                        .iter()
                        .any(|&b| app.block(b).term.successors().contains(&header));
                    if !has_backedge {
                        out.push(StructureViolation {
                            node: label.clone(),
                            message: "no back edge to the loop header".into(),
                        });
                    }
                }
            } else {
                out.push(StructureViolation {
                    node: label.clone(),
                    message: "loop without header blocks".into(),
                });
            }
        }

        for c in node.children() {
            walk(app, dom, c, seen, out);
        }
    }

    for n in app.structure() {
        walk(app, &dom, n, &mut seen, &mut violations);
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse;

    fn app(src: &str) -> Application {
        lower(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn entry_dominates_everything_reachable() {
        let a = app(r#"app t; var g = 0;
            func main() {
                if (g > 0) { g = 1; } else { g = 2; }
                while (g > 0) { g = g - 1; }
            }"#);
        let dom = DomTree::compute(&a);
        for b in 0..a.blocks().len() as u32 {
            let b = BlockId(b);
            if dom.reachable(b) {
                assert!(dom.dominates(a.entry(), b));
            }
        }
    }

    #[test]
    fn branch_arms_do_not_dominate_join() {
        let a =
            app("app t; var g = 0; func main() { if (g > 0) { g = 1; } else { g = 2; } g = 3; }");
        let dom = DomTree::compute(&a);
        // Find the two arm blocks (each stores a distinct const).
        let find_block_with_const = |v: i64| {
            (0..a.blocks().len() as u32).map(BlockId).find(|&b| {
                a.block(b)
                    .insts
                    .iter()
                    .any(|i| matches!(i, crate::op::Inst::Const { value, .. } if *value == v))
            })
        };
        let then_b = find_block_with_const(1).expect("then arm");
        let else_b = find_block_with_const(2).expect("else arm");
        let join_b = find_block_with_const(3).expect("join");
        assert!(!dom.dominates(then_b, join_b));
        assert!(!dom.dominates(else_b, join_b));
        assert!(dom.dominates(a.entry(), join_b));
    }

    #[test]
    fn loop_header_dominates_body() {
        let a = app("app t; var g = 9; func main() { while (g > 0) { g = g - 1; } }");
        let dom = DomTree::compute(&a);
        let loop_node = a.structure().iter().find(|n| n.is_loop()).unwrap();
        if let StructNode::Loop {
            header_blocks,
            all_blocks,
            ..
        } = loop_node
        {
            let h = header_blocks[0];
            for &b in all_blocks {
                assert!(dom.dominates(h, b), "{h} must dominate {b}");
            }
        }
    }

    #[test]
    fn structure_verifies_on_paper_style_programs() {
        let sources = [
            "app a; var g = 0; func main() { g = 1; }",
            r#"app b; var x[32]; var s = 0;
               func main() {
                   for (var i = 0; i < 32; i = i + 1) { x[i] = i * i; }
                   for (var j = 0; j < 32; j = j + 1) { s = s + x[j]; }
                   return s;
               }"#,
            r#"app c; var g = 5;
               func f(v) { if (v > 2) { return v * 2; } return v; }
               func main() {
                   while (g > 0) {
                       g = g - 1;
                       if (g == 3) { g = f(g); }
                   }
               }"#,
            r#"app d; var acc = 0;
               func main() {
                   for (var f = 0; f < 4; f = f + 1) {
                       for (var i = 0; i < 4; i = i + 1) {
                           for (var j = 0; j < 4; j = j + 1) { acc = acc + i * j; }
                       }
                   }
               }"#,
        ];
        for src in sources {
            let a = app(src);
            let v = verify_structure(&a);
            assert!(v.is_empty(), "{src}: {v:?}");
        }
    }

    #[test]
    fn verifier_flags_forged_structure() {
        // Hand-build an application whose "loop" has no back edge.
        use crate::cdfg::{Block, VarInfo};
        use crate::op::{Inst, Terminator, VarId};
        let blocks = vec![
            Block {
                insts: vec![Inst::Const {
                    dst: VarId(0),
                    value: 1,
                }],
                term: Terminator::Jump(BlockId(1)),
            },
            Block {
                insts: vec![Inst::Const {
                    dst: VarId(0),
                    value: 2,
                }],
                term: Terminator::Return(None),
            },
        ];
        let forged = Application::from_parts(
            "forged".into(),
            vec![VarInfo { name: None }],
            vec![],
            blocks,
            BlockId(0),
            vec![],
            vec![StructNode::Loop {
                label: "fake-loop".into(),
                header_blocks: vec![BlockId(0)],
                body: vec![],
                all_blocks: vec![BlockId(0), BlockId(1)],
            }],
        );
        let v = verify_structure(&forged);
        assert!(v.iter().any(|x| x.message.contains("back edge")), "{v:?}");
    }

    #[test]
    fn all_paper_workloads_structurally_sound() {
        // The verifier over the real sources (cross-crate check lives
        // in tests/, but the DSL snippets here mimic their shapes).
        let a = app(
            r#"app mini_mpg; var cur[16]; var refw[36]; var best = 99999;
            func main() {
                for (var dy = 0; dy < 2; dy = dy + 1) {
                    for (var dx = 0; dx < 2; dx = dx + 1) {
                        var sad = 0;
                        for (var y = 0; y < 4; y = y + 1) {
                            for (var x = 0; x < 4; x = x + 1) {
                                var d = cur[y * 4 + x] - refw[(y + dy) * 6 + x + dx];
                                if (d < 0) { d = 0 - d; }
                                sad = sad + d;
                            }
                        }
                        if (sad < best) { best = sad; }
                    }
                }
                return best;
            }"#,
        );
        assert!(verify_structure(&a).is_empty());
    }
}
