//! Criterion benchmarks of the trace-capture/replay verification
//! engine: a plain interpreted run, the same run with trace capture
//! enabled (capture overhead), and the hierarchy-accounted replay that
//! replaces re-interpretation during partition verification.

use std::collections::HashSet;

use criterion::{criterion_group, criterion_main, Criterion};

use corepart::prepare::{prepare, PreparedApp, Workload};
use corepart::system::SystemConfig;
use corepart_cache::hierarchy::Hierarchy;
use corepart_ir::op::BlockId;
use corepart_isa::simulator::{MemSink, SimConfig, Simulator};
use corepart_isa::trace::{ReferenceTrace, TraceBuilder, TraceReplayer};
use corepart_workloads::by_name;

struct HierarchySink<'a>(&'a mut Hierarchy);

impl MemSink for HierarchySink<'_> {
    fn ifetch(&mut self, addr: u32) {
        self.0.ifetch(addr);
    }
    fn read(&mut self, addr: u32) {
        self.0.dread(addr);
    }
    fn write(&mut self, addr: u32) {
        self.0.dwrite(addr);
    }
}

fn prepared_digs(config: &SystemConfig) -> PreparedApp {
    let w = by_name("digs").expect("digs exists");
    prepare(
        w.app().expect("lowers"),
        Workload::from_arrays(w.arrays(1)),
        config,
    )
    .expect("prepares")
}

fn fresh_hierarchy(config: &SystemConfig) -> Hierarchy {
    Hierarchy::new(
        config.icache.clone(),
        config.dcache.clone(),
        &config.process,
        config.memory_bytes,
    )
}

fn direct_run(
    prepared: &PreparedApp,
    config: &SystemConfig,
    sim_config: &SimConfig,
) -> corepart_tech::units::Cycles {
    let mut hierarchy = fresh_hierarchy(config);
    let mut sim =
        Simulator::with_energy_table(&prepared.prog, &prepared.app, config.energy_table.clone());
    for (name, data) in &prepared.workload.arrays {
        sim.set_array(name, data).expect("workload array");
    }
    let stats = sim
        .run(sim_config, &mut HierarchySink(&mut hierarchy))
        .expect("runs");
    stats.cycles
}

fn capture_trace(prepared: &PreparedApp, config: &SystemConfig) -> ReferenceTrace {
    let mut hierarchy = fresh_hierarchy(config);
    let mut sim =
        Simulator::with_energy_table(&prepared.prog, &prepared.app, config.energy_table.clone());
    for (name, data) in &prepared.workload.arrays {
        sim.set_array(name, data).expect("workload array");
    }
    let mut builder = TraceBuilder::new(config.trace_cap_bytes);
    let stats = sim
        .run_recorded(
            &SimConfig::initial(config.max_cycles),
            &mut HierarchySink(&mut hierarchy),
            &mut builder,
        )
        .expect("runs");
    builder.finish(stats.return_value).expect("fits the cap")
}

fn bench_simulator_run(c: &mut Criterion) {
    let config = SystemConfig::new();
    let prepared = prepared_digs(&config);
    let initial = SimConfig::initial(config.max_cycles);
    c.bench_function("simulator-run/digs", |b| {
        b.iter(|| direct_run(std::hint::black_box(&prepared), &config, &initial))
    });
}

fn bench_capture_overhead(c: &mut Criterion) {
    let config = SystemConfig::new();
    let prepared = prepared_digs(&config);
    c.bench_function("trace-capture/digs", |b| {
        b.iter(|| capture_trace(std::hint::black_box(&prepared), &config).events())
    });
}

fn bench_hierarchy_replay(c: &mut Criterion) {
    let config = SystemConfig::new();
    let prepared = prepared_digs(&config);
    let trace = capture_trace(&prepared, &config);
    let replayer = TraceReplayer::new(&prepared.prog, &prepared.app, &config.energy_table);
    // Verification replays under a candidate hardware-block set: use
    // the first structural loop, which is what pre-selection favors.
    let hw: HashSet<BlockId> = prepared
        .chain
        .iter()
        .find(|c| c.is_loop())
        .map(|c| c.blocks.iter().copied().collect())
        .unwrap_or_default();
    let partitioned = SimConfig::partitioned(config.max_cycles, hw);
    c.bench_function("hierarchy-replay/digs", |b| {
        b.iter(|| {
            let mut hierarchy = fresh_hierarchy(&config);
            let stats = replayer
                .replay(
                    std::hint::black_box(&trace),
                    &partitioned,
                    &mut HierarchySink(&mut hierarchy),
                )
                .expect("replays");
            (stats.cycles, hierarchy.report())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_simulator_run, bench_capture_overhead, bench_hierarchy_replay
}
criterion_main!(benches);
