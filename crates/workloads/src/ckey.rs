//! `ckey` — a complex chroma-key algorithm.
//!
//! Per-pixel chroma distance against a key colour with soft-edge alpha
//! blending. The paper notes this was "the less memory-intensive one" —
//! its Table-1 cache/memory energies are ≈0 — so the pixels are
//! generated procedurally from a PRNG recurrence and reduced to a
//! checksum, keeping the working set in registers and the data-cache
//! share negligible.

/// Number of pixels processed.
pub const NPIX: i64 = 24_000;

/// The behavioral source.
pub const SOURCE: &str = r#"
app ckey;

const NPIX = 24000;
const KEY_R = 20;
const KEY_G = 190;
const KEY_B = 70;
const BG_R = 120;
const BG_G = 110;
const BG_B = 140;

var out[4];

func main() {
    var accr = 0;
    var accg = 0;
    var accb = 0;
    var state = 12345;
    for (var i = 0; i < NPIX; i = i + 1) {
        // Procedural pixel (xorshift-ish LCG keeps memory cold).
        state = (state * 196613 + 12345) & 0xFFFFFF;
        var r = (state >> 16) & 255;
        var g = (state >> 8) & 255;
        var b = state & 255;

        // Chroma distance to the key colour (L1 in RGB).
        var dr = r - KEY_R;
        var mr = dr >> 63;
        dr = (dr ^ mr) - mr;
        var dg = g - KEY_G;
        var mg = dg >> 63;
        dg = (dg ^ mg) - mg;
        var db = b - KEY_B;
        var mb = db >> 63;
        db = (db ^ mb) - mb;
        var dist = dr * 2 + dg * 4 + db;

        // Soft-edge alpha: 0 inside the key, 256 far away.
        var alpha = dist - 96;
        if (alpha < 0) {
            alpha = 0;
        }
        if (alpha > 256) {
            alpha = 256;
        }

        // Blend foreground over the studio background.
        accr = accr + ((alpha * r + (256 - alpha) * BG_R) >> 8);
        accg = accg + ((alpha * g + (256 - alpha) * BG_G) >> 8);
        accb = accb + ((alpha * b + (256 - alpha) * BG_B) >> 8);
    }
    // Gamma/exposure correction: a divide-bound serial recurrence that
    // utilizes no datapath well — it stays on the uP core, like the
    // 70 % of ckey's cycles the paper's partition left in software.
    var gamma = 1024;
    var state2 = 98765;
    for (var k = 0; k < NPIX / 4; k = k + 1) {
        state2 = (state2 * 48271) & 0x7FFFFFFF;
        var lum = (state2 >> 8) & 1023;
        gamma = gamma + (lum * 256) / (gamma + 64) - 128;
        if (gamma < 256) {
            gamma = 256;
        }
        if (gamma > 4096) {
            gamma = 4096;
        }
    }
    out[0] = accr;
    out[1] = accg;
    out[2] = accb;
    out[3] = gamma;
    return accr + accg + accb + gamma;
}
"#;

/// `ckey` needs no input arrays (pixels are procedural).
pub fn arrays(_seed: u64) -> Vec<(String, Vec<i64>)> {
    Vec::new()
}
