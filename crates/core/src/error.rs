//! Error type of the `corepart` top-level crate.

use std::error::Error;
use std::fmt;

use corepart_ir::error::IrError;
use corepart_isa::simulator::SimError;
use corepart_sched::list::SchedError;

/// Any failure of the partitioning flow.
///
/// The type is `Clone` so that compute-once artifact pools
/// ([`crate::engine`]) can memoize failures alongside successes: a
/// configuration that fails to prepare or simulate fails identically
/// for every session that shares the artifact.
#[derive(Debug, Clone)]
pub enum CorepartError {
    /// Frontend (parse/lower/interpret) failure.
    Ir(IrError),
    /// Instruction-set-simulation failure.
    Sim(SimError),
    /// Scheduling failure that was not recoverable by skipping the
    /// candidate.
    Sched(SchedError),
    /// Invalid configuration or request.
    Config {
        /// What is wrong.
        message: String,
    },
}

impl fmt::Display for CorepartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorepartError::Ir(e) => write!(f, "{e}"),
            CorepartError::Sim(e) => write!(f, "{e}"),
            CorepartError::Sched(e) => write!(f, "{e}"),
            CorepartError::Config { message } => write!(f, "configuration error: {message}"),
        }
    }
}

impl Error for CorepartError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CorepartError::Ir(e) => Some(e),
            CorepartError::Sim(e) => Some(e),
            CorepartError::Sched(e) => Some(e),
            CorepartError::Config { .. } => None,
        }
    }
}

impl From<IrError> for CorepartError {
    fn from(e: IrError) -> Self {
        CorepartError::Ir(e)
    }
}

impl From<SimError> for CorepartError {
    fn from(e: SimError) -> Self {
        CorepartError::Sim(e)
    }
}

impl From<SchedError> for CorepartError {
    fn from(e: SchedError) -> Self {
        CorepartError::Sched(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CorepartError::Config {
            message: "n_max must be positive".into(),
        };
        assert!(e.to_string().contains("n_max"));
        assert!(e.source().is_none());

        let ir: CorepartError = IrError::Interp {
            message: "boom".into(),
        }
        .into();
        assert!(ir.source().is_some());
        assert!(ir.to_string().contains("boom"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<CorepartError>();
    }
}
