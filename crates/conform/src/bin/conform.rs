//! The `conform` binary: CI entry point for the conformance sweep and
//! the generated-workload corpus runner.
//!
//! ```text
//! conform [--seed N] [--cases N] [--fault-every N] [--max-shrink N]
//!         [--report PATH] [--verbose]
//! conform corpus [--seed N] [--count N] [--out P] [--journal P]
//!                [--chunk N] [--limit N] [--resume] [--threads N]
//!                [--interrupt-after-chunks N] [--json]
//!                [--connect host:port] [--connections N]
//! ```
//!
//! With `--connect`, corpus chunks are shipped to a running
//! `corepart serve` daemon as pipelined requests over `--connections`
//! persistent connections; TSV and journal stay byte-identical to a
//! local run.
//!
//! Exit codes: 0 all oracles held (or corpus ran), 1 violations found
//! (report written) or corpus runtime error, 2 usage error.

use std::path::PathBuf;
use std::process::ExitCode;

use corepart::corpus::{CorpusOptions, RemoteOptions};
use corepart::json::corpus_to_json;
use corepart::system::SystemConfig;
use corepart_conform::corpus::run_gen_corpus_with;
use corepart_conform::report::summary_to_json;
use corepart_conform::runner::{run, RunnerOptions};

const USAGE: &str = "usage: conform [--seed N] [--cases N] [--fault-every N] \
                     [--max-shrink N] [--report PATH] [--verbose]\n       \
                     conform corpus [--seed N] [--count N] [--out P] [--journal P] \
                     [--chunk N] [--limit N] [--resume] [--threads N] \
                     [--interrupt-after-chunks N] [--json] \
                     [--connect host:port] [--connections N]";

fn parse_u64(flag: &str, value: Option<String>) -> Result<u64, String> {
    let value = value.ok_or_else(|| format!("{flag} needs a value"))?;
    value
        .parse()
        .map_err(|_| format!("{flag} needs an unsigned integer, got '{value}'"))
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<(RunnerOptions, String), String> {
    let mut options = RunnerOptions::default();
    let mut report_path = "conform-report.json".to_string();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => options.seed = parse_u64("--seed", args.next())?,
            "--cases" => options.cases = parse_u64("--cases", args.next())?,
            "--fault-every" => options.fault_every = parse_u64("--fault-every", args.next())?,
            "--max-shrink" => {
                options.max_shrink_steps = parse_u64("--max-shrink", args.next())? as usize;
            }
            "--report" => {
                report_path = args.next().ok_or("--report needs a path")?;
            }
            "--verbose" => options.verbose = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok((options, report_path))
}

/// Flags of the `conform corpus` subcommand.
struct CorpusArgs {
    seed: u64,
    count: u64,
    out: PathBuf,
    journal: Option<PathBuf>,
    chunk: Option<usize>,
    limit: Option<u64>,
    resume: bool,
    threads: usize,
    interrupt_after_chunks: Option<usize>,
    json: bool,
    connect: Option<String>,
    connections: usize,
}

fn parse_corpus_args(args: impl Iterator<Item = String>) -> Result<CorpusArgs, String> {
    let mut parsed = CorpusArgs {
        seed: 1,
        count: 100,
        out: PathBuf::from("corpus.tsv"),
        journal: None,
        chunk: None,
        limit: None,
        resume: false,
        threads: 0,
        interrupt_after_chunks: None,
        json: false,
        connect: None,
        connections: 1,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => parsed.seed = parse_u64("--seed", args.next())?,
            "--count" => parsed.count = parse_u64("--count", args.next())?,
            "--out" => parsed.out = PathBuf::from(args.next().ok_or("--out needs a path")?),
            "--journal" => {
                parsed.journal = Some(PathBuf::from(args.next().ok_or("--journal needs a path")?));
            }
            "--chunk" => parsed.chunk = Some(parse_u64("--chunk", args.next())? as usize),
            "--limit" => parsed.limit = Some(parse_u64("--limit", args.next())?),
            "--resume" => parsed.resume = true,
            "--threads" => parsed.threads = parse_u64("--threads", args.next())? as usize,
            "--interrupt-after-chunks" => {
                parsed.interrupt_after_chunks =
                    Some(parse_u64("--interrupt-after-chunks", args.next())? as usize);
            }
            "--json" => parsed.json = true,
            "--connect" => {
                parsed.connect = Some(args.next().ok_or("--connect needs host:port")?);
            }
            "--connections" => {
                parsed.connections = parse_u64("--connections", args.next())? as usize;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(parsed)
}

fn corpus_main(args: CorpusArgs) -> ExitCode {
    let mut options = CorpusOptions::new(SystemConfig::new());
    if let Some(c) = args.chunk {
        options.chunk = c;
    }
    options.threads = args.threads;
    options.limit = args.limit;
    options.interrupt_after_chunks = args.interrupt_after_chunks;
    let journal = args
        .journal
        .unwrap_or_else(|| PathBuf::from(format!("{}.journal", args.out.display())));
    let remote = args.connect.as_deref().map(|addr| {
        let mut r = RemoteOptions::new(addr);
        r.connections = args.connections;
        r
    });
    let outcome = match run_gen_corpus_with(
        args.seed,
        args.count,
        options,
        &journal,
        &args.out,
        args.resume,
        remote.as_ref(),
    ) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.json {
        println!("{}", corpus_to_json(&outcome));
    } else if outcome.finished {
        println!(
            "corpus complete: seed {} | {} app(s) ({} evaluated, {} replayed) -> {}",
            args.seed,
            outcome.count,
            outcome.evaluated,
            outcome.replayed,
            args.out.display()
        );
        println!(
            "frontier: {} point(s); feature buckets: {}",
            outcome.frontier.len(),
            outcome.features.len()
        );
    } else {
        println!(
            "corpus interrupted after {}/{} chunk(s); rerun with --resume to continue",
            outcome.chunks_done, outcome.chunks
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1).peekable();
    if raw.peek().map(String::as_str) == Some("corpus") {
        raw.next();
        return match parse_corpus_args(raw) {
            Ok(args) => corpus_main(args),
            Err(message) => {
                if !message.is_empty() {
                    eprintln!("error: {message}");
                }
                eprintln!("{USAGE}");
                ExitCode::from(2)
            }
        };
    }
    let (options, report_path) = match parse_args(raw) {
        Ok(parsed) => parsed,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("error: {message}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    println!(
        "conform: seed {} | {} cases | fault battery every {} cases",
        options.seed, options.cases, options.fault_every
    );
    let summary = run(&options);
    println!(
        "conform: {} cases run, {} with fault injection, {} violation(s)",
        summary.cases_run,
        summary.fault_cases,
        summary.failures.len()
    );

    if summary.passed() {
        return ExitCode::SUCCESS;
    }

    for failure in &summary.failures {
        eprintln!(
            "violation: case {} (seed {}) oracle '{}': {}",
            failure.case_index, failure.case_seed, failure.oracle, failure.detail
        );
        eprintln!(
            "  shrunk {} -> {} nodes in {} steps; reproducer:\n{}",
            failure.size_before, failure.size_after, failure.shrink_steps, failure.source
        );
    }
    let json = summary_to_json(&summary);
    match std::fs::write(&report_path, &json) {
        Ok(()) => eprintln!("failure report written to {report_path}"),
        Err(e) => eprintln!("error: could not write {report_path}: {e}"),
    }
    ExitCode::FAILURE
}
