//! µP-core resource utilization — `U_µP^core` of Fig. 1 line 9.
//!
//! §3.1's motivating observation: while an `add` executes, the
//! multiplier idles (and without gated clocks it still burns energy).
//! The utilization rate of the µP core is Equation (4) applied to the
//! core's fixed resource inventory, with per-resource active cycles
//! derived from the executed instruction mix.

use std::collections::BTreeMap;
use std::fmt;

use crate::isa::InstClass;
use crate::simulator::RunStats;

/// The fixed resource inventory of the modelled SPARCLite-class core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CoreResource {
    /// The integer ALU (also does load/store address generation).
    Alu,
    /// The multiply/divide array.
    MulDiv,
    /// The barrel shifter.
    Shifter,
    /// The load/store unit.
    LoadStore,
    /// The branch unit.
    Branch,
    /// The register file (read/written by almost everything).
    RegFile,
}

impl CoreResource {
    /// All core resources.
    pub const ALL: [CoreResource; 6] = [
        CoreResource::Alu,
        CoreResource::MulDiv,
        CoreResource::Shifter,
        CoreResource::LoadStore,
        CoreResource::Branch,
        CoreResource::RegFile,
    ];
}

impl fmt::Display for CoreResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CoreResource::Alu => "alu",
            CoreResource::MulDiv => "mul/div",
            CoreResource::Shifter => "shifter",
            CoreResource::LoadStore => "load/store",
            CoreResource::Branch => "branch",
            CoreResource::RegFile => "regfile",
        };
        f.write_str(s)
    }
}

/// Per-resource utilization of the µP core over one run.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreUtilization {
    per_resource: BTreeMap<CoreResource, f64>,
    mean: f64,
}

impl CoreUtilization {
    /// Computes the utilization report from run statistics.
    ///
    /// Returns an all-zero report for an empty run (zero cycles).
    pub fn from_stats(stats: &RunStats) -> Self {
        let total = stats.cycles.count();
        let cc = |c: InstClass| stats.class_cycles.get(&c).copied().unwrap_or(0);
        Self::from_class_cycles(total, cc)
    }

    /// Computes the utilization the µP achieves *while executing one
    /// region* (a candidate cluster's blocks) — the per-cluster
    /// `U_µP^core` of Fig. 1 line 9: "it is tested whether a candidate
    /// cluster can yield a better utilization rate on an ASIC core or
    /// on a µP core" (§3.2).
    pub fn for_blocks(stats: &RunStats, blocks: &[corepart_ir::op::BlockId]) -> Self {
        let total: u64 = blocks
            .iter()
            .map(|&b| stats.block_cycles[b.0 as usize])
            .sum();
        let cc = |c: InstClass| {
            let ci = InstClass::ALL
                .iter()
                .position(|&x| x == c)
                .expect("class in ALL");
            blocks
                .iter()
                .map(|&b| stats.block_class_cycles[b.0 as usize][ci])
                .sum()
        };
        Self::from_class_cycles(total, cc)
    }

    fn from_class_cycles<F: Fn(InstClass) -> u64>(total: u64, cc: F) -> Self {
        let mut active: BTreeMap<CoreResource, u64> = BTreeMap::new();
        // The ALU computes arithmetic and the effective addresses of
        // loads/stores.
        active.insert(
            CoreResource::Alu,
            cc(InstClass::Alu) + cc(InstClass::Load) + cc(InstClass::Store),
        );
        active.insert(
            CoreResource::MulDiv,
            cc(InstClass::Mul) + cc(InstClass::Div),
        );
        active.insert(CoreResource::Shifter, cc(InstClass::Shift));
        active.insert(
            CoreResource::LoadStore,
            cc(InstClass::Load) + cc(InstClass::Store),
        );
        active.insert(CoreResource::Branch, cc(InstClass::Branch));
        // The register file is read/written by every non-stall cycle.
        active.insert(CoreResource::RegFile, total);

        let per_resource: BTreeMap<CoreResource, f64> = active
            .into_iter()
            .map(|(r, a)| {
                let u = if total == 0 {
                    0.0
                } else {
                    (a as f64 / total as f64).min(1.0)
                };
                (r, u)
            })
            .collect();
        // The register file is reported but excluded from the mean:
        // Fig. 1 line 9 compares the µP's utilization against a
        // candidate ASIC *datapath*, and the always-busy register file
        // has no counterpart there — including it would bias the
        // comparison against every candidate.
        let datapath: Vec<f64> = per_resource
            .iter()
            .filter(|(&r, _)| r != CoreResource::RegFile)
            .map(|(_, &u)| u)
            .collect();
        let mean = datapath.iter().sum::<f64>() / datapath.len().max(1) as f64;
        CoreUtilization { per_resource, mean }
    }

    /// `u_rs` of one resource (Equation 1).
    pub fn of(&self, r: CoreResource) -> f64 {
        self.per_resource[&r]
    }

    /// `U_µP^core` — the mean utilization over all resources
    /// (Equation 4).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Iterates over `(resource, utilization)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CoreResource, f64)> + '_ {
        self.per_resource.iter().map(|(&r, &u)| (r, u))
    }
}

impl fmt::Display for CoreUtilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U_uP = {:.3} (", self.mean)?;
        let mut first = true;
        for (r, u) in self.iter() {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{r}: {u:.2}")?;
            first = false;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::compile;
    use crate::simulator::{NullSink, SimConfig, Simulator};
    use corepart_ir::lower::lower;
    use corepart_ir::parser::parse;

    fn stats_for(src: &str) -> RunStats {
        let app = lower(&parse(src).unwrap()).unwrap();
        let prog = compile(&app);
        Simulator::new(&prog, &app)
            .run(&SimConfig::initial(10_000_000), &mut NullSink)
            .unwrap()
    }

    #[test]
    fn utilizations_bounded() {
        let s = stats_for(
            "app t; var a[32]; func main() { for (var i = 0; i < 32; i = i + 1) { a[i] = a[i] * i + (i >> 1); } }",
        );
        let u = CoreUtilization::from_stats(&s);
        for (_, v) in u.iter() {
            assert!((0.0..=1.0).contains(&v));
        }
        assert!((0.0..=1.0).contains(&u.mean()));
    }

    #[test]
    fn mul_heavy_code_raises_muldiv_utilization() {
        let light = stats_for(
            "app t; var g = 1; func main() { for (var i = 0; i < 64; i = i + 1) { g = g + i; } }",
        );
        let heavy = stats_for(
            "app t; var g = 1; func main() { for (var i = 0; i < 64; i = i + 1) { g = g * 3 * 5 * 7; } }",
        );
        let ul = CoreUtilization::from_stats(&light);
        let uh = CoreUtilization::from_stats(&heavy);
        assert!(uh.of(CoreResource::MulDiv) > ul.of(CoreResource::MulDiv));
    }

    #[test]
    fn typical_dsp_code_underutilizes_the_core() {
        // The motivating observation of §3.1: a general-purpose core
        // running DSP code leaves most resources idle most of the time.
        let s = stats_for(
            r#"app t; var x[64]; var y[64];
            func main() {
                for (var i = 1; i < 63; i = i + 1) {
                    y[i] = (x[i - 1] + 2 * x[i] + x[i + 1]) >> 2;
                }
            }"#,
        );
        let u = CoreUtilization::from_stats(&s);
        assert!(
            u.mean() < 0.7,
            "expected low mean utilization, got {}",
            u.mean()
        );
        // The divider/multiplier array is almost idle here.
        assert!(u.of(CoreResource::MulDiv) < 0.5);
    }

    #[test]
    fn empty_run_is_zero() {
        let s = stats_for("app t; func main() { }");
        let u = CoreUtilization::from_stats(&s);
        // A bare `halt` still executes one cycle; utilization finite.
        assert!(u.mean() <= 1.0);
        let text = format!("{u}");
        assert!(text.contains("U_uP"));
    }

    #[test]
    fn regfile_is_the_busiest_resource() {
        let s = stats_for(
            "app t; var g = 0; func main() { for (var i = 0; i < 32; i = i + 1) { g = g + i; } }",
        );
        let u = CoreUtilization::from_stats(&s);
        for (r, v) in u.iter() {
            assert!(u.of(CoreResource::RegFile) >= v, "{r} busier than regfile");
        }
    }
}
