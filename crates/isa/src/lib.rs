//! # corepart-isa
//!
//! The µP-core substrate of `corepart`: a SPARC-like embedded RISC
//! instruction set, a compiler from the `corepart-ir` CDFG, a
//! cycle-accurate instruction-set simulator (ISS), and an
//! instruction-level (Tiwari-style) energy model — the reconstruction of
//! the paper's "Core Energy Estimation" flow block (§3.5) and SPARCLite
//! experimental platform (§4).
//!
//! * [`isa`] — registers, instructions, latencies, instruction classes.
//! * [`codegen`] — frequency-based register allocation and code
//!   generation from an [`corepart_ir::Application`].
//! * [`simulator`] — the ISS. One simulator evaluates both the initial
//!   and any partitioned design: blocks mapped to the ASIC core execute
//!   functionally but cost the µP nothing (see
//!   [`simulator::SimConfig::hw_blocks`]).
//! * [`energy`] — per-instruction base energies + circuit-state
//!   overhead.
//! * [`trace`] — reference-trace capture and bit-exact replay: one
//!   simulation per workload, arbitrarily many `hw_blocks` accountings.
//! * [`profile`] — the µP core's resource-utilization rate `U_µP`
//!   (Fig. 1 line 9).
//!
//! ## Example
//!
//! ```
//! use corepart_ir::{lower::lower, parser::parse};
//! use corepart_isa::codegen::compile;
//! use corepart_isa::simulator::{NullSink, SimConfig, Simulator};
//!
//! let app = lower(&parse(
//!     "app t; func main() { var s = 0; for (var i = 0; i < 10; i = i + 1) { s = s + i; } return s; }",
//! )?)?;
//! let prog = compile(&app);
//! let mut sim = Simulator::new(&prog, &app);
//! let stats = sim.run(&SimConfig::initial(1_000_000), &mut NullSink)?;
//! assert_eq!(stats.return_value, 45);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codegen;
pub mod energy;
pub mod isa;
pub mod profile;
pub mod simulator;
pub mod trace;

pub use codegen::{compile, compile_with_profile, MachProgram};
pub use energy::EnergyTable;
pub use isa::{AluOp, InstClass, MachInst, Reg, RegImm};
pub use profile::{CoreResource, CoreUtilization};
pub use simulator::{
    ExecRecorder, MemSink, NullRecorder, NullSink, RunStats, SimConfig, SimError, Simulator,
    TraceEntry,
};
pub use trace::{ReferenceTrace, TraceBuilder, TraceReplayer};
